//! Typed entity identifiers.
//!
//! Every id is a `(index, generation)` pair into a generational
//! [`Arena`](crate::Arena). Distinct entity kinds get distinct Rust types,
//! so a `VmId` can never be passed where a `HostId` is expected.

use serde::{Deserialize, Serialize};

/// Common interface of all entity ids (sealed: implemented only by the
/// `define_id!` macro in this crate).
pub trait EntityId: Copy + Eq + std::hash::Hash + std::fmt::Debug + private::Sealed {
    /// Builds an id from its raw parts. Intended for [`Arena`](crate::Arena).
    fn from_parts(index: u32, generation: u32) -> Self;
    /// Slot index within the arena.
    fn index(self) -> u32;
    /// Generation of the slot this id refers to.
    fn generation(self) -> u32;
}

mod private {
    pub trait Sealed {}
}

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name {
            index: u32,
            generation: u32,
        }

        impl private::Sealed for $name {}

        impl EntityId for $name {
            fn from_parts(index: u32, generation: u32) -> Self {
                $name { index, generation }
            }
            fn index(self) -> u32 {
                self.index
            }
            fn generation(self) -> u32 {
                self.generation
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({}.{})"), self.index, self.generation)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(self, f)
            }
        }
    };
}

define_id!(
    /// A physical virtualization host (hypervisor).
    HostId
);
define_id!(
    /// A virtual machine (or VM template).
    VmId
);
define_id!(
    /// A shared datastore (LUN / NFS volume / vSAN).
    DatastoreId
);
define_id!(
    /// A host cluster.
    ClusterId
);
define_id!(
    /// A virtual disk (VMDK); content tracked by `cpsim-storage`.
    DiskId
);
define_id!(
    /// A virtual network / port group.
    NetworkId
);
define_id!(
    /// A cloud tenant organization.
    OrgId
);
define_id!(
    /// A vApp: a tenant-visible group of VMs deployed together.
    VappId
);
define_id!(
    /// A management-plane task.
    TaskId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip() {
        let id = VmId::from_parts(7, 3);
        assert_eq!(id.index(), 7);
        assert_eq!(id.generation(), 3);
    }

    #[test]
    fn distinct_generations_differ() {
        assert_ne!(HostId::from_parts(1, 1), HostId::from_parts(1, 2));
    }

    #[test]
    fn debug_format_is_compact() {
        assert_eq!(format!("{:?}", DiskId::from_parts(4, 1)), "DiskId(4.1)");
        assert_eq!(TaskId::from_parts(0, 9).to_string(), "TaskId(0.9)");
    }

    #[test]
    fn ids_are_orderable_for_deterministic_maps() {
        let a = DatastoreId::from_parts(0, 1);
        let b = DatastoreId::from_parts(1, 1);
        assert!(a < b);
    }

    #[test]
    fn serde_round_trip() {
        let id = OrgId::from_parts(2, 5);
        let json = serde_json::to_string(&id).unwrap();
        let back: OrgId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }
}
