//! The [`Inventory`]: arenas of entities plus the accounting rules that keep
//! capacity counters consistent.

use crate::arena::Arena;
use crate::entities::{
    Datastore, DatastoreSpec, Host, HostSpec, HostState, PowerState, Vm, VmSpec,
};
use crate::error::InventoryError;
use crate::ids::{DatastoreId, HostId, VmId};
use crate::index::{OrdF64, PlacementIndex};

/// Entity counts, used for heartbeat-load and placement-cost models that
/// scale with inventory size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InventoryCounts {
    /// Live hosts.
    pub hosts: usize,
    /// Live datastores.
    pub datastores: usize,
    /// Live VMs (including templates).
    pub vms: usize,
    /// Powered-on VMs.
    pub powered_on: usize,
    /// Templates.
    pub templates: usize,
}

/// The shared datacenter state: hosts, datastores and VMs with consistent
/// capacity accounting.
#[derive(Clone, Debug, Default)]
pub struct Inventory {
    hosts: Arena<HostId, Host>,
    datastores: Arena<DatastoreId, Datastore>,
    vms: Arena<VmId, Vm>,
    powered_on: usize,
    templates: usize,
    index: PlacementIndex,
}

impl Inventory {
    /// Creates an empty inventory.
    pub fn new() -> Self {
        Inventory::default()
    }

    // ---- hosts ---------------------------------------------------------

    /// Registers a new connected host.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = self.hosts.insert(Host::new(spec));
        let h = self.hosts.get(id).expect("just inserted");
        self.index
            .host_added(id, (OrdF64(h.mem_utilization()), h.vms.len()));
        id
    }

    /// Looks up a host.
    pub fn host(&self, id: HostId) -> Option<&Host> {
        self.hosts.get(id)
    }

    /// Fails with `UnknownHost` unless `id` is live.
    pub fn host_checked(&self, id: HostId) -> Result<&Host, InventoryError> {
        self.hosts.get(id).ok_or(InventoryError::UnknownHost(id))
    }

    /// Sets a host's administrative state.
    pub fn set_host_state(&mut self, id: HostId, state: HostState) -> Result<(), InventoryError> {
        let host = self
            .hosts
            .get_mut(id)
            .ok_or(InventoryError::UnknownHost(id))?;
        host.state = state;
        Ok(())
    }

    /// Removes a host. All its VMs must have been destroyed or migrated.
    ///
    /// # Panics
    ///
    /// Panics if VMs are still registered to the host (callers must drain
    /// first; this indicates an orchestration bug).
    pub fn remove_host(&mut self, id: HostId) -> Result<Host, InventoryError> {
        {
            let host = self.host_checked(id)?;
            assert!(
                host.vms.is_empty(),
                "remove_host: host still has registered VMs"
            );
        }
        let host = self.hosts.remove(id).expect("checked live above");
        for ds in &host.datastores {
            if let Some(d) = self.datastores.get_mut(*ds) {
                d.hosts.retain(|h| *h != id);
            }
        }
        self.index.host_removed(id, &host.datastores);
        Ok(host)
    }

    /// Iterates live hosts in deterministic order.
    pub fn hosts(&self) -> impl Iterator<Item = (HostId, &Host)> {
        self.hosts.iter()
    }

    // ---- datastores ----------------------------------------------------

    /// Registers a new datastore.
    pub fn add_datastore(&mut self, spec: DatastoreSpec) -> DatastoreId {
        let id = self.datastores.insert(Datastore::new(spec));
        let free = self.datastores.get(id).expect("just inserted").free_gb();
        self.index.datastore_added(id, free);
        id
    }

    /// Looks up a datastore.
    pub fn datastore(&self, id: DatastoreId) -> Option<&Datastore> {
        self.datastores.get(id)
    }

    /// Fails with `UnknownDatastore` unless `id` is live.
    pub fn datastore_checked(&self, id: DatastoreId) -> Result<&Datastore, InventoryError> {
        self.datastores
            .get(id)
            .ok_or(InventoryError::UnknownDatastore(id))
    }

    /// Iterates live datastores in deterministic order.
    pub fn datastores(&self) -> impl Iterator<Item = (DatastoreId, &Datastore)> {
        self.datastores.iter()
    }

    /// Connects `host` to `datastore` (idempotent).
    pub fn connect_host_datastore(
        &mut self,
        host: HostId,
        datastore: DatastoreId,
    ) -> Result<(), InventoryError> {
        self.host_checked(host)?;
        self.datastore_checked(datastore)?;
        let h = self
            .hosts
            .get_mut(host)
            .expect("host_checked verified the id above");
        if !h.datastores.contains(&datastore) {
            h.datastores.push(datastore);
        }
        let d = self
            .datastores
            .get_mut(datastore)
            .expect("datastore_checked verified the id above");
        if !d.hosts.contains(&host) {
            d.hosts.push(host);
            self.index.connected(host, datastore);
        }
        Ok(())
    }

    /// Whether `host` can reach `datastore`.
    pub fn is_connected(&self, host: HostId, datastore: DatastoreId) -> bool {
        self.hosts
            .get(host)
            .map(|h| h.datastores.contains(&datastore))
            .unwrap_or(false)
    }

    /// Adjusts a datastore's allocated space by `delta_gb` (may be
    /// negative); clamped at zero. Called by the storage layer.
    pub fn adjust_datastore_usage(
        &mut self,
        id: DatastoreId,
        delta_gb: f64,
    ) -> Result<(), InventoryError> {
        let d = self
            .datastores
            .get_mut(id)
            .ok_or(InventoryError::UnknownDatastore(id))?;
        d.used_gb = (d.used_gb + delta_gb).max(0.0);
        let free = d.free_gb();
        self.index.datastore_free_changed(id, free);
        Ok(())
    }

    // ---- VMs -----------------------------------------------------------

    /// Creates a powered-off VM registered on `host` with its home on
    /// `datastore`.
    ///
    /// # Errors
    ///
    /// Fails if the host or datastore is unknown, the host cannot reach the
    /// datastore, or the host is not connected.
    pub fn create_vm(
        &mut self,
        name: impl Into<String>,
        spec: VmSpec,
        host: HostId,
        datastore: DatastoreId,
    ) -> Result<VmId, InventoryError> {
        let h = self.host_checked(host)?;
        if !h.accepts_placements() {
            return Err(InventoryError::HostNotAvailable(host));
        }
        self.datastore_checked(datastore)?;
        if !self.is_connected(host, datastore) {
            return Err(InventoryError::DatastoreNotConnected { host, datastore });
        }
        let id = self.vms.insert(Vm::new(name, spec, host, datastore));
        self.hosts
            .get_mut(host)
            .expect("host_checked verified the id above")
            .vms
            .push(id);
        self.reindex_host(host);
        Ok(id)
    }

    /// Marks a VM as a template. The VM must be powered off.
    pub fn mark_template(&mut self, id: VmId) -> Result<(), InventoryError> {
        let vm = self.vms.get_mut(id).ok_or(InventoryError::UnknownVm(id))?;
        if vm.power != PowerState::Off {
            return Err(InventoryError::VmPoweredOn(id));
        }
        if !vm.is_template {
            vm.is_template = true;
            self.templates += 1;
        }
        Ok(())
    }

    /// Looks up a VM.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(id)
    }

    /// Fails with `UnknownVm` unless `id` is live.
    pub fn vm_checked(&self, id: VmId) -> Result<&Vm, InventoryError> {
        self.vms.get(id).ok_or(InventoryError::UnknownVm(id))
    }

    /// Mutable VM lookup (for layers that adjust disks or names).
    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.vms.get_mut(id)
    }

    /// Iterates live VMs in deterministic order.
    pub fn vms(&self) -> impl Iterator<Item = (VmId, &Vm)> {
        self.vms.iter()
    }

    /// Powers a VM on, reserving host CPU/memory.
    ///
    /// # Errors
    ///
    /// Fails if the VM is unknown, a template, already on, or its host
    /// lacks free memory or is unavailable.
    pub fn power_on(&mut self, id: VmId) -> Result<(), InventoryError> {
        let vm = self.vm_checked(id)?;
        if vm.is_template {
            return Err(InventoryError::IsTemplate(id));
        }
        if vm.power == PowerState::On {
            return Err(InventoryError::AlreadyInPowerState(id));
        }
        let host_id = vm.host;
        let (mem, cpu) = (vm.spec.mem_mb, vm.spec.cpu_demand_mhz());
        let host = self
            .hosts
            .get_mut(host_id)
            .ok_or(InventoryError::UnknownHost(host_id))?;
        if host.state != HostState::Connected {
            return Err(InventoryError::HostNotAvailable(host_id));
        }
        if host.mem_free_mb() < mem {
            return Err(InventoryError::InsufficientMemory {
                host: host_id,
                requested_mb: mem,
                available_mb: host.mem_free_mb(),
            });
        }
        host.mem_used_mb += mem;
        host.cpu_used_mhz += cpu;
        self.vms
            .get_mut(id)
            .expect("vm_checked verified the id above")
            .power = PowerState::On;
        self.powered_on += 1;
        self.reindex_host(host_id);
        Ok(())
    }

    /// Powers a VM off, releasing host CPU/memory.
    pub fn power_off(&mut self, id: VmId) -> Result<(), InventoryError> {
        let vm = self.vm_checked(id)?;
        if vm.power != PowerState::On {
            return Err(InventoryError::AlreadyInPowerState(id));
        }
        let host_id = vm.host;
        let (mem, cpu) = (vm.spec.mem_mb, vm.spec.cpu_demand_mhz());
        if let Some(host) = self.hosts.get_mut(host_id) {
            host.mem_used_mb = host.mem_used_mb.saturating_sub(mem);
            host.cpu_used_mhz = host.cpu_used_mhz.saturating_sub(cpu);
            self.reindex_host(host_id);
        }
        self.vms
            .get_mut(id)
            .expect("vm_checked verified the id above")
            .power = PowerState::Off;
        self.powered_on -= 1;
        Ok(())
    }

    /// Destroys a VM. Must be powered off. Returns its record; the caller
    /// (storage layer) releases its disks.
    pub fn destroy_vm(&mut self, id: VmId) -> Result<Vm, InventoryError> {
        let vm = self.vm_checked(id)?;
        if vm.power == PowerState::On {
            return Err(InventoryError::VmPoweredOn(id));
        }
        let vm = self.vms.remove(id).expect("checked live");
        if vm.is_template {
            self.templates -= 1;
        }
        if let Some(host) = self.hosts.get_mut(vm.host) {
            host.vms.retain(|v| *v != id);
            self.reindex_host(vm.host);
        }
        Ok(vm)
    }

    /// Re-registers a powered-off VM on another host (vMotion handles the
    /// powered-on case with identical accounting, since reservations follow
    /// power state).
    pub fn relocate_vm(&mut self, id: VmId, to_host: HostId) -> Result<(), InventoryError> {
        let vm = self.vm_checked(id)?;
        let from = vm.host;
        let powered = vm.power == PowerState::On;
        let (mem, cpu) = (vm.spec.mem_mb, vm.spec.cpu_demand_mhz());
        let dest = self.host_checked(to_host)?;
        if !dest.accepts_placements() {
            return Err(InventoryError::HostNotAvailable(to_host));
        }
        if powered && dest.mem_free_mb() < mem {
            return Err(InventoryError::InsufficientMemory {
                host: to_host,
                requested_mb: mem,
                available_mb: dest.mem_free_mb(),
            });
        }
        if let Some(h) = self.hosts.get_mut(from) {
            h.vms.retain(|v| *v != id);
            if powered {
                h.mem_used_mb = h.mem_used_mb.saturating_sub(mem);
                h.cpu_used_mhz = h.cpu_used_mhz.saturating_sub(cpu);
            }
        }
        let h = self
            .hosts
            .get_mut(to_host)
            .expect("host_checked verified the id above");
        h.vms.push(id);
        if powered {
            h.mem_used_mb += mem;
            h.cpu_used_mhz += cpu;
        }
        self.vms
            .get_mut(id)
            .expect("vm_checked verified the id above")
            .host = to_host;
        self.reindex_host(from);
        self.reindex_host(to_host);
        Ok(())
    }

    // ---- placement candidate queries ------------------------------------

    /// Live datastores in most-free-space-first order (ties: lower id
    /// first), with their free space. Maintained incrementally; O(1) to
    /// reach the best candidate.
    pub fn datastores_by_free(&self) -> impl Iterator<Item = (DatastoreId, f64)> + '_ {
        self.index.datastores_by_free()
    }

    /// Hosts connected to `ds` in least-loaded-first order (memory
    /// utilization, then registered-VM count, then id). Callers apply
    /// their own eligibility filters (state, memory headroom, exclusions).
    pub fn hosts_by_load(&self, ds: DatastoreId) -> impl Iterator<Item = HostId> + '_ {
        self.index.hosts_by_load(ds)
    }

    /// Re-keys `host` in the load index after its utilization or VM count
    /// changed. No-op for dead hosts.
    fn reindex_host(&mut self, host: HostId) {
        if let Some(h) = self.hosts.get(host) {
            self.index.host_load_changed(
                host,
                (OrdF64(h.mem_utilization()), h.vms.len()),
                &h.datastores,
            );
        }
    }

    // ---- aggregate queries ----------------------------------------------

    /// Entity counts for scaling cost models.
    pub fn counts(&self) -> InventoryCounts {
        InventoryCounts {
            hosts: self.hosts.len(),
            datastores: self.datastores.len(),
            vms: self.vms.len(),
            powered_on: self.powered_on,
            templates: self.templates,
        }
    }

    /// Verifies internal accounting invariants; used by tests and debug
    /// assertions. Returns a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut on = 0;
        let mut templ = 0;
        for (id, vm) in self.vms.iter() {
            if vm.power == PowerState::On {
                on += 1;
            }
            if vm.is_template {
                templ += 1;
            }
            let host = self
                .hosts
                .get(vm.host)
                .ok_or_else(|| format!("vm {id} registered on missing host {}", vm.host))?;
            if !host.vms.contains(&id) {
                return Err(format!("host {} does not list vm {id}", vm.host));
            }
        }
        if on != self.powered_on {
            return Err(format!(
                "powered_on counter {} != actual {}",
                self.powered_on, on
            ));
        }
        if templ != self.templates {
            return Err(format!(
                "templates counter {} != actual {}",
                self.templates, templ
            ));
        }
        for (hid, host) in self.hosts.iter() {
            let mem: u64 = host
                .vms
                .iter()
                .filter_map(|v| self.vms.get(*v))
                .filter(|v| v.power == PowerState::On)
                .map(|v| v.spec.mem_mb)
                .sum();
            if mem != host.mem_used_mb {
                return Err(format!(
                    "host {hid} mem accounting {} != sum of powered-on VMs {mem}",
                    host.mem_used_mb
                ));
            }
        }
        self.check_index_invariants()
    }

    /// Verifies that the placement index mirrors the arenas exactly.
    fn check_index_invariants(&self) -> Result<(), String> {
        let (keys, ordered) = self.index.datastore_entries();
        if keys != self.datastores.len() || ordered != self.datastores.len() {
            return Err(format!(
                "datastore index size {keys}/{ordered} != {} live datastores",
                self.datastores.len()
            ));
        }
        for (id, ds) in self.datastores.iter() {
            match self.index.ds_key(id) {
                Some(free) if free == ds.free_gb() => {}
                other => {
                    return Err(format!(
                        "datastore {id} indexed free {other:?} != actual {}",
                        ds.free_gb()
                    ))
                }
            }
        }
        if self.index.host_entries() != self.hosts.len() {
            return Err(format!(
                "host index size {} != {} live hosts",
                self.index.host_entries(),
                self.hosts.len()
            ));
        }
        let connections: usize = self.hosts.iter().map(|(_, h)| h.datastores.len()).sum();
        if self.index.connection_entries() != connections {
            return Err(format!(
                "host-load index has {} entries != {connections} connections",
                self.index.connection_entries()
            ));
        }
        for (id, host) in self.hosts.iter() {
            match self.index.host_key(id) {
                Some((util, vms)) if util == host.mem_utilization() && vms == host.vms.len() => {}
                other => {
                    return Err(format!(
                        "host {id} indexed key {other:?} != actual ({}, {})",
                        host.mem_utilization(),
                        host.vms.len()
                    ))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dc() -> (Inventory, HostId, DatastoreId) {
        let mut inv = Inventory::new();
        let ds = inv.add_datastore(DatastoreSpec::new("ds0", 1000.0, 200.0));
        let h = inv.add_host(HostSpec::new("h0", 20_000, 65_536));
        inv.connect_host_datastore(h, ds).unwrap();
        (inv, h, ds)
    }

    #[test]
    fn create_power_cycle_destroy() {
        let (mut inv, h, ds) = small_dc();
        let vm = inv
            .create_vm("vm0", VmSpec::new(2, 4096, 40.0), h, ds)
            .unwrap();
        inv.power_on(vm).unwrap();
        assert_eq!(inv.counts().powered_on, 1);
        assert_eq!(inv.host(h).unwrap().mem_used_mb, 4096);
        assert_eq!(inv.host(h).unwrap().cpu_used_mhz, 2000);
        inv.check_invariants().unwrap();

        assert_eq!(inv.destroy_vm(vm), Err(InventoryError::VmPoweredOn(vm)));
        inv.power_off(vm).unwrap();
        assert_eq!(inv.host(h).unwrap().mem_used_mb, 0);
        inv.destroy_vm(vm).unwrap();
        assert_eq!(inv.counts().vms, 0);
        inv.check_invariants().unwrap();
    }

    #[test]
    fn power_on_respects_memory_capacity() {
        let (mut inv, h, ds) = small_dc();
        let big = inv
            .create_vm("big", VmSpec::new(8, 60_000, 10.0), h, ds)
            .unwrap();
        let too_big = inv
            .create_vm("too-big", VmSpec::new(8, 10_000, 10.0), h, ds)
            .unwrap();
        inv.power_on(big).unwrap();
        let err = inv.power_on(too_big).unwrap_err();
        assert!(matches!(err, InventoryError::InsufficientMemory { .. }));
        inv.check_invariants().unwrap();
    }

    #[test]
    fn double_power_transitions_rejected() {
        let (mut inv, h, ds) = small_dc();
        let vm = inv
            .create_vm("vm", VmSpec::new(1, 1024, 10.0), h, ds)
            .unwrap();
        assert_eq!(
            inv.power_off(vm),
            Err(InventoryError::AlreadyInPowerState(vm))
        );
        inv.power_on(vm).unwrap();
        assert_eq!(
            inv.power_on(vm),
            Err(InventoryError::AlreadyInPowerState(vm))
        );
    }

    #[test]
    fn templates_cannot_power_on() {
        let (mut inv, h, ds) = small_dc();
        let t = inv
            .create_vm("tmpl", VmSpec::new(1, 1024, 10.0), h, ds)
            .unwrap();
        inv.mark_template(t).unwrap();
        assert_eq!(inv.power_on(t), Err(InventoryError::IsTemplate(t)));
        assert_eq!(inv.counts().templates, 1);
        // idempotent
        inv.mark_template(t).unwrap();
        assert_eq!(inv.counts().templates, 1);
    }

    #[test]
    fn create_requires_connectivity() {
        let mut inv = Inventory::new();
        let ds = inv.add_datastore(DatastoreSpec::new("ds", 100.0, 50.0));
        let h = inv.add_host(HostSpec::new("h", 1000, 1024));
        let err = inv
            .create_vm("vm", VmSpec::new(1, 256, 1.0), h, ds)
            .unwrap_err();
        assert!(matches!(err, InventoryError::DatastoreNotConnected { .. }));
    }

    #[test]
    fn maintenance_host_rejects_placements() {
        let (mut inv, h, ds) = small_dc();
        inv.set_host_state(h, HostState::Maintenance).unwrap();
        let err = inv
            .create_vm("vm", VmSpec::new(1, 256, 1.0), h, ds)
            .unwrap_err();
        assert_eq!(err, InventoryError::HostNotAvailable(h));
    }

    #[test]
    fn relocate_moves_reservations_with_power_state() {
        let (mut inv, h1, ds) = small_dc();
        let h2 = inv.add_host(HostSpec::new("h1", 20_000, 65_536));
        inv.connect_host_datastore(h2, ds).unwrap();
        let vm = inv
            .create_vm("vm", VmSpec::new(2, 4096, 10.0), h1, ds)
            .unwrap();
        inv.power_on(vm).unwrap();
        inv.relocate_vm(vm, h2).unwrap();
        assert_eq!(inv.host(h1).unwrap().mem_used_mb, 0);
        assert_eq!(inv.host(h2).unwrap().mem_used_mb, 4096);
        assert_eq!(inv.vm(vm).unwrap().host, h2);
        inv.check_invariants().unwrap();
    }

    #[test]
    fn remove_host_cleans_datastore_links() {
        let (mut inv, h, ds) = small_dc();
        inv.remove_host(h).unwrap();
        assert!(inv.datastore(ds).unwrap().hosts.is_empty());
        assert!(inv.host(h).is_none());
    }

    #[test]
    fn datastore_usage_clamps_at_zero() {
        let (mut inv, _h, ds) = small_dc();
        inv.adjust_datastore_usage(ds, 10.0).unwrap();
        inv.adjust_datastore_usage(ds, -50.0).unwrap();
        assert_eq!(inv.datastore(ds).unwrap().used_gb, 0.0);
    }

    #[test]
    fn stale_ids_error_cleanly() {
        let (mut inv, h, ds) = small_dc();
        let vm = inv
            .create_vm("vm", VmSpec::new(1, 256, 1.0), h, ds)
            .unwrap();
        inv.destroy_vm(vm).unwrap();
        assert_eq!(inv.power_on(vm), Err(InventoryError::UnknownVm(vm)));
        assert_eq!(inv.vm_checked(vm), Err(InventoryError::UnknownVm(vm)));
    }
}
