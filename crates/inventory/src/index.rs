//! Incrementally maintained placement candidate indexes.
//!
//! The placement engine used to scan every datastore and every connected
//! host per decision; these indexes keep the two orderings it needs — most
//! free space first for datastores, least loaded first for hosts — sorted
//! as the inventory mutates, so a placement query is a bounded walk from
//! the best candidate instead of an O(n) scan. Every capacity update is
//! O(log n) (a remove + insert in the affected ordered sets).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{DatastoreId, HostId};

/// A totally ordered `f64` key. Inventory metrics (free gigabytes, memory
/// utilization) are always finite and non-negative; `total_cmp` gives them
/// an `Ord` without the NaN panic path that `partial_cmp().expect()` would
/// carry into every comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Host sort key: memory utilization, then registered-VM count. Matches the
/// least-loaded placement comparator (ties broken by id in the set itself).
pub(crate) type HostKey = (OrdF64, usize);

/// The candidate indexes, owned and maintained by
/// [`Inventory`](crate::Inventory).
#[derive(Clone, Debug, Default)]
pub(crate) struct PlacementIndex {
    /// Datastores ordered by (free space, `Reverse`(id)): reverse iteration
    /// yields most-free-first with lower ids winning ties.
    by_free: BTreeSet<(OrdF64, Reverse<DatastoreId>)>,
    /// The free-space key currently indexed for each datastore.
    ds_key: BTreeMap<DatastoreId, OrdF64>,
    /// Connected hosts per datastore, ordered by (utilization, VM count,
    /// id): forward iteration is least-loaded-first.
    hosts_by_load: BTreeMap<DatastoreId, BTreeSet<(OrdF64, usize, HostId)>>,
    /// The load key currently indexed for each host.
    host_key: BTreeMap<HostId, HostKey>,
}

impl PlacementIndex {
    /// Registers a datastore with `free_gb` of space.
    pub fn datastore_added(&mut self, id: DatastoreId, free_gb: f64) {
        let key = OrdF64(free_gb);
        self.ds_key.insert(id, key);
        self.by_free.insert((key, Reverse(id)));
    }

    /// Re-keys a datastore after its free space changed.
    pub fn datastore_free_changed(&mut self, id: DatastoreId, free_gb: f64) {
        let key = OrdF64(free_gb);
        let old = self.ds_key.insert(id, key).expect("datastore not indexed");
        if old != key {
            self.by_free.remove(&(old, Reverse(id)));
            self.by_free.insert((key, Reverse(id)));
        }
    }

    /// Registers a host (not yet connected to any datastore).
    pub fn host_added(&mut self, id: HostId, key: HostKey) {
        self.host_key.insert(id, key);
    }

    /// Records that `host` can now reach `ds`.
    pub fn connected(&mut self, host: HostId, ds: DatastoreId) {
        let (util, vms) = *self.host_key.get(&host).expect("host not indexed");
        self.hosts_by_load
            .entry(ds)
            .or_default()
            .insert((util, vms, host));
    }

    /// Re-keys a host in every datastore set it belongs to after its load
    /// changed. `datastores` is the host's connection list.
    pub fn host_load_changed(&mut self, id: HostId, key: HostKey, datastores: &[DatastoreId]) {
        let old = self.host_key.insert(id, key).expect("host not indexed");
        if old == key {
            return;
        }
        for ds in datastores {
            if let Some(set) = self.hosts_by_load.get_mut(ds) {
                set.remove(&(old.0, old.1, id));
                set.insert((key.0, key.1, id));
            }
        }
    }

    /// Drops a host from the index. `datastores` is its connection list.
    pub fn host_removed(&mut self, id: HostId, datastores: &[DatastoreId]) {
        if let Some((util, vms)) = self.host_key.remove(&id) {
            for ds in datastores {
                if let Some(set) = self.hosts_by_load.get_mut(ds) {
                    set.remove(&(util, vms, id));
                }
            }
        }
    }

    /// Datastores in most-free-first order (ties: lower id first), with the
    /// indexed free space.
    pub fn datastores_by_free(&self) -> impl Iterator<Item = (DatastoreId, f64)> + '_ {
        self.by_free
            .iter()
            .rev()
            .map(|&(key, Reverse(id))| (id, key.0))
    }

    /// Hosts connected to `ds` in least-loaded-first order (utilization,
    /// then registered-VM count, then id).
    pub fn hosts_by_load(&self, ds: DatastoreId) -> impl Iterator<Item = HostId> + '_ {
        self.hosts_by_load
            .get(&ds)
            .into_iter()
            .flat_map(|set| set.iter().map(|&(_, _, id)| id))
    }

    /// The indexed free-space key for `ds` (invariant checking).
    pub fn ds_key(&self, ds: DatastoreId) -> Option<f64> {
        self.ds_key.get(&ds).map(|k| k.0)
    }

    /// The indexed load key for `host` (invariant checking).
    pub fn host_key(&self, host: HostId) -> Option<(f64, usize)> {
        self.host_key.get(&host).map(|&(u, n)| (u.0, n))
    }

    /// Total entries across all per-datastore host sets (invariant
    /// checking: must equal the number of host↔datastore connections).
    pub fn connection_entries(&self) -> usize {
        self.hosts_by_load.values().map(|s| s.len()).sum()
    }

    /// Number of indexed datastores (invariant checking).
    pub fn datastore_entries(&self) -> (usize, usize) {
        (self.ds_key.len(), self.by_free.len())
    }

    /// Number of indexed hosts (invariant checking).
    pub fn host_entries(&self) -> usize {
        self.host_key.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;

    fn ds(i: u32) -> DatastoreId {
        DatastoreId::from_parts(i, 1)
    }

    fn host(i: u32) -> HostId {
        HostId::from_parts(i, 1)
    }

    #[test]
    fn datastores_order_by_free_desc_then_id_asc() {
        let mut idx = PlacementIndex::default();
        idx.datastore_added(ds(0), 50.0);
        idx.datastore_added(ds(1), 100.0);
        idx.datastore_added(ds(2), 100.0);
        let order: Vec<_> = idx.datastores_by_free().map(|(id, _)| id).collect();
        assert_eq!(order, vec![ds(1), ds(2), ds(0)], "ties: lower id first");
        idx.datastore_free_changed(ds(0), 200.0);
        let order: Vec<_> = idx.datastores_by_free().map(|(id, _)| id).collect();
        assert_eq!(order, vec![ds(0), ds(1), ds(2)]);
    }

    #[test]
    fn hosts_order_by_load_then_vms_then_id() {
        let mut idx = PlacementIndex::default();
        idx.datastore_added(ds(0), 10.0);
        for i in 0..3 {
            idx.host_added(host(i), (OrdF64(0.0), 0));
            idx.connected(host(i), ds(0));
        }
        idx.host_load_changed(host(0), (OrdF64(0.5), 1), &[ds(0)]);
        idx.host_load_changed(host(1), (OrdF64(0.0), 2), &[ds(0)]);
        let order: Vec<_> = idx.hosts_by_load(ds(0)).collect();
        // host2 (util 0, 0 vms) < host1 (util 0, 2 vms) < host0 (util 0.5).
        assert_eq!(order, vec![host(2), host(1), host(0)]);
        idx.host_removed(host(2), &[ds(0)]);
        let order: Vec<_> = idx.hosts_by_load(ds(0)).collect();
        assert_eq!(order, vec![host(1), host(0)]);
    }

    #[test]
    fn rekey_is_idempotent_for_unchanged_keys() {
        let mut idx = PlacementIndex::default();
        idx.datastore_added(ds(0), 10.0);
        idx.datastore_free_changed(ds(0), 10.0);
        assert_eq!(idx.datastore_entries(), (1, 1));
        idx.host_added(host(0), (OrdF64(0.25), 3));
        idx.connected(host(0), ds(0));
        idx.host_load_changed(host(0), (OrdF64(0.25), 3), &[ds(0)]);
        assert_eq!(idx.connection_entries(), 1);
    }
}
