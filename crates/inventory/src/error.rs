//! Inventory error type.

use std::fmt;

use crate::ids::{DatastoreId, HostId, VmId};

/// Errors raised by [`Inventory`](crate::Inventory) operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InventoryError {
    /// A host id did not resolve to a live host.
    UnknownHost(HostId),
    /// A VM id did not resolve to a live VM.
    UnknownVm(VmId),
    /// A datastore id did not resolve to a live datastore.
    UnknownDatastore(DatastoreId),
    /// The host cannot reach the requested datastore.
    DatastoreNotConnected {
        /// The host in question.
        host: HostId,
        /// The unreachable datastore.
        datastore: DatastoreId,
    },
    /// The host lacks free memory for the requested power-on.
    InsufficientMemory {
        /// The host in question.
        host: HostId,
        /// MiB requested.
        requested_mb: u64,
        /// MiB available.
        available_mb: u64,
    },
    /// The VM is already in the requested power state.
    AlreadyInPowerState(VmId),
    /// The operation is invalid for a template (e.g. powering one on).
    IsTemplate(VmId),
    /// The host is not in a state that accepts the operation.
    HostNotAvailable(HostId),
    /// The VM is powered on and must be off for this operation.
    VmPoweredOn(VmId),
}

impl fmt::Display for InventoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InventoryError::UnknownHost(id) => write!(f, "unknown host {id}"),
            InventoryError::UnknownVm(id) => write!(f, "unknown vm {id}"),
            InventoryError::UnknownDatastore(id) => write!(f, "unknown datastore {id}"),
            InventoryError::DatastoreNotConnected { host, datastore } => {
                write!(f, "host {host} is not connected to datastore {datastore}")
            }
            InventoryError::InsufficientMemory {
                host,
                requested_mb,
                available_mb,
            } => write!(
                f,
                "host {host} has {available_mb} MiB free, {requested_mb} MiB requested"
            ),
            InventoryError::AlreadyInPowerState(id) => {
                write!(f, "vm {id} is already in the requested power state")
            }
            InventoryError::IsTemplate(id) => write!(f, "vm {id} is a template"),
            InventoryError::HostNotAvailable(id) => {
                write!(f, "host {id} is not available for operations")
            }
            InventoryError::VmPoweredOn(id) => write!(f, "vm {id} is powered on"),
        }
    }
}

impl std::error::Error for InventoryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = InventoryError::InsufficientMemory {
            host: HostId::from_parts(1, 1),
            requested_mb: 4096,
            available_mb: 1024,
        };
        let msg = e.to_string();
        assert!(msg.contains("4096"));
        assert!(msg.contains("1024"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> =
            Box::new(InventoryError::UnknownVm(VmId::from_parts(0, 1)));
        assert!(e.to_string().contains("unknown vm"));
    }
}
