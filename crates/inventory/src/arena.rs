//! A generational arena: stable typed ids, O(1) insert/remove, detection of
//! stale ids after slot reuse.

use crate::ids::EntityId;

#[derive(Clone, Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A typed generational arena mapping `I` ids to `T` values.
///
/// ```
/// use cpsim_inventory::{Arena, VmId};
/// let mut arena: Arena<VmId, &str> = Arena::new();
/// let a = arena.insert("alpha");
/// let b = arena.insert("beta");
/// assert_eq!(arena.get(a), Some(&"alpha"));
/// assert_eq!(arena.remove(a), Some("alpha"));
/// assert_eq!(arena.get(a), None);      // stale id detected
/// assert_eq!(arena.len(), 1);
/// let c = arena.insert("gamma");       // reuses slot 0...
/// assert_ne!(a, c);                    // ...under a new generation
/// assert_eq!(arena.get(b), Some(&"beta"));
/// ```
#[derive(Clone, Debug)]
pub struct Arena<I, T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
    _marker: std::marker::PhantomData<I>,
}

impl<I: EntityId, T> Arena<I, T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Inserts `value` and returns its id.
    pub fn insert(&mut self, value: T) -> I {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.generation += 1;
            slot.value = Some(value);
            I::from_parts(index, slot.generation)
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena exceeded u32::MAX slots");
            self.slots.push(Slot {
                generation: 1,
                value: Some(value),
            });
            I::from_parts(index, 1)
        }
    }

    /// Looks up `id`; `None` if it was removed (or never existed).
    pub fn get(&self, id: I) -> Option<&T> {
        let slot = self.slots.get(id.index() as usize)?;
        if slot.generation == id.generation() {
            slot.value.as_ref()
        } else {
            None
        }
    }

    /// Mutable lookup of `id`.
    pub fn get_mut(&mut self, id: I) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index() as usize)?;
        if slot.generation == id.generation() {
            slot.value.as_mut()
        } else {
            None
        }
    }

    /// Whether `id` currently resolves to a live entity.
    pub fn contains(&self, id: I) -> bool {
        self.get(id).is_some()
    }

    /// Removes `id`, returning its value if it was live.
    pub fn remove(&mut self, id: I) -> Option<T> {
        let slot = self.slots.get_mut(id.index() as usize)?;
        if slot.generation != id.generation() {
            return None;
        }
        let value = slot.value.take()?;
        self.free.push(id.index());
        self.len -= 1;
        Some(value)
    }

    /// Number of live entities.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live entities.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates live entities in ascending slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value
                .as_ref()
                .map(|v| (I::from_parts(i as u32, s.generation), v))
        })
    }

    /// Iterates live entities mutably in ascending slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (I, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let generation = s.generation;
            s.value
                .as_mut()
                .map(move |v| (I::from_parts(i as u32, generation), v))
        })
    }

    /// Iterates the ids of live entities in ascending slot order.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

impl<I: EntityId, T> Default for Arena<I, T> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VmId;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove() {
        let mut a: Arena<VmId, i32> = Arena::new();
        let x = a.insert(10);
        let y = a.insert(20);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(x), Some(&10));
        *a.get_mut(y).unwrap() = 25;
        assert_eq!(a.remove(y), Some(25));
        assert_eq!(a.remove(y), None);
        assert_eq!(a.len(), 1);
        assert!(!a.contains(y));
        assert!(a.contains(x));
    }

    #[test]
    fn stale_ids_do_not_resolve_after_reuse() {
        let mut a: Arena<VmId, &str> = Arena::new();
        let x = a.insert("old");
        a.remove(x);
        let y = a.insert("new");
        assert_eq!(x.index(), y.index(), "slot should be reused");
        assert_eq!(a.get(x), None);
        assert_eq!(a.get(y), Some(&"new"));
        assert_eq!(a.remove(x), None);
    }

    #[test]
    fn iteration_is_in_slot_order() {
        let mut a: Arena<VmId, u32> = Arena::new();
        let ids: Vec<VmId> = (0..5).map(|i| a.insert(i)).collect();
        a.remove(ids[2]);
        let seen: Vec<u32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(seen, vec![0, 1, 3, 4]);
        let id_list: Vec<VmId> = a.ids().collect();
        assert_eq!(id_list.len(), 4);
    }

    #[test]
    fn iter_mut_updates_in_place() {
        let mut a: Arena<VmId, u32> = Arena::new();
        for i in 0..3 {
            a.insert(i);
        }
        for (_, v) in a.iter_mut() {
            *v *= 10;
        }
        let seen: Vec<u32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(seen, vec![0, 10, 20]);
    }

    proptest! {
        /// Random interleavings of inserts and removes preserve the
        /// contains/len invariants.
        #[test]
        fn random_ops_maintain_invariants(ops in proptest::collection::vec(0u8..4, 1..200)) {
            let mut arena: Arena<VmId, usize> = Arena::new();
            let mut live: Vec<VmId> = Vec::new();
            let mut dead: Vec<VmId> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match op {
                    0 | 1 => live.push(arena.insert(i)),
                    2 if !live.is_empty() => {
                        let id = live.remove(i % live.len());
                        prop_assert!(arena.remove(id).is_some());
                        dead.push(id);
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(arena.len(), live.len());
            for &id in &live {
                prop_assert!(arena.contains(id));
            }
            for &id in &dead {
                prop_assert!(!arena.contains(id));
            }
            prop_assert_eq!(arena.iter().count(), live.len());
        }
    }
}
