//! The virtualized-datacenter inventory: the shared entity model every
//! other layer (storage, host agents, management plane, cloud director)
//! reads and updates.
//!
//! Entities live in generational [`Arena`]s, so a stale id (e.g. a task
//! referencing a VM destroyed by a lease expiry) is detected rather than
//! silently resolving to a recycled slot.
//!
//! # Example
//!
//! ```
//! use cpsim_inventory::{HostSpec, DatastoreSpec, Inventory, VmSpec, PowerState};
//!
//! let mut inv = Inventory::new();
//! let ds = inv.add_datastore(DatastoreSpec::new("ds0", 4096.0, 200.0));
//! let host = inv.add_host(HostSpec::new("esx0", 24_000, 131_072));
//! inv.connect_host_datastore(host, ds)?;
//!
//! let vm = inv.create_vm("web-01", VmSpec::new(2, 4096, 40.0), host, ds)?;
//! inv.power_on(vm)?;
//! assert_eq!(inv.vm(vm).unwrap().power, PowerState::On);
//! assert_eq!(inv.host(host).unwrap().mem_used_mb, 4096);
//! # Ok::<(), cpsim_inventory::InventoryError>(())
//! ```

pub mod arena;
pub mod entities;
pub mod error;
pub mod ids;
mod index;
mod model;

pub use arena::Arena;
pub use entities::{Datastore, DatastoreSpec, Host, HostSpec, HostState, PowerState, Vm, VmSpec};
pub use error::InventoryError;
pub use ids::{
    ClusterId, DatastoreId, DiskId, EntityId, HostId, NetworkId, OrgId, TaskId, VappId, VmId,
};
pub use model::{Inventory, InventoryCounts};
