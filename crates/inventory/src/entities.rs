//! Entity records: hosts, datastores, and virtual machines.
//!
//! Static configuration lives in `*Spec` types (what an administrator
//! declares); dynamic state (power, placement, usage counters) lives in the
//! entity records and is updated through [`Inventory`](crate::Inventory)
//! methods so accounting invariants hold.

use serde::{Deserialize, Serialize};

use crate::ids::{DatastoreId, DiskId, HostId, VmId};

/// Administrative state of a host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostState {
    /// Connected to the management server and accepting operations.
    Connected,
    /// In maintenance mode: runs no VMs and accepts no placements.
    Maintenance,
    /// Disconnected: unreachable by the management server.
    Disconnected,
}

/// Power state of a VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Powered off.
    Off,
    /// Powered on and running.
    On,
    /// Suspended to disk.
    Suspended,
}

/// Declared capacity of a host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Display name.
    pub name: String,
    /// Aggregate CPU capacity in MHz.
    pub cpu_mhz: u64,
    /// Physical memory in MiB.
    pub mem_mb: u64,
}

impl HostSpec {
    /// Creates a host spec.
    pub fn new(name: impl Into<String>, cpu_mhz: u64, mem_mb: u64) -> Self {
        HostSpec {
            name: name.into(),
            cpu_mhz,
            mem_mb,
        }
    }
}

/// A virtualization host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Declared capacity.
    pub spec: HostSpec,
    /// Administrative state.
    pub state: HostState,
    /// Datastores this host can reach.
    pub datastores: Vec<DatastoreId>,
    /// VMs registered to this host.
    pub vms: Vec<VmId>,
    /// CPU reserved by powered-on VMs, in MHz.
    pub cpu_used_mhz: u64,
    /// Memory reserved by powered-on VMs, in MiB.
    pub mem_used_mb: u64,
}

impl Host {
    /// Creates a connected host with no VMs.
    pub fn new(spec: HostSpec) -> Self {
        Host {
            spec,
            state: HostState::Connected,
            datastores: Vec::new(),
            vms: Vec::new(),
            cpu_used_mhz: 0,
            mem_used_mb: 0,
        }
    }

    /// Number of powered-on-reserved MiB still free.
    pub fn mem_free_mb(&self) -> u64 {
        self.spec.mem_mb.saturating_sub(self.mem_used_mb)
    }

    /// Fraction of memory in use (0..=1).
    pub fn mem_utilization(&self) -> f64 {
        if self.spec.mem_mb == 0 {
            0.0
        } else {
            self.mem_used_mb as f64 / self.spec.mem_mb as f64
        }
    }

    /// Whether the host can accept new placements.
    pub fn accepts_placements(&self) -> bool {
        self.state == HostState::Connected
    }
}

/// Declared capacity of a datastore.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatastoreSpec {
    /// Display name.
    pub name: String,
    /// Capacity in GiB.
    pub capacity_gb: f64,
    /// Aggregate copy bandwidth in MiB/s, shared by concurrent transfers.
    pub bandwidth_mbps: f64,
}

impl DatastoreSpec {
    /// Creates a datastore spec.
    pub fn new(name: impl Into<String>, capacity_gb: f64, bandwidth_mbps: f64) -> Self {
        DatastoreSpec {
            name: name.into(),
            capacity_gb,
            bandwidth_mbps,
        }
    }
}

/// A shared datastore.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Datastore {
    /// Declared capacity.
    pub spec: DatastoreSpec,
    /// Hosts connected to this datastore.
    pub hosts: Vec<HostId>,
    /// Space allocated to disks, in GiB (maintained by `cpsim-storage`).
    pub used_gb: f64,
}

impl Datastore {
    /// Creates a datastore with no connected hosts.
    pub fn new(spec: DatastoreSpec) -> Self {
        Datastore {
            spec,
            hosts: Vec::new(),
            used_gb: 0.0,
        }
    }

    /// GiB still unallocated.
    pub fn free_gb(&self) -> f64 {
        (self.spec.capacity_gb - self.used_gb).max(0.0)
    }

    /// Fraction of capacity allocated (0..=1, saturating).
    pub fn utilization(&self) -> f64 {
        if self.spec.capacity_gb <= 0.0 {
            0.0
        } else {
            (self.used_gb / self.spec.capacity_gb).min(1.0)
        }
    }
}

/// Declared shape of a VM.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Configured memory in MiB.
    pub mem_mb: u64,
    /// Primary disk size in GiB.
    pub disk_gb: f64,
}

impl VmSpec {
    /// Creates a VM spec.
    pub fn new(vcpus: u32, mem_mb: u64, disk_gb: f64) -> Self {
        VmSpec {
            vcpus,
            mem_mb,
            disk_gb,
        }
    }

    /// Nominal CPU demand in MHz (a fixed per-vCPU reservation).
    pub fn cpu_demand_mhz(&self) -> u64 {
        u64::from(self.vcpus) * 1_000
    }
}

/// A virtual machine (templates are VMs with [`Vm::is_template`] set).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Display name.
    pub name: String,
    /// Declared shape.
    pub spec: VmSpec,
    /// Power state.
    pub power: PowerState,
    /// Host the VM is registered on.
    pub host: HostId,
    /// Datastore holding the VM's home directory.
    pub datastore: DatastoreId,
    /// Virtual disks (content in `cpsim-storage`).
    pub disks: Vec<DiskId>,
    /// Whether this VM is a template (clone source, never powered on).
    pub is_template: bool,
}

impl Vm {
    /// Creates a powered-off VM registered on `host`/`datastore`.
    pub fn new(
        name: impl Into<String>,
        spec: VmSpec,
        host: HostId,
        datastore: DatastoreId,
    ) -> Self {
        Vm {
            name: name.into(),
            spec,
            power: PowerState::Off,
            host,
            datastore,
            disks: Vec::new(),
            is_template: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;

    #[test]
    fn host_accounting_helpers() {
        let mut h = Host::new(HostSpec::new("h", 10_000, 1_000));
        assert_eq!(h.mem_free_mb(), 1_000);
        h.mem_used_mb = 250;
        assert_eq!(h.mem_free_mb(), 750);
        assert_eq!(h.mem_utilization(), 0.25);
        assert!(h.accepts_placements());
        h.state = HostState::Maintenance;
        assert!(!h.accepts_placements());
    }

    #[test]
    fn datastore_free_space_saturates() {
        let mut d = Datastore::new(DatastoreSpec::new("d", 100.0, 50.0));
        d.used_gb = 120.0;
        assert_eq!(d.free_gb(), 0.0);
        assert_eq!(d.utilization(), 1.0);
    }

    #[test]
    fn vm_spec_cpu_demand() {
        assert_eq!(VmSpec::new(4, 8_192, 40.0).cpu_demand_mhz(), 4_000);
    }

    #[test]
    fn new_vm_is_off_and_not_template() {
        let vm = Vm::new(
            "x",
            VmSpec::new(1, 512, 10.0),
            HostId::from_parts(0, 1),
            DatastoreId::from_parts(0, 1),
        );
        assert_eq!(vm.power, PowerState::Off);
        assert!(!vm.is_template);
        assert!(vm.disks.is_empty());
    }

    #[test]
    fn zero_capacity_is_not_a_division_error() {
        let h = Host::new(HostSpec::new("h", 0, 0));
        assert_eq!(h.mem_utilization(), 0.0);
        let d = Datastore::new(DatastoreSpec::new("d", 0.0, 1.0));
        assert_eq!(d.utilization(), 0.0);
    }
}
