//! The self-service cloud layer (vCloud-Director-style) on top of the
//! management control plane.
//!
//! Cloud users do not submit individual management operations; they submit
//! *requests* — "instantiate a vApp of 8 VMs from this catalog template",
//! "delete that vApp" — which the [`CloudDirector`] translates into chains
//! of management [`Operation`](cpsim_mgmt::Operation)s: clone → fencing
//! reconfigure → power-on per VM, power-off → destroy on teardown, and so
//! on. This fan-out (one request, many operations) is precisely why cloud
//! workflows stress the management control plane differently from classic
//! datacenter administration.
//!
//! The director also owns the *cloud reconfiguration* workflows the paper
//! highlights: redistributing template copies across datastores and
//! absorbing new datastores/hosts into the cloud while serving load.
//!
//! Like the plane, the director is a passive state machine: the simulation
//! driver feeds it requests and task reports and routes what it emits.

pub mod director;
pub mod request;
pub mod vapp;

pub use director::{CloudDirector, CloudOut, FailurePolicy, ProvisioningPolicy};
pub use request::{CloudReport, CloudRequest, CloudStats};
pub use vapp::{Org, Vapp, VappState};
