//! The [`CloudDirector`]: translates cloud requests into chains of
//! management operations and tracks workflow completion.

use cpsim_des::{FastMap, SimTime};
use cpsim_inventory::{Arena, OrgId, PowerState, VappId, VmId};
use cpsim_mgmt::{CloneMode, ControlPlane, Emit, OpKind, Operation, TaskReport};

use crate::request::{CloudReport, CloudRequest, CloudStats};
use crate::vapp::{Org, Vapp, VappState};

/// What the director does when a provisioning member fails terminally
/// (after the control plane's own retry budget is spent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Record the failure and let the workflow finish degraded.
    #[default]
    Fail,
    /// Re-submit the failed clone — a fresh submission re-runs admission
    /// and placement, steering around declared-down hosts — up to
    /// `max_attempts` total attempts.
    Retry {
        /// Total attempts per member, including the first.
        max_attempts: u32,
    },
    /// Tear the whole vApp down when any member fails: all-or-nothing
    /// instantiation.
    Rollback,
}

/// How the director provisions vApp members.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProvisioningPolicy {
    /// Clone mode used when a request does not override it.
    pub mode: CloneMode,
    /// Whether each clone gets a fencing reconfigure (per-vApp network
    /// isolation — standard in self-service clouds).
    pub fencing: bool,
    /// Whether members are powered on after provisioning.
    pub power_on: bool,
    /// What to do when a member fails terminally.
    pub on_failure: FailurePolicy,
}

impl Default for ProvisioningPolicy {
    fn default() -> Self {
        ProvisioningPolicy {
            mode: CloneMode::Linked,
            fencing: true,
            power_on: true,
            on_failure: FailurePolicy::Fail,
        }
    }
}

/// Everything a director call wants routed by the simulation driver.
#[derive(Debug, Default)]
pub struct CloudOut {
    /// Management-plane emissions to schedule/route.
    pub mgmt: Vec<Emit>,
    /// Cloud requests that completed.
    pub reports: Vec<CloudReport>,
    /// Lease expiries to schedule: at the given time, call
    /// [`CloudDirector::on_lease_expiry`].
    pub leases: Vec<(SimTime, VappId)>,
}

/// Per-operation continuation state.
#[derive(Clone, Copy, Debug)]
enum OpCtx {
    Clone {
        wf: u64,
        vapp: VappId,
        source: VmId,
        mode: CloneMode,
        attempt: u32,
    },
    Fence {
        wf: u64,
        vm: VmId,
    },
    PowerOnStep {
        wf: u64,
    },
    PowerOffOnly {
        wf: u64,
    },
    PowerOffThenDestroy {
        wf: u64,
        vapp: VappId,
        vm: VmId,
    },
    Destroy {
        wf: u64,
        vapp: Option<VappId>,
        vm: VmId,
    },
    Seed {
        wf: u64,
    },
    Rescan {
        wf: u64,
    },
    HostAdd {
        wf: u64,
    },
    Relocate {
        wf: u64,
    },
}

impl OpCtx {
    fn workflow(self) -> u64 {
        match self {
            OpCtx::Clone { wf, .. }
            | OpCtx::Fence { wf, .. }
            | OpCtx::PowerOnStep { wf }
            | OpCtx::PowerOffOnly { wf }
            | OpCtx::PowerOffThenDestroy { wf, .. }
            | OpCtx::Destroy { wf, .. }
            | OpCtx::Seed { wf }
            | OpCtx::Rescan { wf }
            | OpCtx::HostAdd { wf }
            | OpCtx::Relocate { wf } => wf,
        }
    }
}

#[derive(Debug)]
struct Workflow {
    kind: &'static str,
    started_at: SimTime,
    vapp: Option<VappId>,
    outstanding: u32,
    issued: u32,
    failed: u32,
    lease: Option<cpsim_des::SimDuration>,
}

/// The cloud director.
#[derive(Debug)]
pub struct CloudDirector {
    orgs: Arena<OrgId, Org>,
    vapps: Arena<VappId, Vapp>,
    templates: Vec<VmId>,
    policy: ProvisioningPolicy,
    /// In-flight workflows and per-task contexts, by tag. Accessed by
    /// key only (insert / get / remove / len); never iterated.
    // cpsim-lint: allow(no-unordered-iteration): keyed access only; never iterated
    workflows: FastMap<u64, Workflow>,
    // cpsim-lint: allow(no-unordered-iteration): keyed access only; never iterated
    ctx: FastMap<u64, OpCtx>,
    next_wf: u64,
    next_tag: u64,
    stats: CloudStats,
    name_seq: u64,
}

impl CloudDirector {
    /// Creates a director with `policy`.
    pub fn new(policy: ProvisioningPolicy) -> Self {
        CloudDirector {
            orgs: Arena::new(),
            vapps: Arena::new(),
            templates: Vec::new(),
            policy,
            workflows: FastMap::default(),
            ctx: FastMap::default(),
            next_wf: 1,
            // Tag 0 is reserved for untracked (directly submitted) ops.
            next_tag: 1,
            stats: CloudStats::new(),
            name_seq: 0,
        }
    }

    /// Creates a tenant org.
    pub fn create_org(&mut self, name: impl Into<String>) -> OrgId {
        self.orgs.insert(Org::new(name))
    }

    /// Registers `template` in the catalog (used by add-datastore seeding).
    pub fn register_template(&mut self, template: VmId) {
        if !self.templates.contains(&template) {
            self.templates.push(template);
        }
    }

    /// Catalog templates.
    pub fn templates(&self) -> &[VmId] {
        &self.templates
    }

    /// Adopts an externally-provisioned set of VMs as a deployed vApp
    /// (setup-time helper for pre-populated datacenters).
    pub fn adopt_vapp(
        &mut self,
        org: OrgId,
        name: impl Into<String>,
        vms: Vec<VmId>,
        now: SimTime,
    ) -> VappId {
        let mut vapp = Vapp::new(name, org, now);
        vapp.vms = vms;
        vapp.state = VappState::Deployed;
        let id = self.vapps.insert(vapp);
        if let Some(o) = self.orgs.get_mut(org) {
            o.vapp_count += 1;
        }
        id
    }

    /// Looks up a vApp.
    pub fn vapp(&self, id: VappId) -> Option<&Vapp> {
        self.vapps.get(id)
    }

    /// Iterates vApps deterministically.
    pub fn vapps(&self) -> impl Iterator<Item = (VappId, &Vapp)> {
        self.vapps.iter()
    }

    /// Cloud statistics.
    pub fn stats(&self) -> &CloudStats {
        &self.stats
    }

    /// The provisioning policy.
    pub fn policy(&self) -> ProvisioningPolicy {
        self.policy
    }

    /// Workflows still in flight.
    pub fn workflows_in_flight(&self) -> usize {
        self.workflows.len()
    }

    /// Submits a cloud request at `now`, translating it into management
    /// operations. Returns the workflow id and the emissions to route.
    pub fn submit(
        &mut self,
        now: SimTime,
        request: CloudRequest,
        plane: &mut ControlPlane,
    ) -> (u64, CloudOut) {
        self.stats.on_submitted();
        let kind = request.name();
        let wf_id = self.next_wf;
        self.next_wf += 1;
        let mut out = CloudOut::default();
        let mut wf = Workflow {
            kind,
            started_at: now,
            vapp: None,
            outstanding: 0,
            issued: 0,
            failed: 0,
            lease: None,
        };

        match request {
            CloudRequest::InstantiateVapp {
                org,
                template,
                count,
                mode,
                lease,
            } => {
                self.name_seq += 1;
                let vapp =
                    self.vapps
                        .insert(Vapp::new(format!("vapp-{:05}", self.name_seq), org, now));
                if let Some(o) = self.orgs.get_mut(org) {
                    o.vapp_count += 1;
                }
                wf.vapp = Some(vapp);
                wf.lease = lease;
                let mode = mode.unwrap_or(self.policy.mode);
                for _ in 0..count {
                    self.issue(
                        now,
                        &mut wf,
                        OpCtx::Clone {
                            wf: wf_id,
                            vapp,
                            source: template,
                            mode,
                            attempt: 1,
                        },
                        OpKind::CloneVm {
                            source: template,
                            mode,
                        },
                        plane,
                        &mut out,
                    );
                }
            }
            CloudRequest::StartVapp { vapp } => {
                wf.vapp = Some(vapp);
                let members = self.members_in_state(vapp, plane, PowerState::Off);
                for vm in members {
                    self.issue(
                        now,
                        &mut wf,
                        OpCtx::PowerOnStep { wf: wf_id },
                        OpKind::PowerOn { vm },
                        plane,
                        &mut out,
                    );
                }
            }
            CloudRequest::StopVapp { vapp } => {
                wf.vapp = Some(vapp);
                let members = self.members_in_state(vapp, plane, PowerState::On);
                for vm in members {
                    self.issue(
                        now,
                        &mut wf,
                        OpCtx::PowerOffOnly { wf: wf_id },
                        OpKind::PowerOff { vm },
                        plane,
                        &mut out,
                    );
                }
            }
            CloudRequest::DeleteVapp { vapp } => {
                wf.vapp = Some(vapp);
                if let Some(v) = self.vapps.get_mut(vapp) {
                    v.state = VappState::Deleting;
                }
                let members: Vec<VmId> = self
                    .vapps
                    .get(vapp)
                    .map(|v| v.vms.clone())
                    .unwrap_or_default();
                for vm in members {
                    let powered_on = plane
                        .inventory()
                        .vm(vm)
                        .map(|v| v.power == PowerState::On)
                        .unwrap_or(false);
                    if powered_on {
                        self.issue(
                            now,
                            &mut wf,
                            OpCtx::PowerOffThenDestroy {
                                wf: wf_id,
                                vapp,
                                vm,
                            },
                            OpKind::PowerOff { vm },
                            plane,
                            &mut out,
                        );
                    } else {
                        self.issue(
                            now,
                            &mut wf,
                            OpCtx::Destroy {
                                wf: wf_id,
                                vapp: Some(vapp),
                                vm,
                            },
                            OpKind::DestroyVm { vm },
                            plane,
                            &mut out,
                        );
                    }
                }
            }
            CloudRequest::RecomposeVapp {
                vapp,
                add,
                template,
            } => {
                wf.vapp = Some(vapp);
                for _ in 0..add {
                    self.issue(
                        now,
                        &mut wf,
                        OpCtx::Clone {
                            wf: wf_id,
                            vapp,
                            source: template,
                            mode: self.policy.mode,
                            attempt: 1,
                        },
                        OpKind::CloneVm {
                            source: template,
                            mode: self.policy.mode,
                        },
                        plane,
                        &mut out,
                    );
                }
            }
            CloudRequest::RedistributeTemplate { template } => {
                let all: Vec<_> = plane.inventory().datastores().map(|(id, _)| id).collect();
                let missing: Vec<_> = plane.residency().missing_from(template, &all).collect();
                for ds in missing {
                    self.issue(
                        now,
                        &mut wf,
                        OpCtx::Seed { wf: wf_id },
                        OpKind::SeedTemplate { template, dst: ds },
                        plane,
                        &mut out,
                    );
                }
            }
            CloudRequest::AddDatastore {
                spec,
                seed_templates,
            } => {
                let ds = plane.add_datastore(spec);
                let hosts: Vec<_> = plane.inventory().hosts().map(|(id, _)| id).collect();
                for h in &hosts {
                    plane.connect(*h, ds).expect("fresh datastore");
                }
                for h in hosts {
                    self.issue(
                        now,
                        &mut wf,
                        OpCtx::Rescan { wf: wf_id },
                        OpKind::RescanDatastores { host: h },
                        plane,
                        &mut out,
                    );
                }
                if seed_templates {
                    for template in self.templates.clone() {
                        self.issue(
                            now,
                            &mut wf,
                            OpCtx::Seed { wf: wf_id },
                            OpKind::SeedTemplate { template, dst: ds },
                            plane,
                            &mut out,
                        );
                    }
                }
            }
            CloudRequest::RebalanceDatastores { target_utilization } => {
                let target = target_utilization.clamp(0.0, 1.0);
                // Plan moves against a projected usage tally so one pass
                // does not over- or under-shoot.
                let mut usage: Vec<(cpsim_inventory::DatastoreId, f64, f64)> = plane
                    .inventory()
                    .datastores()
                    .map(|(id, d)| (id, d.used_gb, d.spec.capacity_gb))
                    .collect();
                let over: Vec<cpsim_inventory::DatastoreId> = usage
                    .iter()
                    .filter(|(_, used, cap)| *cap > 0.0 && used / cap > target)
                    .map(|(id, _, _)| *id)
                    .collect();
                for ds in over {
                    // Candidate movers: non-template VMs homed on `ds`,
                    // smallest first (cheapest moves first).
                    let mut movers: Vec<(VmId, f64)> = plane
                        .inventory()
                        .vms()
                        .filter(|(_, v)| !v.is_template && v.datastore == ds)
                        .map(|(id, v)| {
                            let gb: f64 = v
                                .disks
                                .iter()
                                .filter_map(|d| plane.storage().disk(*d))
                                .map(|d| d.allocated_gb)
                                .sum();
                            (id, gb)
                        })
                        .collect();
                    movers.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                    for (vm, gb) in movers {
                        let (src_used, src_cap) = usage
                            .iter()
                            .find(|(id, _, _)| *id == ds)
                            .map(|(_, u, c)| (*u, *c))
                            .expect("usage covers every datastore; ds came from it");
                        if src_cap <= 0.0 || src_used / src_cap <= target {
                            break;
                        }
                        // Destination: emptiest other datastore with room.
                        let dst = usage
                            .iter()
                            .filter(|(id, used, cap)| {
                                *id != ds && cap - used >= gb && (used + gb) / cap <= target
                            })
                            .min_by(|a, b| {
                                (a.1 / a.2)
                                    .total_cmp(&(b.1 / b.2))
                                    .then_with(|| a.0.cmp(&b.0))
                            })
                            .map(|(id, _, _)| *id);
                        let Some(dst) = dst else { break };
                        for entry in usage.iter_mut() {
                            if entry.0 == ds {
                                entry.1 -= gb;
                            } else if entry.0 == dst {
                                entry.1 += gb;
                            }
                        }
                        self.issue(
                            now,
                            &mut wf,
                            OpCtx::Relocate { wf: wf_id },
                            OpKind::RelocateVm { vm, dst },
                            plane,
                            &mut out,
                        );
                    }
                }
            }
            CloudRequest::AddHost { spec } => {
                let datastores: Vec<_> = plane.inventory().datastores().map(|(id, _)| id).collect();
                self.issue(
                    now,
                    &mut wf,
                    OpCtx::HostAdd { wf: wf_id },
                    OpKind::add_host(spec, datastores),
                    plane,
                    &mut out,
                );
            }
        }

        if wf.outstanding == 0 {
            // Nothing to do: complete immediately.
            let report = Self::report_of(wf_id, &wf, now);
            self.stats.on_completed(&report);
            self.finalize_vapp(&wf, now, &mut out);
            out.reports.push(report);
        } else {
            self.workflows.insert(wf_id, wf);
        }
        (wf_id, out)
    }

    /// Routes a finished management task back into its workflow chain.
    /// Reports with unknown tags (directly submitted ops) are ignored.
    pub fn on_task_report(
        &mut self,
        now: SimTime,
        report: &TaskReport,
        plane: &mut ControlPlane,
    ) -> CloudOut {
        let mut out = CloudOut::default();
        let Some(ctx) = self.ctx.remove(&report.tag) else {
            return out;
        };
        let wf_id = ctx.workflow();
        let ok = report.is_success();
        let mut chain_ended = true;
        let mut failed_step = !ok;

        match ctx {
            OpCtx::Clone {
                wf,
                vapp,
                source,
                mode,
                attempt,
            } => {
                if !ok {
                    if let FailurePolicy::Retry { max_attempts } = self.policy.on_failure {
                        if attempt < max_attempts {
                            // Re-place and retry: the fresh submission
                            // re-runs admission and placement, so the
                            // member can land on a healthy host.
                            failed_step = false;
                            self.issue_continuation(
                                now,
                                wf,
                                OpCtx::Clone {
                                    wf,
                                    vapp,
                                    source,
                                    mode,
                                    attempt: attempt + 1,
                                },
                                OpKind::CloneVm { source, mode },
                                plane,
                                &mut out,
                            );
                            chain_ended = false;
                        }
                    }
                }
                if ok {
                    if let Some(vm) = report.produced_vm {
                        if let Some(v) = self.vapps.get_mut(vapp) {
                            v.vms.push(vm);
                        }
                        self.stats.on_vm_provisioned();
                        if self.policy.fencing {
                            self.issue_continuation(
                                now,
                                wf,
                                OpCtx::Fence { wf, vm },
                                OpKind::Reconfigure { vm },
                                plane,
                                &mut out,
                            );
                            chain_ended = false;
                        } else if self.policy.power_on {
                            self.issue_continuation(
                                now,
                                wf,
                                OpCtx::PowerOnStep { wf },
                                OpKind::PowerOn { vm },
                                plane,
                                &mut out,
                            );
                            chain_ended = false;
                        }
                    }
                }
            }
            OpCtx::Fence { wf, vm } => {
                if ok && self.policy.power_on {
                    self.issue_continuation(
                        now,
                        wf,
                        OpCtx::PowerOnStep { wf },
                        OpKind::PowerOn { vm },
                        plane,
                        &mut out,
                    );
                    chain_ended = false;
                }
            }
            OpCtx::PowerOnStep { .. } | OpCtx::PowerOffOnly { .. } => {}
            OpCtx::PowerOffThenDestroy { wf, vapp, vm } => {
                // Destroy regardless: a power-off failure usually means the
                // VM was already off.
                failed_step = false;
                self.issue_continuation(
                    now,
                    wf,
                    OpCtx::Destroy {
                        wf,
                        vapp: Some(vapp),
                        vm,
                    },
                    OpKind::DestroyVm { vm },
                    plane,
                    &mut out,
                );
                chain_ended = false;
            }
            OpCtx::Destroy { vapp, vm, .. } => {
                if ok {
                    self.stats.on_vm_destroyed();
                    if let Some(vapp) = vapp {
                        if let Some(v) = self.vapps.get_mut(vapp) {
                            v.vms.retain(|m| *m != vm);
                        }
                    }
                }
            }
            OpCtx::Seed { .. }
            | OpCtx::Rescan { .. }
            | OpCtx::HostAdd { .. }
            | OpCtx::Relocate { .. } => {}
        }

        // Bookkeeping on the workflow.
        let complete = {
            let wf = self
                .workflows
                .get_mut(&wf_id)
                .expect("report for unknown workflow");
            if failed_step {
                wf.failed += 1;
            }
            if chain_ended {
                wf.outstanding -= 1;
            }
            wf.outstanding == 0
        };
        if complete {
            let wf = self
                .workflows
                .remove(&wf_id)
                .expect("the `complete` closure just read this entry");
            let report = Self::report_of(wf_id, &wf, now);
            self.stats.on_completed(&report);
            self.finalize_vapp(&wf, now, &mut out);
            if self.policy.on_failure == FailurePolicy::Rollback
                && report.ops_failed > 0
                && wf.kind == "instantiate-vapp"
            {
                // All-or-nothing: a degraded vApp is torn down rather
                // than handed to the tenant.
                if let Some(vapp) = wf.vapp {
                    if self.vapps.get(vapp).is_some() {
                        let (_, rb) = self.submit(now, CloudRequest::DeleteVapp { vapp }, plane);
                        out.mgmt.extend(rb.mgmt);
                        out.reports.extend(rb.reports);
                        out.leases.extend(rb.leases);
                    }
                }
            }
            out.reports.push(report);
        }
        out
    }

    /// Handles a lease expiry scheduled via [`CloudOut::leases`]: tears the
    /// vApp down if it still exists.
    pub fn on_lease_expiry(
        &mut self,
        now: SimTime,
        vapp: VappId,
        plane: &mut ControlPlane,
    ) -> CloudOut {
        self.stats.on_lease_expiry();
        match self.vapps.get(vapp) {
            Some(v) if v.state != VappState::Deleting => {
                let (_, out) = self.submit(now, CloudRequest::DeleteVapp { vapp }, plane);
                out
            }
            _ => CloudOut::default(),
        }
    }

    // ---- internals -------------------------------------------------------

    fn issue(
        &mut self,
        now: SimTime,
        wf: &mut Workflow,
        ctx: OpCtx,
        op: OpKind,
        plane: &mut ControlPlane,
        out: &mut CloudOut,
    ) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.ctx.insert(tag, ctx);
        wf.outstanding += 1;
        wf.issued += 1;
        plane.submit(now, Operation::tagged(op, tag), &mut out.mgmt);
    }

    /// Like [`issue`], but for a continuation inside an already-registered
    /// workflow (outstanding stays balanced: the ended step is replaced by
    /// the new one).
    fn issue_continuation(
        &mut self,
        now: SimTime,
        wf_id: u64,
        ctx: OpCtx,
        op: OpKind,
        plane: &mut ControlPlane,
        out: &mut CloudOut,
    ) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.ctx.insert(tag, ctx);
        if let Some(wf) = self.workflows.get_mut(&wf_id) {
            wf.issued += 1;
        }
        plane.submit(now, Operation::tagged(op, tag), &mut out.mgmt);
    }

    fn members_in_state(&self, vapp: VappId, plane: &ControlPlane, state: PowerState) -> Vec<VmId> {
        self.vapps
            .get(vapp)
            .map(|v| {
                v.vms
                    .iter()
                    .copied()
                    .filter(|vm| {
                        plane
                            .inventory()
                            .vm(*vm)
                            .map(|v| v.power == state)
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn report_of(wf_id: u64, wf: &Workflow, now: SimTime) -> CloudReport {
        CloudReport {
            kind: wf.kind,
            workflow: wf_id,
            submitted_at: wf.started_at,
            completed_at: now,
            latency: now.since(wf.started_at),
            ops_issued: wf.issued,
            ops_failed: wf.failed,
            vapp: wf.vapp,
        }
    }

    /// Applies end-of-workflow vApp state transitions and lease scheduling.
    fn finalize_vapp(&mut self, wf: &Workflow, now: SimTime, out: &mut CloudOut) {
        let Some(vapp) = wf.vapp else { return };
        match wf.kind {
            "instantiate-vapp" | "recompose-vapp" => {
                if let Some(v) = self.vapps.get_mut(vapp) {
                    v.state = VappState::Deployed;
                    if let Some(lease) = wf.lease {
                        let expires = now + lease;
                        v.lease_expires = Some(expires);
                        out.leases.push((expires, vapp));
                    }
                }
            }
            "delete-vapp" => {
                if let Some(v) = self.vapps.remove(vapp) {
                    if let Some(o) = self.orgs.get_mut(v.org) {
                        o.vapp_count = o.vapp_count.saturating_sub(1);
                    }
                }
            }
            _ => {}
        }
    }
}

impl Default for CloudDirector {
    fn default() -> Self {
        CloudDirector::new(ProvisioningPolicy::default())
    }
}
