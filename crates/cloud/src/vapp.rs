//! Tenant-visible entities: organizations and vApps.

use cpsim_des::SimTime;
use cpsim_inventory::{OrgId, VmId};

/// A tenant organization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Org {
    /// Display name.
    pub name: String,
    /// vApps deployed by this org (by the director's vapp arena ids).
    pub vapp_count: u64,
}

impl Org {
    /// Creates an org.
    pub fn new(name: impl Into<String>) -> Self {
        Org {
            name: name.into(),
            vapp_count: 0,
        }
    }
}

/// Lifecycle state of a vApp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VappState {
    /// Being provisioned.
    Deploying,
    /// All provisioning chains finished (some VMs may have failed).
    Deployed,
    /// Being torn down.
    Deleting,
}

/// A group of VMs deployed together by one tenant request.
#[derive(Clone, Debug, PartialEq)]
pub struct Vapp {
    /// Display name.
    pub name: String,
    /// Owning org.
    pub org: OrgId,
    /// Member VMs (filled in as clones complete).
    pub vms: Vec<VmId>,
    /// Lifecycle state.
    pub state: VappState,
    /// When the vApp's lease expires (auto-delete), if any.
    pub lease_expires: Option<SimTime>,
    /// When deployment was requested.
    pub created_at: SimTime,
}

impl Vapp {
    /// Creates a deploying vApp.
    pub fn new(name: impl Into<String>, org: OrgId, created_at: SimTime) -> Self {
        Vapp {
            name: name.into(),
            org,
            vms: Vec::new(),
            state: VappState::Deploying,
            lease_expires: None,
            created_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::EntityId;

    #[test]
    fn vapp_starts_deploying_and_empty() {
        let v = Vapp::new("web", OrgId::from_parts(0, 1), SimTime::ZERO);
        assert_eq!(v.state, VappState::Deploying);
        assert!(v.vms.is_empty());
        assert!(v.lease_expires.is_none());
    }

    #[test]
    fn org_counts_start_at_zero() {
        let o = Org::new("acme");
        assert_eq!(o.vapp_count, 0);
        assert_eq!(o.name, "acme");
    }
}
