//! Cloud-level requests, reports, and statistics.

use std::collections::BTreeMap;

use cpsim_des::{SimDuration, SimTime};
use cpsim_inventory::{DatastoreSpec, HostSpec, OrgId, VappId, VmId};
use cpsim_metrics::Histogram;
use cpsim_mgmt::CloneMode;

/// A tenant- or operator-level request to the cloud.
#[derive(Clone, Debug, PartialEq)]
pub enum CloudRequest {
    /// Deploy a vApp of `count` VMs cloned from `template`.
    InstantiateVapp {
        /// Owning org.
        org: OrgId,
        /// Catalog template to clone.
        template: VmId,
        /// Number of member VMs.
        count: u32,
        /// Clone mode override (None = director policy).
        mode: Option<CloneMode>,
        /// Auto-delete after this long (None = no lease).
        lease: Option<SimDuration>,
    },
    /// Power on every member of a vApp.
    StartVapp {
        /// Target vApp.
        vapp: VappId,
    },
    /// Power off every running member of a vApp.
    StopVapp {
        /// Target vApp.
        vapp: VappId,
    },
    /// Tear down a vApp (power off + destroy every member).
    DeleteVapp {
        /// Target vApp.
        vapp: VappId,
    },
    /// Grow an existing vApp by `add` more clones.
    RecomposeVapp {
        /// Target vApp.
        vapp: VappId,
        /// VMs to add.
        add: u32,
        /// Template to clone from.
        template: VmId,
    },
    /// Seed `template` onto every cloud datastore missing it
    /// (reconfiguration: template redistribution).
    RedistributeTemplate {
        /// The template.
        template: VmId,
    },
    /// Add a datastore to the cloud: connect all hosts, rescan them, and
    /// optionally seed all registered templates onto it.
    AddDatastore {
        /// The new datastore.
        spec: DatastoreSpec,
        /// Whether to seed catalog templates onto it immediately.
        seed_templates: bool,
    },
    /// Add a host to the cloud (management add-host workflow).
    AddHost {
        /// The new host.
        spec: HostSpec,
    },
    /// Rebalance storage: relocate VMs off datastores whose space
    /// utilization exceeds `target_utilization` (0..1) onto the emptiest
    /// datastores (cloud reconfiguration: storage-DRS-style pass).
    RebalanceDatastores {
        /// Utilization ceiling the pass tries to restore.
        target_utilization: f64,
    },
}

impl CloudRequest {
    /// Stable lowercase name for stats and traces.
    pub fn name(&self) -> &'static str {
        match self {
            CloudRequest::InstantiateVapp { .. } => "instantiate-vapp",
            CloudRequest::StartVapp { .. } => "start-vapp",
            CloudRequest::StopVapp { .. } => "stop-vapp",
            CloudRequest::DeleteVapp { .. } => "delete-vapp",
            CloudRequest::RecomposeVapp { .. } => "recompose-vapp",
            CloudRequest::RedistributeTemplate { .. } => "redistribute-template",
            CloudRequest::AddDatastore { .. } => "add-datastore",
            CloudRequest::AddHost { .. } => "add-host-cloud",
            CloudRequest::RebalanceDatastores { .. } => "rebalance-datastores",
        }
    }
}

/// Completion report of one cloud request.
#[derive(Clone, Debug, PartialEq)]
pub struct CloudReport {
    /// Request name.
    pub kind: &'static str,
    /// Workflow id.
    pub workflow: u64,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time.
    pub completed_at: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Management operations issued on behalf of this request.
    pub ops_issued: u32,
    /// Of those, how many failed.
    pub ops_failed: u32,
    /// The vApp concerned, if any.
    pub vapp: Option<VappId>,
}

impl CloudReport {
    /// Whether every underlying operation succeeded.
    pub fn is_clean(&self) -> bool {
        self.ops_failed == 0
    }
}

/// Cloud-level statistics.
#[derive(Clone, Debug, Default)]
pub struct CloudStats {
    submitted: u64,
    by_kind: BTreeMap<&'static str, (u64, Histogram)>,
    vms_provisioned: u64,
    vms_destroyed: u64,
    lease_expiries: u64,
}

impl CloudStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        CloudStats::default()
    }

    /// Notes a request submission.
    pub fn on_submitted(&mut self) {
        self.submitted += 1;
    }

    /// Records a completed request.
    pub fn on_completed(&mut self, report: &CloudReport) {
        let (count, hist) = self.by_kind.entry(report.kind).or_default();
        *count += 1;
        hist.record(report.latency.as_secs_f64());
    }

    /// Notes a VM successfully provisioned.
    pub fn on_vm_provisioned(&mut self) {
        self.vms_provisioned += 1;
    }

    /// Notes a VM destroyed.
    pub fn on_vm_destroyed(&mut self) {
        self.vms_destroyed += 1;
    }

    /// Notes a lease firing.
    pub fn on_lease_expiry(&mut self) {
        self.lease_expiries += 1;
    }

    /// Requests submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Requests completed across kinds.
    pub fn completed(&self) -> u64 {
        self.by_kind.values().map(|(c, _)| c).sum()
    }

    /// Completions and latency distribution for `kind`.
    pub fn kind(&self, kind: &str) -> Option<(u64, &Histogram)> {
        self.by_kind.get(kind).map(|(c, h)| (*c, h))
    }

    /// Iterates kinds deterministically.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, u64, &Histogram)> + '_ {
        self.by_kind.iter().map(|(k, (c, h))| (*k, *c, h))
    }

    /// VMs provisioned.
    pub fn vms_provisioned(&self) -> u64 {
        self.vms_provisioned
    }

    /// VMs destroyed.
    pub fn vms_destroyed(&self) -> u64 {
        self.vms_destroyed
    }

    /// Lease expiries fired.
    pub fn lease_expiries(&self) -> u64 {
        self.lease_expiries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::EntityId;

    #[test]
    fn request_names() {
        let r = CloudRequest::StartVapp {
            vapp: VappId::from_parts(0, 1),
        };
        assert_eq!(r.name(), "start-vapp");
    }

    #[test]
    fn stats_accumulate() {
        let mut s = CloudStats::new();
        s.on_submitted();
        let report = CloudReport {
            kind: "instantiate-vapp",
            workflow: 1,
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::from_secs(30),
            latency: SimDuration::from_secs(30),
            ops_issued: 24,
            ops_failed: 0,
            vapp: None,
        };
        assert!(report.is_clean());
        s.on_completed(&report);
        s.on_vm_provisioned();
        assert_eq!(s.submitted(), 1);
        assert_eq!(s.completed(), 1);
        assert_eq!(s.vms_provisioned(), 1);
        let (count, hist) = s.kind("instantiate-vapp").unwrap();
        assert_eq!(count, 1);
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn dirty_report_flags() {
        let report = CloudReport {
            kind: "delete-vapp",
            workflow: 2,
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::from_secs(1),
            latency: SimDuration::from_secs(1),
            ops_issued: 4,
            ops_failed: 1,
            vapp: None,
        };
        assert!(!report.is_clean());
    }
}
