//! End-to-end tests of the cloud director driving the management plane.

use cpsim_cloud::{CloudDirector, CloudOut, CloudReport, CloudRequest};
use cpsim_des::{EventQueue, SimDuration, SimTime, Streams};
use cpsim_inventory::{DatastoreSpec, HostSpec, OrgId, PowerState, VappId, VmId, VmSpec};
use cpsim_mgmt::{CloneMode, ControlPlane, ControlPlaneConfig, Emit, MgmtEvent};

enum Ev {
    Mgmt(MgmtEvent),
    Lease(VappId),
}

struct Sim {
    plane: ControlPlane,
    director: CloudDirector,
    queue: EventQueue<Ev>,
    reports: Vec<CloudReport>,
}

impl Sim {
    fn route(&mut self, now: SimTime, out: CloudOut) {
        let mut stack = vec![out];
        while let Some(o) = stack.pop() {
            self.reports.extend(o.reports);
            for (t, vapp) in o.leases {
                self.queue.schedule(t, Ev::Lease(vapp));
            }
            for e in o.mgmt {
                match e {
                    Emit::At(t, ev) => self.queue.schedule(t, Ev::Mgmt(ev)),
                    Emit::Done(_, r) | Emit::Failed(_, r) => {
                        stack.push(self.director.on_task_report(now, &r, &mut self.plane));
                    }
                }
            }
        }
    }

    fn submit(&mut self, now: SimTime, req: CloudRequest) -> u64 {
        let (wf, out) = self.director.submit(now, req, &mut self.plane);
        self.route(now, out);
        wf
    }

    fn run_until(&mut self, horizon: SimTime) {
        let mut guard = 0u64;
        while let Some((t, ev)) = self.queue.pop() {
            if t > horizon {
                break;
            }
            guard += 1;
            assert!(guard < 10_000_000, "event storm");
            match ev {
                Ev::Mgmt(ev) => {
                    let emits = self.plane.handle_collect(t, ev);
                    let out = CloudOut {
                        mgmt: emits,
                        ..Default::default()
                    };
                    self.route(t, out);
                }
                Ev::Lease(vapp) => {
                    let out = self.director.on_lease_expiry(t, vapp, &mut self.plane);
                    self.route(t, out);
                }
            }
        }
    }
}

fn sim() -> (Sim, OrgId, VmId) {
    let cfg = ControlPlaneConfig {
        heartbeat: cpsim_hostagent::HeartbeatSpec::disabled(),
        ..Default::default()
    };
    let mut plane = ControlPlane::new(cfg, Streams::new(11));
    let ds0 = plane.add_datastore(DatastoreSpec::new("ds0", 4096.0, 200.0));
    let ds1 = plane.add_datastore(DatastoreSpec::new("ds1", 4096.0, 200.0));
    let mut hosts = Vec::new();
    for i in 0..4 {
        let h = plane.add_host(HostSpec::new(format!("h{i}"), 48_000, 262_144));
        plane.connect(h, ds0).unwrap();
        plane.connect(h, ds1).unwrap();
        hosts.push(h);
    }
    let template = plane
        .install_template("centos-6", VmSpec::new(2, 2_048, 20.0), hosts[0], ds0)
        .unwrap();
    let mut director = CloudDirector::default();
    director.register_template(template);
    let org = director.create_org("acme");
    (
        Sim {
            plane,
            director,
            queue: EventQueue::new(),
            reports: Vec::new(),
        },
        org,
        template,
    )
}

const FAR: SimTime = SimTime::from_hours(48);

#[test]
fn instantiate_vapp_provisions_fences_and_powers_on() {
    let (mut sim, org, template) = sim();
    let wf = sim.submit(
        SimTime::ZERO,
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: 4,
            mode: None,
            lease: None,
        },
    );
    sim.run_until(FAR);
    assert_eq!(sim.reports.len(), 1);
    let r = &sim.reports[0];
    assert_eq!(r.workflow, wf);
    assert_eq!(r.kind, "instantiate-vapp");
    assert!(r.is_clean(), "{} failed ops", r.ops_failed);
    // 4 clones + 4 fencing reconfigures + 4 power-ons.
    assert_eq!(r.ops_issued, 12);
    let vapp = r.vapp.unwrap();
    let v = sim.director.vapp(vapp).unwrap();
    assert_eq!(v.vms.len(), 4);
    assert_eq!(v.state, cpsim_cloud::VappState::Deployed);
    for vm in &v.vms {
        assert_eq!(sim.plane.inventory().vm(*vm).unwrap().power, PowerState::On);
    }
    assert_eq!(sim.director.stats().vms_provisioned(), 4);
    assert_eq!(sim.director.workflows_in_flight(), 0);
}

#[test]
fn lease_expiry_tears_the_vapp_down() {
    let (mut sim, org, template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: 3,
            mode: None,
            lease: Some(SimDuration::from_hours(2)),
        },
    );
    sim.run_until(FAR);
    // Two reports: the instantiate and the lease-triggered delete.
    assert_eq!(sim.reports.len(), 2);
    assert_eq!(sim.reports[1].kind, "delete-vapp");
    assert!(sim.reports[1].is_clean());
    let vapp = sim.reports[0].vapp.unwrap();
    assert!(sim.director.vapp(vapp).is_none(), "vapp gone after lease");
    // Only the template remains.
    assert_eq!(sim.plane.inventory().counts().vms, 1);
    assert_eq!(sim.director.stats().vms_destroyed(), 3);
    assert_eq!(sim.director.stats().lease_expiries(), 1);
    // Storage reclaimed down to the template's base plus the one shadow
    // replica that the first clone seeded on the second datastore (the
    // losers of the shadow race were collected with their clones).
    assert!(
        sim.plane.storage().len() <= 2,
        "{} disks left",
        sim.plane.storage().len()
    );
    sim.plane
        .storage()
        .check_invariants(sim.plane.inventory())
        .unwrap();
}

#[test]
fn stop_and_start_cycle() {
    let (mut sim, org, template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: 2,
            mode: None,
            lease: None,
        },
    );
    sim.run_until(FAR);
    let vapp = sim.reports[0].vapp.unwrap();

    sim.submit(SimTime::from_hours(49), CloudRequest::StopVapp { vapp });
    sim.run_until(SimTime::from_hours(72));
    let stop = sim.reports.last().unwrap();
    assert_eq!(stop.kind, "stop-vapp");
    assert_eq!(stop.ops_issued, 2);
    for vm in &sim.director.vapp(vapp).unwrap().vms {
        assert_eq!(
            sim.plane.inventory().vm(*vm).unwrap().power,
            PowerState::Off
        );
    }

    sim.submit(SimTime::from_hours(73), CloudRequest::StartVapp { vapp });
    sim.run_until(SimTime::from_hours(96));
    let start = sim.reports.last().unwrap();
    assert_eq!(start.kind, "start-vapp");
    assert!(start.is_clean());
    for vm in &sim.director.vapp(vapp).unwrap().vms {
        assert_eq!(sim.plane.inventory().vm(*vm).unwrap().power, PowerState::On);
    }
}

#[test]
fn start_on_running_vapp_completes_immediately_with_no_ops() {
    let (mut sim, org, template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: 2,
            mode: None,
            lease: None,
        },
    );
    sim.run_until(FAR);
    let vapp = sim.reports[0].vapp.unwrap();
    let before = sim.reports.len();
    sim.submit(SimTime::from_hours(49), CloudRequest::StartVapp { vapp });
    // No events needed: the report must already be there.
    assert_eq!(sim.reports.len(), before + 1);
    assert_eq!(sim.reports.last().unwrap().ops_issued, 0);
}

#[test]
fn delete_vapp_powers_off_then_destroys() {
    let (mut sim, org, template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: 3,
            mode: None,
            lease: None,
        },
    );
    sim.run_until(FAR);
    let vapp = sim.reports[0].vapp.unwrap();
    sim.submit(SimTime::from_hours(49), CloudRequest::DeleteVapp { vapp });
    sim.run_until(SimTime::from_hours(96));
    let del = sim.reports.last().unwrap();
    assert_eq!(del.kind, "delete-vapp");
    assert!(del.is_clean(), "{} failed", del.ops_failed);
    // 3 power-offs + 3 destroys.
    assert_eq!(del.ops_issued, 6);
    assert!(sim.director.vapp(vapp).is_none());
    assert_eq!(sim.plane.inventory().counts().vms, 1);
}

#[test]
fn recompose_grows_the_vapp() {
    let (mut sim, org, template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: 2,
            mode: None,
            lease: None,
        },
    );
    sim.run_until(FAR);
    let vapp = sim.reports[0].vapp.unwrap();
    sim.submit(
        SimTime::from_hours(49),
        CloudRequest::RecomposeVapp {
            vapp,
            add: 3,
            template,
        },
    );
    sim.run_until(SimTime::from_hours(96));
    assert_eq!(sim.director.vapp(vapp).unwrap().vms.len(), 5);
}

#[test]
fn redistribute_template_seeds_missing_datastores() {
    let (mut sim, _org, template) = sim();
    // Template starts resident only on its home datastore.
    assert_eq!(sim.plane.residency().replica_count(template), 1);
    sim.submit(
        SimTime::ZERO,
        CloudRequest::RedistributeTemplate { template },
    );
    sim.run_until(FAR);
    let r = sim.reports.last().unwrap();
    assert_eq!(r.kind, "redistribute-template");
    assert_eq!(r.ops_issued, 1, "one datastore was missing the template");
    assert!(r.is_clean());
    assert_eq!(sim.plane.residency().replica_count(template), 2);

    // Redistributing again is a no-op.
    sim.submit(
        SimTime::from_hours(49),
        CloudRequest::RedistributeTemplate { template },
    );
    assert_eq!(sim.reports.last().unwrap().ops_issued, 0);
}

#[test]
fn add_datastore_rescans_hosts_and_seeds_catalog() {
    let (mut sim, _org, template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::AddDatastore {
            spec: DatastoreSpec::new("ds-new", 8192.0, 200.0),
            seed_templates: true,
        },
    );
    sim.run_until(FAR);
    let r = sim.reports.last().unwrap();
    assert_eq!(r.kind, "add-datastore");
    // 4 host rescans + 1 template seed.
    assert_eq!(r.ops_issued, 5);
    assert!(r.is_clean(), "{} failed", r.ops_failed);
    assert_eq!(sim.plane.inventory().counts().datastores, 3);
    assert_eq!(sim.plane.residency().replica_count(template), 2);
}

#[test]
fn add_host_through_cloud_workflow() {
    let (mut sim, _org, _template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::AddHost {
            spec: HostSpec::new("h-new", 48_000, 262_144),
        },
    );
    sim.run_until(FAR);
    let r = sim.reports.last().unwrap();
    assert_eq!(r.kind, "add-host-cloud");
    assert!(r.is_clean());
    assert_eq!(sim.plane.inventory().counts().hosts, 5);
}

#[test]
fn rebalance_moves_vms_off_the_hot_datastore() {
    let (mut sim, org, template) = sim();
    // Build up a population with full clones (placement spreads them, so
    // force pressure by deploying a lot and then filling ds0's ledger).
    sim.submit(
        SimTime::ZERO,
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: 8,
            mode: Some(CloneMode::Full),
            lease: None,
        },
    );
    sim.run_until(FAR);
    // Find the fuller datastore and declare a tight target under it.
    let (hot, hot_util) = sim
        .plane
        .inventory()
        .datastores()
        .map(|(id, d)| (id, d.utilization()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(hot_util > 0.0);
    let target = hot_util * 0.5;
    sim.submit(
        SimTime::from_hours(49),
        CloudRequest::RebalanceDatastores {
            target_utilization: target,
        },
    );
    sim.run_until(SimTime::from_hours(96));
    let report = sim.reports.last().unwrap();
    assert_eq!(report.kind, "rebalance-datastores");
    assert!(report.ops_issued > 0, "rebalance must move something");
    assert!(report.is_clean(), "{} failed", report.ops_failed);
    let after = sim.plane.inventory().datastore(hot).unwrap().utilization();
    assert!(
        after < hot_util,
        "hot datastore should drain: {hot_util:.3} -> {after:.3}"
    );
    sim.plane
        .storage()
        .check_invariants(sim.plane.inventory())
        .unwrap();
}

#[test]
fn rebalance_on_balanced_cloud_is_a_noop() {
    let (mut sim, _org, _template) = sim();
    sim.submit(
        SimTime::ZERO,
        CloudRequest::RebalanceDatastores {
            target_utilization: 0.9,
        },
    );
    let report = sim.reports.last().unwrap();
    assert_eq!(report.kind, "rebalance-datastores");
    assert_eq!(report.ops_issued, 0);
}

#[test]
fn full_clone_policy_is_slower_than_linked() {
    let latency_with = |mode: CloneMode| -> f64 {
        let (mut sim, org, template) = sim();
        // Pre-seed the catalog everywhere so linked clones measure the
        // control path, not a first-use shadow copy.
        let all: Vec<_> = sim
            .plane
            .inventory()
            .datastores()
            .map(|(id, _)| id)
            .collect();
        for ds in all {
            let _ = sim.plane.seed_template_now(template, ds);
        }
        sim.submit(
            SimTime::ZERO,
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 4,
                mode: Some(mode),
                lease: None,
            },
        );
        sim.run_until(FAR);
        sim.reports[0].latency.as_secs_f64()
    };
    let linked = latency_with(CloneMode::Linked);
    let full = latency_with(CloneMode::Full);
    assert!(
        full > 4.0 * linked,
        "full {full:.0}s should dwarf linked {linked:.0}s"
    );
}
