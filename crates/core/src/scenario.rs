//! The [`Scenario`] builder: declaratively describe a simulated cloud and
//! build a runnable [`CloudSim`].

use cpsim_cloud::{CloudDirector, ProvisioningPolicy};
use cpsim_des::{SimTime, Streams};
use cpsim_faults::FaultPlan;
use cpsim_inventory::{DatastoreId, DatastoreSpec, HostId, HostSpec, VmId, VmSpec};
use cpsim_mgmt::{ControlPlane, ControlPlaneConfig};
use cpsim_workload::{Profile, RequestGenerator, Topology, WorkloadSpec};

use crate::driver::CloudSim;

/// A declarative simulation setup.
///
/// Build one from a calibrated [`Profile`] or assemble topology, workload
/// and control-plane configuration by hand; then [`build`](Scenario::build)
/// a runnable simulation.
#[derive(Clone, Debug)]
pub struct Scenario {
    seed: u64,
    config: ControlPlaneConfig,
    topology: Topology,
    workload: Option<WorkloadSpec>,
    policy: ProvisioningPolicy,
    collect_trace: bool,
    fault_plan: Option<FaultPlan>,
}

impl Scenario {
    /// Starts from a workload profile (topology + workload together).
    pub fn from_profile(profile: &Profile) -> Self {
        Scenario {
            seed: 0,
            config: ControlPlaneConfig::default(),
            topology: profile.topology.clone(),
            workload: Some(profile.workload.clone()),
            policy: ProvisioningPolicy::default(),
            collect_trace: true,
            fault_plan: None,
        }
    }

    /// Starts from a bare topology with no workload generator (requests
    /// are injected explicitly by the experiment driver).
    pub fn bare(topology: Topology) -> Self {
        Scenario {
            seed: 0,
            config: ControlPlaneConfig::default(),
            topology,
            workload: None,
            policy: ProvisioningPolicy::default(),
            collect_trace: true,
            fault_plan: None,
        }
    }

    /// Sets the master seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the control-plane configuration.
    pub fn config(mut self, config: ControlPlaneConfig) -> Self {
        self.config = config;
        self
    }

    /// Mutates the control-plane configuration in place.
    pub fn tune(mut self, f: impl FnOnce(&mut ControlPlaneConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Replaces the provisioning policy.
    pub fn policy(mut self, policy: ProvisioningPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the workload (or removes it with `None`).
    pub fn workload(mut self, workload: Option<WorkloadSpec>) -> Self {
        self.workload = workload;
        self
    }

    /// Enables/disables per-operation trace collection (default on).
    pub fn collect_trace(mut self, on: bool) -> Self {
        self.collect_trace = on;
        self
    }

    /// Installs a fault plan: its events are materialized from a dedicated
    /// RNG stream family at build time and injected during the run, and
    /// the control plane applies the plan's recovery policy. Without a
    /// plan (or with an empty one) runs are bit-identical to builds that
    /// never heard of faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The topology this scenario will build.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Builds the runnable simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or workload is invalid, or the topology
    /// cannot be materialized (e.g. templates too large for datastores).
    pub fn build(self) -> CloudSim {
        let streams = Streams::new(self.seed);
        let mut plane = ControlPlane::new(self.config, streams.substreams(1));
        let mut director = CloudDirector::new(self.policy);

        let (hosts, datastores, templates) =
            materialize_topology(&self.topology, &mut plane, &mut director);

        let org = director.create_org("default-org");
        let generator = self.workload.map(|spec| {
            RequestGenerator::new(spec, &streams.substreams(2), org, templates.clone())
        });

        // Fault materialization and the injector's own draws (timeout
        // coin-flips, backoff jitter) live on substream family 3, so they
        // never perturb the plane/workload streams.
        let fault_events = match &self.fault_plan {
            Some(plan) if !plan.is_empty() => {
                let fstreams = streams.substreams(3);
                plane.enable_faults(plan.recovery, plan.agent_timeout_prob, fstreams.rng(0));
                plan.materialize(&fstreams)
            }
            _ => Vec::new(),
        };

        CloudSim::assemble(
            plane,
            director,
            generator,
            hosts,
            datastores,
            templates,
            org,
            self.collect_trace,
            fault_events,
        )
    }
}

/// Builds hosts, datastores, templates, seeds, and any initial VM
/// population described by `topology`.
fn materialize_topology(
    topology: &Topology,
    plane: &mut ControlPlane,
    director: &mut CloudDirector,
) -> (Vec<HostId>, Vec<DatastoreId>, Vec<VmId>) {
    assert!(topology.hosts > 0, "topology needs at least one host");
    assert!(
        topology.datastores > 0,
        "topology needs at least one datastore"
    );
    assert!(
        !topology.templates.is_empty(),
        "topology needs at least one template"
    );

    let datastores: Vec<DatastoreId> = (0..topology.datastores)
        .map(|i| {
            plane.add_datastore(DatastoreSpec::new(
                format!("ds-{i:02}"),
                topology.ds_capacity_gb,
                topology.ds_bandwidth_mbps,
            ))
        })
        .collect();
    let hosts: Vec<HostId> = (0..topology.hosts)
        .map(|i| {
            plane.add_host(HostSpec::new(
                format!("host-{i:03}"),
                topology.host_cpu_mhz,
                topology.host_mem_mb,
            ))
        })
        .collect();
    for &h in &hosts {
        for &d in &datastores {
            plane.connect(h, d).expect("fresh ids");
        }
    }

    let mut templates = Vec::new();
    for (i, (name, vcpus, mem_mb, disk_gb)) in topology.templates.iter().enumerate() {
        let host = hosts[i % hosts.len()];
        let home_ds = datastores[i % datastores.len()];
        let spec = VmSpec::new(*vcpus, *mem_mb, *disk_gb);
        let template = plane
            .install_template(name, spec, host, home_ds)
            .unwrap_or_else(|e| panic!("installing template {name}: {e}"));
        if topology.seed_templates_everywhere {
            for &ds in &datastores {
                if ds != home_ds {
                    plane
                        .seed_template_now(template, ds)
                        .unwrap_or_else(|e| panic!("seeding template {name}: {e}"));
                }
            }
        }
        director.register_template(template);
        templates.push(template);
    }

    // Pre-provisioned population (enterprise baseline).
    if topology.initial_vapps > 0 {
        let org = director.create_org("baseline-org");
        let mut cursor = 0usize;
        for v in 0..topology.initial_vapps {
            let mut members = Vec::new();
            for m in 0..topology.initial_vapp_size {
                let (_, vcpus, mem_mb, disk_gb) =
                    &topology.templates[cursor % topology.templates.len()];
                let host = hosts[cursor % hosts.len()];
                let ds = datastores[cursor % datastores.len()];
                cursor += 1;
                let vm = plane
                    .install_vm(
                        &format!("baseline-{v:03}-{m:02}"),
                        VmSpec::new(*vcpus, *mem_mb, *disk_gb),
                        host,
                        ds,
                        true,
                    )
                    .expect("baseline population fits the declared topology");
                members.push(vm);
            }
            director.adopt_vapp(org, format!("baseline-{v:03}"), members, SimTime::ZERO);
        }
    }

    (hosts, datastores, templates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_workload::{cloud_a, enterprise};

    #[test]
    fn builds_cloud_a_topology() {
        let sim = Scenario::from_profile(&cloud_a()).seed(1).build();
        let counts = sim.plane().inventory().counts();
        assert_eq!(counts.hosts, 32);
        assert_eq!(counts.datastores, 8);
        assert_eq!(counts.templates, 2);
        // Templates seeded everywhere: replicas = 8 datastores each.
        for &t in sim.templates() {
            assert_eq!(sim.plane().residency().replica_count(t), 8);
        }
    }

    #[test]
    fn builds_enterprise_baseline_population() {
        let sim = Scenario::from_profile(&enterprise()).seed(1).build();
        let counts = sim.plane().inventory().counts();
        assert_eq!(counts.hosts, 64);
        // 24 vapps × 8 members + 2 templates.
        assert_eq!(counts.vms, 24 * 8 + 2);
        assert_eq!(counts.powered_on, 24 * 8);
        assert_eq!(sim.director().vapps().count(), 24);
    }

    #[test]
    fn bare_scenario_has_no_generator() {
        let sim = Scenario::bare(cloud_a().topology).seed(3).build();
        assert!(!sim.has_generator());
    }

    #[test]
    fn tune_overrides_config() {
        let sim = Scenario::from_profile(&cloud_a())
            .tune(|c| c.cpu_cores = 16)
            .build();
        assert_eq!(sim.plane().config().cpu_cores, 16);
    }
}
