//! F7 — Figure 7: end-to-end vApp deployment latency vs vApp size under
//! different admission-limit configurations.
//!
//! A vApp of N VMs fans out into N parallel provisioning chains; per-host
//! and per-datastore concurrency caps serialize them. The figure shows
//! deploy latency growing with N and how widening (or removing) the
//! limits changes the curve — the knob the paper says cloud operators
//! must revisit.

use cpsim_cloud::{CloudRequest, ProvisioningPolicy};
use cpsim_des::{SimDuration, SimTime};
use cpsim_metrics::Table;
use cpsim_mgmt::{AdmissionLimits, CloneMode, ControlPlaneConfig};

use crate::experiments::loops::{load_topology, sweep};
use crate::experiments::{fmt, ExpOptions};
use crate::Scenario;

fn configs() -> Vec<(&'static str, AdmissionLimits)> {
    vec![
        // 640 global / 8 per host / 128 per datastore.
        ("default", AdmissionLimits::default()),
        (
            "wide-host",
            AdmissionLimits {
                per_host: 32,
                ..AdmissionLimits::default()
            },
        ),
        (
            "narrow-datastore",
            AdmissionLimits {
                per_datastore: 2,
                ..AdmissionLimits::default()
            },
        ),
        ("unlimited", AdmissionLimits::unlimited()),
    ]
}

/// Runs F7.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let sizes: Vec<u32> = opts.pick(vec![1, 2, 4, 8, 16, 32, 64], vec![1, 8, 32]);
    let mut table = Table::new(
        "F7 — vApp deployment latency vs size (seconds, linked clones)",
        &[
            "vApp size",
            "default limits",
            "wide-host",
            "narrow-datastore",
            "unlimited",
        ],
    );
    // One sweep point per (vApp size, limit config) cell.
    let points: Vec<(u32, AdmissionLimits)> = sizes
        .iter()
        .flat_map(|&size| configs().into_iter().map(move |(_, limits)| (size, limits)))
        .collect();
    let latencies = sweep(opts, &points, |&(size, limits)| {
        let config = ControlPlaneConfig {
            limits,
            ..Default::default()
        };
        deploy_once(opts.seed, config, size)
    });
    let per_row = configs().len();
    for (&size, cells) in sizes.iter().zip(latencies.chunks_exact(per_row)) {
        let mut row = vec![size.to_string()];
        row.extend(cells.iter().map(|&l| fmt(l)));
        table.row(row);
    }
    vec![table]
}

/// Deploys one vApp of `size` VMs on an idle cloud; returns the
/// end-to-end latency in seconds.
fn deploy_once(seed: u64, config: ControlPlaneConfig, size: u32) -> f64 {
    let mut sim = Scenario::bare(load_topology())
        .seed(seed)
        .config(config)
        .policy(ProvisioningPolicy {
            mode: CloneMode::Linked,
            fencing: true,
            power_on: true,
            ..Default::default()
        })
        .build();
    let template = sim.templates()[0];
    let org = sim.org();
    sim.schedule_request(
        SimTime::from_secs(1),
        CloudRequest::InstantiateVapp {
            org,
            template,
            count: size,
            mode: None,
            lease: None,
        },
    );
    sim.run_until(SimTime::ZERO + SimDuration::from_hours(6));
    let report = sim
        .cloud_reports()
        .iter()
        .find(|r| r.kind == "instantiate-vapp")
        .expect("deployment completes within the horizon");
    assert!(report.is_clean(), "{} failed ops", report.ops_failed);
    report.latency.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f7_latency_grows_with_size_and_limits_matter() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        let last = t.len() - 1;
        // Bigger vApps deploy slower.
        assert!(cell(last, 1) > cell(0, 1));
        // Removing limits can only help (or tie) at the largest size.
        assert!(cell(last, 4) <= cell(last, 1) * 1.05);
    }
}
