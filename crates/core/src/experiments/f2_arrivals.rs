//! F2 — Figure 2: operation arrival rate over a simulated day.
//!
//! Self-service arrivals are bursty (class-start storms in Cloud A,
//! work-hour swell in Cloud B); the enterprise baseline is comparatively
//! smooth. The figure is the hourly operation-submission series plus the
//! burstiness summary.

use cpsim_des::SimTime;
use cpsim_metrics::Table;
use cpsim_workload::{cloud_a, cloud_b, enterprise, TraceAnalysis};

use crate::experiments::loops::sweep;
use crate::experiments::{fmt, ExpOptions};
use crate::Scenario;

/// Runs F2.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let hours = opts.pick(48, 12);
    let profiles = [cloud_a(), cloud_b(), enterprise()];
    let analyses: Vec<(String, TraceAnalysis)> = sweep(opts, &profiles, |p| {
        let mut sim = Scenario::from_profile(p).seed(opts.seed).build();
        sim.run_until(SimTime::from_hours(hours));
        (p.name.clone(), sim.analyze_trace())
    });

    let mut series = Table::new(
        "F2 — Management operations submitted per hour",
        &["hour", "cloud-a", "cloud-b", "enterprise"],
    );
    for h in 0..hours as usize {
        let mut row = vec![h.to_string()];
        for (_, a) in &analyses {
            row.push(a.hourly.counts().get(h).copied().unwrap_or(0).to_string());
        }
        series.row(row);
    }

    let mut summary = Table::new(
        "F2b — Burstiness summary",
        &["environment", "peak/mean (hourly ops)", "interarrival CV"],
    );
    for (name, a) in &analyses {
        summary.row([name.clone(), fmt(a.peak_to_mean), fmt(a.interarrival_cv)]);
    }
    vec![series, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_burstiness_ranks_clouds_over_enterprise() {
        let tables = run(&ExpOptions::quick());
        let summary = &tables[1];
        // Interarrival CV is the robust burstiness statistic here: the
        // hourly peak/mean column rides on few, noisy buckets (the
        // enterprise trace submits so few ops per hour that its peak
        // bucket sits ~2.5x its mean from Poisson noise alone), so the
        // cloud-vs-enterprise gap there is within sampling jitter.
        let cv = |row: usize| -> f64 { summary.rows()[row][2].parse().unwrap() };
        let (cloud_a_cv, cloud_b_cv, enterprise_cv) = (cv(0), cv(1), cv(2));
        assert!(
            cloud_a_cv > cloud_b_cv && cloud_b_cv > enterprise_cv,
            "burstiness must rank a > b > enterprise: {cloud_a_cv} / {cloud_b_cv} / {enterprise_cv}"
        );
        // The clouds are far from Poisson (CV 1); the enterprise is close.
        assert!(cloud_a_cv > 3.0, "cloud-a storms: CV {cloud_a_cv}");
        assert!(
            enterprise_cv < 2.0,
            "enterprise near-Poisson: CV {enterprise_cv}"
        );
        // Series has one row per hour.
        assert_eq!(tables[0].len(), 12);
    }
}
