//! T1 — Table I: characteristics of the two self-service cloud
//! environments (plus the enterprise baseline for contrast).
//!
//! The paper's Table I summarized the two production setups it profiled.
//! We regenerate the equivalent summary from multi-day simulations of the
//! calibrated profiles: inventory scale, activity volume, burstiness, and
//! the share of provisioning in the operation stream.

use cpsim_des::SimTime;
use cpsim_metrics::Table;
use cpsim_workload::{cloud_a, cloud_b, enterprise, Profile};

use crate::experiments::loops::sweep;
use crate::experiments::{fmt, ExpOptions};
use crate::Scenario;

/// Runs T1.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let hours = opts.pick(72, 8);
    let mut table = Table::new(
        "T1 — Characteristics of the simulated cloud environments",
        &[
            "environment",
            "hosts",
            "datastores",
            "templates",
            "peak VMs",
            "ops/day",
            "peak ops/hour",
            "provisioning %",
            "arrival CV",
            "clone mode",
        ],
    );
    let profiles = [cloud_a(), cloud_b(), enterprise()];
    for row in sweep(opts, &profiles, |p| profile_row(p, hours, opts.seed)) {
        table.row(row);
    }
    vec![table]
}

fn profile_row(profile: &Profile, hours: u64, seed: u64) -> Vec<String> {
    let mut sim = Scenario::from_profile(profile).seed(seed).build();
    let mut peak_vms = 0usize;
    // Sample peak population hourly.
    for h in 1..=hours {
        sim.run_until(SimTime::from_hours(h));
        peak_vms = peak_vms.max(sim.plane().inventory().counts().vms);
    }
    let a = sim.analyze_trace();
    vec![
        profile.name.clone(),
        profile.topology.hosts.to_string(),
        profile.topology.datastores.to_string(),
        profile.topology.templates.len().to_string(),
        peak_vms.to_string(),
        fmt(a.ops_per_day()),
        a.hourly
            .counts()
            .iter()
            .max()
            .copied()
            .unwrap_or(0)
            .to_string(),
        fmt(a.provisioning_fraction() * 100.0),
        fmt(a.interarrival_cv),
        profile.workload.clone_mode.name().to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_shapes_hold_in_quick_mode() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        assert_eq!(t.len(), 3);
        let get = |row: usize, col: usize| t.rows()[row][col].parse::<f64>().unwrap();
        // ops/day: both clouds far more active than enterprise.
        let (a_ops, b_ops, e_ops) = (get(0, 5), get(1, 5), get(2, 5));
        assert!(a_ops > e_ops, "cloud-a {a_ops} vs enterprise {e_ops}");
        assert!(b_ops > e_ops, "cloud-b {b_ops} vs enterprise {e_ops}");
        // provisioning share: clouds >> enterprise. (Clones are roughly a
        // third of each deployment chain — fencing and power-on follow
        // every clone — so even a provisioning-dominated cloud sits near
        // 20-30 % clones in the op stream.)
        let (a_prov, e_prov) = (get(0, 7), get(2, 7));
        assert!(a_prov > 15.0, "cloud-a provisioning share {a_prov}");
        assert!(e_prov < 10.0, "enterprise provisioning share {e_prov}");
        assert!(a_prov > 2.0 * e_prov);
    }
}
