//! F1 — Figure 1: the management operation mix of the two clouds vs the
//! enterprise-datacenter baseline.
//!
//! The paper's point: cloud workflows expand one user request into many
//! management operations, making the management stream provisioning- and
//! reconfigure-dominated, whereas enterprise administration is dominated
//! by power and migration operations on a static population.

use cpsim_des::SimTime;
use cpsim_metrics::Table;
use cpsim_workload::{cloud_a, cloud_b, enterprise, TraceAnalysis};

use crate::experiments::loops::sweep;
use crate::experiments::{fmt, ExpOptions};
use crate::Scenario;

/// Operation kinds reported in the mix figure, in display order.
pub const KINDS: [&str; 10] = [
    "clone-linked",
    "clone-full",
    "power-on",
    "power-off",
    "reconfigure",
    "destroy-vm",
    "snapshot",
    "remove-snapshot",
    "migrate-vm",
    "seed-template",
];

/// Runs F1.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let hours = opts.pick(72, 8);
    let profiles = [cloud_a(), cloud_b(), enterprise()];
    let analyses: Vec<(String, TraceAnalysis)> = sweep(opts, &profiles, |p| {
        let mut sim = Scenario::from_profile(p).seed(opts.seed).build();
        sim.run_until(SimTime::from_hours(hours));
        (p.name.clone(), sim.analyze_trace())
    });

    let mut table = Table::new(
        "F1 — Management operation mix (% of operations)",
        &["operation", "cloud-a", "cloud-b", "enterprise"],
    );
    for kind in KINDS {
        let mut row = vec![kind.to_string()];
        for (_, a) in &analyses {
            row.push(fmt(a.mix_fraction(kind) * 100.0));
        }
        table.row(row);
    }
    // Everything else (rescans, host adds, creates) folded into one row.
    let mut row = vec!["other".to_string()];
    for (_, a) in &analyses {
        let covered: f64 = KINDS.iter().map(|k| a.mix_fraction(k)).sum();
        row.push(fmt((1.0 - covered).max(0.0) * 100.0));
    }
    table.row(row);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_mix_contrast_holds_in_quick_mode() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let col = |kind: &str, c: usize| -> f64 {
            t.rows()
                .iter()
                .find(|r| r[0] == kind)
                .map(|r| r[c].parse().unwrap())
                .unwrap()
        };
        // Clouds clone linked; enterprise barely clones at all.
        assert!(col("clone-linked", 1) > 10.0, "cloud-a linked share");
        assert!(col("clone-linked", 3) < 5.0, "enterprise linked share");
        // Enterprise is power-dominated relative to its provisioning.
        let e_power = col("power-on", 3) + col("power-off", 3);
        let e_prov = col("clone-linked", 3) + col("clone-full", 3);
        assert!(e_power > e_prov);
        // Percentages roughly sum to 100 per column.
        for c in 1..=3 {
            let total: f64 = t.rows().iter().map(|r| r[c].parse::<f64>().unwrap()).sum();
            assert!((total - 100.0).abs() < 2.0, "column {c} sums to {total}");
        }
    }
}
