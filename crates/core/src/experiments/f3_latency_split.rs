//! F3 — Figure 3: per-operation latency, split into control-plane and
//! data-plane time, at low load.
//!
//! The paper's observation: with full clones, provisioning latency is
//! dominated by data movement; linked clones collapse the data term to
//! near zero and the whole operation becomes control-plane time.

use cpsim_metrics::{Summary, Table};

use crate::experiments::probe::{mean_of, run_probe};
use crate::experiments::{fmt, ExpOptions};

/// Operation kinds in display order.
pub const KINDS: [&str; 10] = [
    "clone-full",
    "clone-linked",
    "power-on",
    "power-off",
    "reconfigure",
    "snapshot",
    "remove-snapshot",
    "migrate-vm",
    "destroy-vm",
    "seed-template",
];

/// Runs F3.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let sim = run_probe(opts);
    let mut table = Table::new(
        "F3 — Operation latency split at low load (seconds)",
        &[
            "operation",
            "mean latency",
            "p95 latency",
            "control (cpu+db+agent)",
            "data transfer",
            "data share %",
            "samples",
        ],
    );
    for kind in KINDS {
        let mut lat: Summary = sim
            .task_reports()
            .iter()
            .filter(|r| r.kind == kind && r.is_success())
            .map(|r| r.latency.as_secs_f64())
            .collect();
        if lat.is_empty() {
            continue;
        }
        let control = mean_of(&sim, kind, |r| r.control_secs()).unwrap_or(0.0);
        let data = mean_of(&sim, kind, |r| r.data_secs).unwrap_or(0.0);
        let share = if control + data > 0.0 {
            data / (control + data) * 100.0
        } else {
            0.0
        };
        table.row([
            kind.to_string(),
            fmt(lat.mean()),
            fmt(lat.percentile(95.0)),
            fmt(control),
            fmt(data),
            fmt(share),
            lat.count().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3_split_shapes_hold_in_quick_mode() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |kind: &str, col: usize| -> f64 {
            t.rows()
                .iter()
                .find(|r| r[0] == kind)
                .unwrap_or_else(|| panic!("missing row {kind}"))[col]
                .parse()
                .unwrap()
        };
        // Full clones are data-dominated; linked clones are not.
        assert!(cell("clone-full", 5) > 80.0, "full clone data share");
        assert!(cell("clone-linked", 5) < 20.0, "linked clone data share");
        // Linked clone latency is a small fraction of full clone latency.
        assert!(cell("clone-linked", 1) < cell("clone-full", 1) / 4.0);
        // Power ops are pure control plane.
        assert_eq!(cell("power-on", 4), 0.0);
    }
}
