//! F13 — federated scale-out: conflict rate, goodput and queueing delay
//! vs shard count × staleness window.
//!
//! The paper's scale-out discussion assumes sharding the inventory across
//! management planes multiplies capacity. This figure models what the
//! paper could not measure: the coordination cost once shards share spare
//! capacity. Total physical inventory is held constant (eight home hosts
//! and datastores split evenly, plus one shared spillover pool); only the
//! number of control planes managing it varies. Home datastores are kept
//! nearly full, so essentially every placement competes for the shared
//! pool through a view refreshed only once per staleness window.
//!
//! Expected shape: one shard never conflicts (it has the pool to
//! itself), and conflicts then grow with both shard count and staleness
//! — stale mirrors keep nominating slots the store has already handed
//! to someone else, and each lost race burns backoff retries until a
//! sync refreshes the loser's view. Goodput (clean instantiates only)
//! shows the coordination-overhead crossover: a second shard still
//! pays, but by four shards the conflict/abort tax eats the extra
//! plane capacity and goodput falls back below the two-shard line,
//! while wider windows drag goodput down within a shard count.

use cpsim_cloud::ProvisioningPolicy;
use cpsim_des::SimDuration;
use cpsim_faults::RecoveryPolicy;
use cpsim_federation::FedTopology;
use cpsim_metrics::Table;
use cpsim_mgmt::ControlPlaneConfig;

use crate::experiments::loops::{fed_closed_loop, sweep};
use crate::experiments::{fmt, ExpOptions};

/// Clone delta size: coarse on purpose, so each shared-pool commit is a
/// visible bite out of the free space and a stale mirror overshoots by
/// whole slots, not crumbs.
const DELTA_GB: f64 = 4.0;

/// Constant-inventory contended topology: `8/shards` home hosts and
/// datastores per shard, home storage nearly exhausted by the template
/// base, and a shared pool whose *free* space (after each shard seeds
/// one 20 GiB base per shared datastore) is `pool_free_gb` regardless of
/// shard count.
pub(crate) fn contended_topology(shards: usize, pool_free_gb: f64) -> FedTopology {
    let per = (8 / shards).max(1) as u32;
    FedTopology {
        shards,
        home_hosts_per_shard: per,
        home_ds_per_shard: per,
        home_ds_capacity_gb: 24.0,
        shared_hosts: 4,
        shared_ds: 2,
        shared_ds_capacity_gb: pool_free_gb / 2.0 + 20.0 * shards as f64,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("fed-template".into(), 2, 2_048, 20.0)],
        initial_vms_per_shard: Vec::new(),
        initial_vm_disk_gb: 4.0,
    }
}

/// Runs F13.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let shards: Vec<usize> = opts.pick(vec![1, 2, 4], vec![1, 2, 4]);
    let staleness: Vec<u64> = opts.pick(vec![5, 15, 45], vec![5, 20]);
    let warmup = SimDuration::from_mins(opts.pick(5, 2));
    let measure = SimDuration::from_mins(opts.pick(20, 6));
    // Closed-loop population per shard: each plane serves its own
    // tenants, so aggregate demand on the fixed shared pool grows with
    // the shard count — that is precisely the spillover-contention
    // story this figure measures.
    let n_per_shard = opts.pick(48, 24);
    // Pool headroom sized for a single shard's demand (live clones of
    // DELTA_GB each plus the destroy pipeline's lag): one shard fits
    // comfortably, every extra shard oversubscribes the pool.
    let pool_free_gb = f64::from(n_per_shard) * DELTA_GB * 2.0;

    let mut table = Table::new(
        "F13 — Federated scale-out: conflicts and goodput vs shards × staleness window",
        &[
            "shards",
            "staleness s",
            "VMs/hour",
            "conflicts",
            "conflict rate",
            "p99 queue s",
            "mean latency s",
            "aborted",
            "failures",
            "syncs",
        ],
    );
    let points: Vec<(usize, u64)> = shards
        .iter()
        .flat_map(|&s| staleness.iter().map(move |&w| (s, w)))
        .collect();
    let results = sweep(opts, &points, |&(s, w)| {
        let config = ControlPlaneConfig {
            linked_delta_gb: DELTA_GB,
            ..Default::default()
        };
        // Dense bounded backoff: a loser keeps retrying against its
        // stale mirror (each retry that still sees a full pool is
        // another conflict) until a periodic sync rescues it, so wide
        // windows pay linearly more conflicts per lost race.
        let recovery = RecoveryPolicy {
            max_retries: 6,
            backoff_base: SimDuration::from_secs(3),
            backoff_factor: 1.5,
            backoff_max: SimDuration::from_secs(10),
            ..Default::default()
        };
        fed_closed_loop(
            opts.seed,
            contended_topology(s, pool_free_gb),
            config,
            ProvisioningPolicy::default(),
            recovery,
            SimDuration::from_secs(w),
            opts.intra_jobs,
            n_per_shard * s as u32,
            warmup,
            measure,
        )
    });
    for (&(s, w), r) in points.iter().zip(&results) {
        let attempts = r.commits + r.conflicts;
        let rate = if attempts == 0 {
            0.0
        } else {
            r.conflicts as f64 / attempts as f64
        };
        table.row([
            s.to_string(),
            w.to_string(),
            fmt(r.vms_per_hour),
            r.conflicts.to_string(),
            fmt(rate),
            fmt(r.p99_queue_s),
            fmt(r.mean_latency_s),
            r.aborted.to_string(),
            r.failures.to_string(),
            r.syncs.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f13_conflicts_grow_with_shards_and_staleness() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        // Quick grid: shards {1,2,4} × staleness {5,20}, row-major.
        let idx = |si: usize, wi: usize| si * 2 + wi;

        // A single shard owns the pool outright: no conflicts, ever.
        for wi in 0..2 {
            assert_eq!(cell(idx(0, wi), 3), 0.0, "1 shard must not conflict");
            assert_eq!(cell(idx(0, wi), 9), 0.0, "1 shard never syncs");
        }
        // Contention is real and worsens with staleness at max shards.
        let tight = cell(idx(2, 0), 3);
        let wide = cell(idx(2, 1), 3);
        assert!(wide > 0.0, "stale 4-shard runs must conflict");
        assert!(
            wide >= tight,
            "conflicts must not shrink with staleness: {tight} vs {wide}"
        );
        // More shards racing the same pool conflict at least as much.
        assert!(
            cell(idx(2, 1), 3) >= cell(idx(1, 1), 3),
            "conflicts must not shrink with shard count"
        );
        // Scale-out still pays: more planes move more VMs than one.
        assert!(
            cell(idx(2, 0), 2) > cell(idx(0, 0), 2),
            "4 shards must out-provision 1: {} vs {}",
            cell(idx(2, 0), 2),
            cell(idx(0, 0), 2)
        );
    }
}
