//! T2 — Table II: per-operation control-plane cost breakdown by phase.
//!
//! For each operation kind, the mean service time spent in each
//! control-plane phase (API ingress, placement, DB statements, host
//! primitives, finalization) — the cost model the paper's analysis of
//! management overhead rests on.

use std::collections::BTreeMap;

use cpsim_metrics::Table;

use crate::experiments::probe::run_probe;
use crate::experiments::{fmt, ExpOptions};

/// Runs T2.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let sim = run_probe(opts);
    let stats = sim.plane().stats();

    // Completion counts per kind, to express phase totals as per-op means.
    let completed: BTreeMap<&str, u64> = stats
        .kinds()
        .map(|(k, ks)| (k, ks.completed + ks.failed))
        .collect();

    let mut table = Table::new(
        "T2 — Control-plane cost breakdown by phase (mean ms per operation)",
        &["operation", "class", "phase", "mean ms", "invocations/op"],
    );
    for (kind, class, label, total_secs, count) in stats.phase_totals() {
        if class == "data-transfer" {
            continue; // T2 covers the control plane; data is in F3.
        }
        let ops = completed.get(kind).copied().unwrap_or(0).max(1);
        table.row([
            kind.to_string(),
            class.to_string(),
            label.to_string(),
            fmt(total_secs / count.max(1) as f64 * 1_000.0),
            fmt(count as f64 / ops as f64),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_covers_key_phases() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let has = |kind: &str, label: &str| t.rows().iter().any(|r| r[0] == kind && r[2] == label);
        assert!(has("clone-linked", "api-ingress"));
        assert!(has("clone-linked", "placement"));
        assert!(has("clone-linked", "insert-vm"));
        assert!(has("power-on", "power-on-vm"));
        assert!(has("destroy-vm", "delete-records"));
        // No data-transfer rows in the control-plane table.
        assert!(t.rows().iter().all(|r| r[1] != "data-transfer"));
        // DB insert is the heaviest single DB phase for clones.
        let ms = |kind: &str, label: &str| -> f64 {
            t.rows()
                .iter()
                .find(|r| r[0] == kind && r[2] == label)
                .map(|r| r[3].parse().unwrap())
                .unwrap()
        };
        assert!(ms("clone-linked", "insert-vm") > ms("clone-linked", "task-record"));
    }
}
