//! F8 — Figure 8: cloud reconfiguration — template redistribution time vs
//! cloud size, idle vs under provisioning load, and its impact on
//! foreground provisioning latency.
//!
//! The paper's closing argument: high provisioning rates make
//! previously-infrequent reconfiguration (seeding template copies onto
//! datastores) a recurring, expensive operation that must be planned for:
//! it takes minutes-to-hours of bulk copying, slows down while serving
//! load, and degrades foreground provisioning while it runs.

use cpsim_cloud::{CloudRequest, ProvisioningPolicy};
use cpsim_des::{SimDuration, SimTime};
use cpsim_metrics::Table;
use cpsim_mgmt::CloneMode;
use cpsim_workload::Topology;

use crate::experiments::{fmt, ExpOptions};
use crate::{CloudSim, Scenario};

fn reconfig_topology(datastores: u32) -> Topology {
    Topology {
        hosts: 8,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        datastores,
        ds_capacity_gb: 8_192.0,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("gold-template".into(), 2, 2_048, 20.0)],
        // The whole point: the template starts on its home datastore only.
        seed_templates_everywhere: false,
        initial_vapps: 0,
        initial_vapp_size: 0,
    }
}

fn build(seed: u64, datastores: u32) -> CloudSim {
    Scenario::bare(reconfig_topology(datastores))
        .seed(seed)
        .policy(ProvisioningPolicy {
            mode: CloneMode::Linked,
            fencing: true,
            power_on: false,
            ..Default::default()
        })
        .build()
}

/// Runs F8.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let ds_counts: Vec<u32> = opts.pick(vec![4, 8, 16, 32], vec![4, 8]);
    let mut table = Table::new(
        "F8 — Template redistribution: cost and interference",
        &[
            "datastores",
            "idle redistribute s",
            "loaded redistribute s",
            "clone latency before s",
            "clone latency during s",
        ],
    );
    for &d in &ds_counts {
        let idle = redistribute_idle(opts.seed, d);
        let (loaded, before, during) = redistribute_loaded(opts.seed, d);
        table.row([
            d.to_string(),
            fmt(idle),
            fmt(loaded),
            fmt(before),
            fmt(during),
        ]);
    }
    vec![table, rebalance_table(opts)]
}

/// F8b: the storage-rebalance pass — relocations issued and wall time to
/// drain an overfilled datastore back under a utilization target, vs how
/// overfilled it was.
fn rebalance_table(opts: &ExpOptions) -> Table {
    let overfill_vms: Vec<u32> = opts.pick(vec![8, 16, 32], vec![8, 16]);
    let mut table = Table::new(
        "F8b — Storage rebalance: draining an overfilled datastore",
        &[
            "VMs crowded on one datastore",
            "relocations issued",
            "rebalance wall time s",
            "hot datastore util before",
            "hot datastore util after",
        ],
    );
    for &n in &overfill_vms {
        let mut topo = reconfig_topology(4);
        topo.ds_capacity_gb = 4_096.0;
        let mut sim = Scenario::bare(topo)
            .seed(opts.seed)
            .policy(ProvisioningPolicy {
                mode: CloneMode::Linked,
                fencing: true,
                power_on: false,
                ..Default::default()
            })
            .build();
        // Crowd `n` full-clone VMs onto the template's home datastore by
        // installing them directly (setup), then ask for a rebalance.
        let template_ds = {
            let t = sim.templates()[0];
            sim.plane().inventory().vm(t).unwrap().datastore
        };
        let host = sim.hosts()[0];
        for i in 0..n {
            // 64 GiB each: enough to push utilization well past target.
            sim_install(&mut sim, &format!("crowd-{i}"), host, template_ds);
        }
        let before = sim
            .plane()
            .inventory()
            .datastore(template_ds)
            .unwrap()
            .utilization();
        sim.schedule_request(
            SimTime::from_secs(1),
            CloudRequest::RebalanceDatastores {
                target_utilization: 0.10,
            },
        );
        sim.run_until(SimTime::from_hours(12));
        let report = sim
            .cloud_reports()
            .iter()
            .find(|r| r.kind == "rebalance-datastores")
            .expect("rebalance completes");
        let after = sim
            .plane()
            .inventory()
            .datastore(template_ds)
            .unwrap()
            .utilization();
        table.row([
            n.to_string(),
            report.ops_issued.to_string(),
            fmt(report.latency.as_secs_f64()),
            fmt(before),
            fmt(after),
        ]);
    }
    table
}

/// Setup helper: install a powered-off 64 GiB VM on an exact location.
fn sim_install(
    sim: &mut CloudSim,
    name: &str,
    host: cpsim_inventory::HostId,
    ds: cpsim_inventory::DatastoreId,
) {
    use cpsim_inventory::VmSpec;
    sim.install_vm_for_experiments(name, VmSpec::new(1, 1_024, 64.0), host, ds)
        .expect("crowding VM fits");
}

/// Redistribution time on an otherwise idle cloud, seconds.
fn redistribute_idle(seed: u64, datastores: u32) -> f64 {
    let mut sim = build(seed, datastores);
    let template = sim.templates()[0];
    sim.schedule_request(
        SimTime::from_secs(1),
        CloudRequest::RedistributeTemplate { template },
    );
    sim.run_until(SimTime::from_hours(12));
    let r = sim
        .cloud_reports()
        .iter()
        .find(|r| r.kind == "redistribute-template")
        .expect("redistribution completes");
    assert!(r.is_clean());
    r.latency.as_secs_f64()
}

/// Redistribution under a steady provisioning load. Returns
/// `(redistribute_s, clone_latency_before_s, clone_latency_during_s)`.
fn redistribute_loaded(seed: u64, datastores: u32) -> (f64, f64, f64) {
    let mut sim = build(seed, datastores);
    sim.keep_task_reports(true);
    let template = sim.templates()[0];
    let org = sim.org();
    // Foreground load: full clones every 120 s (~85 % of the source
    // array's copy ceiling). Full clones read from the template's home
    // datastore — the same array redistribution reads from — without the
    // residency-seeding side effect linked-clone shadows would have
    // (which would silently do the redistribution's work for it and make
    // idle/loaded incomparable).
    let kickoff = SimTime::from_secs(600);
    let horizon = SimTime::from_hours(12);
    let mut t = SimTime::from_secs(1);
    while t < kickoff + SimDuration::from_hours(2) {
        sim.schedule_request(
            t,
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 1,
                mode: Some(CloneMode::Full),
                lease: None,
            },
        );
        t += SimDuration::from_secs(120);
    }
    sim.schedule_request(kickoff, CloudRequest::RedistributeTemplate { template });
    sim.run_until(horizon);
    let r = sim
        .cloud_reports()
        .iter()
        .find(|r| r.kind == "redistribute-template")
        .expect("redistribution completes");
    let reconfig_end = r.completed_at;
    let clone_mean = |from: SimTime, to: SimTime| -> f64 {
        let samples: Vec<f64> = sim
            .task_reports()
            .iter()
            .filter(|x| {
                x.kind == "clone-full"
                    && x.is_success()
                    && x.submitted_at >= from
                    && x.submitted_at < to
            })
            .map(|x| x.latency.as_secs_f64())
            .collect();
        if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        }
    };
    let before = clone_mean(SimTime::ZERO, kickoff);
    let during = clone_mean(kickoff, reconfig_end);
    (r.latency.as_secs_f64(), before, during)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f8_reconfiguration_costs_grow_and_interfere() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        // More datastores = more copies = longer redistribution.
        assert!(cell(1, 1) > cell(0, 1));
        // A 20 GiB copy at 200 MiB/s is ~102 s; even the small cloud takes
        // minutes (copies run in parallel across datastores but each pays
        // the cross-datastore read penalty).
        assert!(cell(0, 1) > 60.0, "idle redistribute {}s", cell(0, 1));
        // Under load, redistribution takes at least as long as idle.
        assert!(cell(1, 2) >= cell(1, 1) * 0.9);
    }
}
