//! F4 — Figure 4: provisioning throughput vs offered concurrency, full
//! clones vs linked clones.
//!
//! The paper's headline figure: full-clone throughput is capped early by
//! datastore copy bandwidth; linked clones raise throughput by an order
//! of magnitude or more — and then *the control plane* becomes the
//! limiting factor (visible as CPU/DB utilization saturating while the
//! datastores sit idle).

use cpsim_des::SimDuration;
use cpsim_metrics::Table;
use cpsim_mgmt::{CloneMode, ControlPlaneConfig};

use crate::experiments::loops::{closed_loop, sweep};
use crate::experiments::{fmt, ExpOptions};

/// Runs F4.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let concurrency: Vec<u32> =
        opts.pick(vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512], vec![1, 8, 64]);
    let warmup = SimDuration::from_mins(opts.pick(10, 3));
    let measure = SimDuration::from_mins(opts.pick(30, 8));

    // One sweep point per (concurrency, clone mode); the three modes per
    // row are points too, so the executor can overlap a slow full-clone
    // window with its neighbors. Full clones share the source array
    // fairly, so a batch of N completes together after ~N x 100 s; their
    // window must cover at least one batch or it observes nothing.
    let points: Vec<(u32, CloneMode, SimDuration)> = concurrency
        .iter()
        .flat_map(|&n| {
            let full_measure = measure.max(SimDuration::from_secs(u64::from(n) * 150 + 600));
            [
                (n, CloneMode::Full, full_measure),
                (n, CloneMode::Linked, measure),
                (n, CloneMode::Instant, measure),
            ]
        })
        .collect();
    let results = sweep(opts, &points, |&(n, mode, window)| {
        closed_loop(
            opts.seed,
            ControlPlaneConfig::default(),
            mode,
            n,
            warmup,
            window,
        )
    });

    let mut table = Table::new(
        "F4 — Provisioning throughput vs offered concurrency (VMs/hour)",
        &[
            "concurrency",
            "full-clone VMs/h",
            "linked-clone VMs/h",
            "instant-clone VMs/h",
            "linked/full speedup",
            "linked: db util",
            "linked: cpu util",
            "linked: datastore busy",
        ],
    );
    for (&n, modes) in concurrency.iter().zip(results.chunks_exact(3)) {
        let (full, linked, instant) = (&modes[0], &modes[1], &modes[2]);
        let speedup = if full.vms_per_hour > 0.0 {
            linked.vms_per_hour / full.vms_per_hour
        } else {
            f64::INFINITY
        };
        table.row([
            n.to_string(),
            fmt(full.vms_per_hour),
            fmt(linked.vms_per_hour),
            fmt(instant.vms_per_hour),
            fmt(speedup),
            fmt(linked.db_util),
            fmt(linked.cpu_util),
            fmt(linked.ds_busy),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f4_linked_beats_full_and_saturates_on_control_plane() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        let last = t.len() - 1;
        // At high concurrency linked clones dwarf full clones.
        assert!(
            cell(last, 2) > 5.0 * cell(last, 1),
            "linked {} vs full {}",
            cell(last, 2),
            cell(last, 1)
        );
        // Throughput grows with concurrency then flattens: the last point
        // must exceed the single-stream point.
        assert!(cell(last, 2) > 2.0 * cell(0, 2));
        // Instant clones beat full clones; their single-parent-host
        // concentration caps them at the parent's agent throughput (the
        // cap sits below linked clones once linked saturates, visible in
        // the full-scale run).
        assert!(cell(last, 3) > cell(last, 1), "instant beats full");
        // At saturation the datastores are nearly idle for linked clones
        // while a control-plane resource is busy.
        let ds_busy = cell(last, 7);
        let control_max = cell(last, 5).max(cell(last, 6));
        assert!(
            control_max > ds_busy,
            "control {control_max} vs datastore {ds_busy}"
        );
    }
}
