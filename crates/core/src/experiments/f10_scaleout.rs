//! F10 — design-implication ablation: scaling the management plane out
//! (more shards = proportionally more CPU, DB and task-window capacity)
//! and batching database writes.
//!
//! The paper concludes that provisioning-rate demands "may influence
//! virtualized datacenter design"; this figure quantifies two obvious
//! design responses on the saturated linked-clone workload — and finds
//! the less obvious third constraint. Sharding drains the database and
//! CPU (their utilization collapses), yet saturated throughput barely
//! moves: operations hold admission slots for their whole lifetime,
//! including the time they queue at host agents, so the concurrency
//! architecture — not raw server capacity — pins the deployment rate.
//! Scale-out of the management plane must widen the whole orchestration
//! pipeline, not just its database.

use cpsim_des::SimDuration;
use cpsim_metrics::Table;
use cpsim_mgmt::{CloneMode, ControlPlaneConfig};

use crate::experiments::loops::{closed_loop, sweep};
use crate::experiments::{fmt, ExpOptions};

/// Runs F10.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let shards: Vec<u32> = opts.pick(vec![1, 2, 4, 8], vec![1, 4]);
    let warmup = SimDuration::from_mins(opts.pick(5, 2));
    let measure = SimDuration::from_mins(opts.pick(20, 6));
    // Enough closed-loop pressure to pin the database, with host-agent
    // limits widened so the ablated resources (DB, CPU) are the binding
    // ones at one shard.
    let n = opts.pick(1024, 512);

    let mut table = Table::new(
        "F10 — Saturated linked-clone throughput: shards multiply CPU, DB and task windows (VMs/hour)",
        &[
            "shards",
            "batching off",
            "batching on",
            "off: db util",
            "off: cpu util",
            "off: agent util",
            "off: peak pending",
            "off: latency s",
        ],
    );
    // One sweep point per (shard count, batching) cell.
    let points: Vec<(u32, bool)> = shards
        .iter()
        .flat_map(|&s| [(s, false), (s, true)])
        .collect();
    let results = sweep(opts, &points, |&(s, batching)| {
        let mut config = ControlPlaneConfig {
            shards: s,
            db_batching: batching,
            ..Default::default()
        };
        // Each shard is a management server with its own task window;
        // host-side limits are physical and do not scale.
        config.limits.global = 640u32.saturating_mul(s);
        config.limits.per_host = 32;
        closed_loop(opts.seed, config, CloneMode::Linked, n, warmup, measure)
    });
    for (&s, pair) in shards.iter().zip(results.chunks_exact(2)) {
        let (off, on) = (&pair[0], &pair[1]);
        table.row([
            s.to_string(),
            fmt(off.vms_per_hour),
            fmt(on.vms_per_hour),
            fmt(off.db_util),
            fmt(off.cpu_util),
            fmt(off.agent_util),
            off.pending_peak.to_string(),
            fmt(off.mean_latency_s),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f10_sharding_drains_db_but_admission_pins_throughput() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        let last = t.len() - 1;
        // Sharding visibly relieves the database and CPU...
        assert!(
            cell(last, 3) < cell(0, 3) / 2.0,
            "db util should collapse: {} vs {}",
            cell(last, 3),
            cell(0, 3)
        );
        assert!(cell(last, 4) < cell(0, 4) / 2.0);
        // ...yet throughput moves little: the admission/orchestration
        // pipeline is the residual constraint (the figure's finding).
        assert!(
            cell(last, 1) > cell(0, 1) * 0.8,
            "throughput must not collapse: {} vs {}",
            cell(last, 1),
            cell(0, 1)
        );
        // Batching never hurts throughput materially.
        for row in 0..t.len() {
            assert!(cell(row, 2) >= cell(row, 1) * 0.85);
        }
        // The queue of parked operations stays deep at every shard count.
        for row in 0..t.len() {
            assert!(cell(row, 6) > 100.0, "pending peak row {row}");
        }
    }
}
