//! F10 — design-implication ablation: what "scale the management plane
//! out" must actually mean.
//!
//! The paper concludes that provisioning-rate demands "may influence
//! virtualized datacenter design". This figure contrasts two readings of
//! scale-out on the saturated linked-clone workload:
//!
//! - **Capacity multiplier** (the naive reading): one control plane whose
//!   CPU, database and task-window capacity are multiplied by the shard
//!   count. Its database and CPU drain, yet throughput barely moves —
//!   operations hold admission slots for their whole lifetime, including
//!   host-agent queueing, so the single orchestration pipeline stays the
//!   bottleneck.
//! - **Federation** (the real mechanism): N full control planes, each
//!   owning a slice of the inventory and coordinating spillover through a
//!   shared placement store. Every shard brings its own admission window,
//!   host agents and database, so the whole pipeline widens and
//!   saturated throughput scales near-linearly — minus a small, now
//!   measurable, coordination tax (ledger conflicts; see F13).

use cpsim_des::SimDuration;
use cpsim_faults::RecoveryPolicy;
use cpsim_federation::FedTopology;
use cpsim_metrics::Table;
use cpsim_mgmt::{CloneMode, ControlPlaneConfig};

use crate::experiments::loops::{closed_loop, fed_closed_loop, load_policy, sweep};
use crate::experiments::{fmt, ExpOptions};

/// Per-shard rack slice — half the multiplier's 16-host rack in hosts
/// and datastores, plus a slice of the shared spillover pool. Total
/// inventory grows with the shard count: that is the scale-out story.
fn f10_topology(shards: usize) -> FedTopology {
    FedTopology {
        shards,
        home_hosts_per_shard: 8,
        home_ds_per_shard: 4,
        home_ds_capacity_gb: 16_384.0,
        shared_hosts: 2,
        shared_ds: 1,
        shared_ds_capacity_gb: 16_384.0,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("fed-template".into(), 2, 2_048, 20.0)],
        initial_vms_per_shard: Vec::new(),
        initial_vm_disk_gb: 4.0,
    }
}

/// Runs F10.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let shards: Vec<usize> = opts.pick(vec![1, 2, 4, 8], vec![1, 4]);
    let warmup = SimDuration::from_mins(opts.pick(5, 2));
    let measure = SimDuration::from_mins(opts.pick(20, 6));
    // Closed-loop pressure per federated shard, and in total for the
    // single-plane multiplier run (which keeps its fixed 16-host rack).
    // Equal aggregate closed-loop pressure at max shards: each shard
    // carries its slice of the same tenant population the multiplier
    // run serves through one plane.
    let n_per_shard = opts.pick(256, 128);
    let n_multiplier = opts.pick(1024, 512);

    let mut table = Table::new(
        "F10 — Saturated linked-clone throughput: federated shards vs capacity multiplier (VMs/hour)",
        &[
            "shards",
            "federated",
            "multiplier",
            "fed: conflicts",
            "fed: p99 queue s",
            "fed: peak pending",
            "mult: db util",
            "mult: peak pending",
        ],
    );
    // One sweep point per (shard count, model) cell: model 0 is the
    // federation, model 1 the capacity multiplier.
    let points: Vec<(usize, u8)> = shards.iter().flat_map(|&s| [(s, 0), (s, 1)]).collect();
    enum Outcome {
        Fed(crate::experiments::loops::FedLoadResult),
        Mult(crate::experiments::loops::LoadResult),
    }
    let results = sweep(opts, &points, |&(s, model)| {
        if model == 0 {
            // Same physical host-side window as the multiplier run: the
            // comparison varies only how management capacity is added.
            let mut config = ControlPlaneConfig::default();
            config.limits.per_host = 32;
            Outcome::Fed(fed_closed_loop(
                opts.seed,
                f10_topology(s),
                config,
                load_policy(),
                RecoveryPolicy::default(),
                SimDuration::from_secs(10),
                opts.intra_jobs,
                n_per_shard * s as u32,
                warmup,
                measure,
            ))
        } else {
            let mut config = ControlPlaneConfig {
                shards: s as u32,
                ..Default::default()
            };
            // The multiplier scales the management server's own
            // resources; host-side limits are physical and fixed.
            config.limits.global = 640u32.saturating_mul(s as u32);
            config.limits.per_host = 32;
            Outcome::Mult(closed_loop(
                opts.seed,
                config,
                CloneMode::Linked,
                n_multiplier,
                warmup,
                measure,
            ))
        }
    });
    for (&s, pair) in shards.iter().zip(results.chunks_exact(2)) {
        let (Outcome::Fed(fed), Outcome::Mult(mult)) = (&pair[0], &pair[1]) else {
            unreachable!("sweep preserves point order");
        };
        table.row([
            s.to_string(),
            fmt(fed.vms_per_hour),
            fmt(mult.vms_per_hour),
            fed.conflicts.to_string(),
            fmt(fed.p99_queue_s),
            fed.pending_peak.to_string(),
            fmt(mult.db_util),
            mult.pending_peak.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f10_federation_scales_where_the_multiplier_stalls() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        let last = t.len() - 1;
        // The capacity multiplier barely moves saturated throughput:
        // the single admission/orchestration pipeline still pins it.
        assert!(
            cell(last, 2) < cell(0, 2) * 1.5,
            "multiplier must stay pinned: {} vs {}",
            cell(last, 2),
            cell(0, 2)
        );
        // Federation widens the whole pipeline: near-linear scaling
        // (quick mode compares 4 shards vs 1).
        assert!(
            cell(last, 1) > cell(0, 1) * 2.0,
            "federation must scale out: {} vs {}",
            cell(last, 1),
            cell(0, 1)
        );
        // At max shards the federation out-provisions the multiplier.
        assert!(
            cell(last, 1) > cell(last, 2),
            "federation must beat the multiplier: {} vs {}",
            cell(last, 1),
            cell(last, 2)
        );
        // The multiplier's queue of parked operations stays deep.
        assert!(cell(last, 7) > 100.0, "multiplier pending peak");
    }
}
