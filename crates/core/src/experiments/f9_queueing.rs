//! F9 — Figure 9: distribution of task queueing delay (resource queues +
//! admission waits) at increasing load levels.
//!
//! Queueing delay is the canary of control-plane saturation: at 30 % load
//! tasks barely wait; at 90 % the wait distribution develops a heavy tail
//! that dominates user-visible provisioning latency.

use cpsim_des::SimDuration;
use cpsim_metrics::{Summary, Table};
use cpsim_mgmt::ControlPlaneConfig;

use crate::experiments::loops::{open_loop, sweep};
use crate::experiments::{fmt, ExpOptions};

/// Runs F9.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    // Estimate capacity by overloading an open loop: the completed rate
    // under heavy overload is the plane's sustainable throughput with all
    // admission limits in force. (The load points below depend on this
    // number, so the probe runs before the sweep fans out.)
    let (cap, _) = open_loop(
        opts.seed,
        ControlPlaneConfig::default(),
        SimDuration::from_millis(50),
        SimDuration::from_mins(opts.pick(15, 6)),
    );
    let capacity_per_hour = cap.vms_per_hour.max(1.0);

    let loads = [0.3, 0.7, 0.9];
    let duration = SimDuration::from_mins(opts.pick(40, 10));
    let rows = sweep(opts, &loads, |&load| {
        let rate = capacity_per_hour * load;
        let interval = SimDuration::from_secs_f64(3_600.0 / rate);
        let (res, sim) = open_loop(opts.seed, ControlPlaneConfig::default(), interval, duration);
        let mut waits: Summary = sim
            .task_reports()
            .iter()
            .filter(|r| r.is_success())
            .map(|r| r.queue_secs + r.admission_secs)
            .collect();
        [
            format!("{load:.1}"),
            fmt(rate),
            fmt(waits.percentile(50.0)),
            fmt(waits.percentile(90.0)),
            fmt(waits.percentile(99.0)),
            fmt(waits.max()),
            fmt(res.mean_latency_s),
        ]
    });

    let mut table = Table::new(
        "F9 — Queueing + admission delay of management operations (seconds)",
        &[
            "load (× capacity)",
            "offered VMs/h",
            "p50",
            "p90",
            "p99",
            "max",
            "mean e2e latency s",
        ],
    );
    for row in rows {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f9_waits_grow_with_load() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        // p99 wait at 0.9 load exceeds p99 at 0.3 load.
        assert!(
            cell(2, 4) > cell(0, 4),
            "p99 at 0.9 ({}) should exceed p99 at 0.3 ({})",
            cell(2, 4),
            cell(0, 4)
        );
        // Light load: median wait is near zero.
        assert!(cell(0, 2) < 1.0, "median wait at 0.3 load: {}", cell(0, 2));
    }
}
