//! F6 — Figure 6: VM lifetime distributions, cloud vs enterprise.
//!
//! Cloud VMs live hours (training labs) to days (dev/test); enterprise
//! VMs effectively never die. Short lifetimes mean provisioning *and*
//! teardown dominate the management stream — half of why cloud management
//! load looks nothing like datacenter management load.

use cpsim_des::SimTime;
use cpsim_metrics::Table;
use cpsim_workload::{cloud_a, cloud_b, enterprise};

use crate::experiments::loops::sweep;
use crate::experiments::{fmt, ExpOptions};
use crate::Scenario;

const PERCENTILES: [f64; 6] = [10.0, 25.0, 50.0, 75.0, 90.0, 95.0];

/// Runs F6.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let hours = opts.pick(96, 12);
    let mut table = Table::new(
        "F6 — VM lifetime distribution (hours)",
        &[
            "environment",
            "observed deaths",
            "p10",
            "p25",
            "p50",
            "p75",
            "p90",
            "p95",
        ],
    );
    let profiles = [cloud_a(), cloud_b(), enterprise()];
    let rows = sweep(opts, &profiles, |profile| {
        let mut sim = Scenario::from_profile(profile).seed(opts.seed).build();
        sim.run_until(SimTime::from_hours(hours));
        let mut a = sim.analyze_trace();
        let mut row = vec![profile.name.clone(), a.lifetimes_hours.count().to_string()];
        if a.lifetimes_hours.is_empty() {
            row.extend(std::iter::repeat_n("n/a".to_string(), PERCENTILES.len()));
        } else {
            for p in PERCENTILES {
                row.push(fmt(a.lifetimes_hours.percentile(p)));
            }
        }
        row
    });
    for row in rows {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f6_cloud_vms_die_young() {
        // Quick mode is too short for cloud-b's multi-day lifetimes, so
        // only assert on cloud-a vs enterprise.
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let deaths = |row: usize| -> u64 { t.rows()[row][1].parse().unwrap() };
        assert!(deaths(0) > 0, "cloud-a should see deaths within hours");
        // Enterprise has no lease-driven deaths.
        assert_eq!(deaths(2), 0);
        // Cloud-a median lifetime is in the single-digit-hours range.
        let p50: f64 = t.rows()[0][4].parse().unwrap();
        assert!(p50 > 0.5 && p50 < 24.0, "cloud-a median lifetime {p50}h");
    }
}
