//! T3 — per-operation retry / abort / rollback breakdown under a mixed
//! fault plan.
//!
//! Complements F12's aggregate view: a single run under host crashes,
//! datastore outages, DB degradation, heartbeat drops and agent hangs,
//! broken down by operation kind — how many tasks of each kind retried a
//! phase, how many exhausted their retry budget, and how many left
//! partial state that the plane rolled back. A second table reports the
//! plane-wide fault and recovery counters.

use cpsim_cloud::{CloudRequest, FailurePolicy, ProvisioningPolicy};
use cpsim_des::{SimDuration, SimTime};
use cpsim_faults::{FaultKind, FaultPlan};
use cpsim_metrics::Table;
use cpsim_mgmt::CloneMode;

use crate::experiments::loops::{load_policy, load_topology};
use crate::experiments::ExpOptions;
use crate::Scenario;

/// The mixed fault plan T3 runs under.
fn plan(horizon: SimDuration) -> FaultPlan {
    FaultPlan::new(horizon)
        .with_process(
            6.0,
            FaultKind::HostCrash {
                host: 0,
                down_for: SimDuration::from_mins(4),
            },
        )
        .with_process(
            2.0,
            FaultKind::DatastoreOutage {
                ds: 0,
                duration: SimDuration::from_mins(3),
            },
        )
        .with_process(
            2.0,
            FaultKind::DbDegraded {
                factor: 3.0,
                duration: SimDuration::from_mins(5),
            },
        )
        .with_process(
            3.0,
            FaultKind::HeartbeatDrops {
                host: 0,
                duration: SimDuration::from_mins(2),
            },
        )
        .with_agent_timeout_prob(0.03)
}

/// Runs T3.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let duration = SimDuration::from_mins(opts.pick(180, 45));
    let mut sim = Scenario::bare(load_topology())
        .seed(opts.seed)
        .policy(ProvisioningPolicy {
            on_failure: FailurePolicy::Retry { max_attempts: 3 },
            ..load_policy()
        })
        .with_fault_plan(plan(duration))
        .build();
    let org = sim.org();
    let template = sim.templates()[0];
    // Two concurrent open loops: linked clones every 30 s (the pure
    // control-plane stream) plus full clones every 150 s — a crash that
    // interrupts a full clone's long copy leaves a partial work disk, the
    // state the rollback column accounts for.
    for (mode, interval) in [
        (CloneMode::Linked, SimDuration::from_secs(30)),
        (CloneMode::Full, SimDuration::from_secs(150)),
    ] {
        let mut t = SimTime::from_secs(1);
        let end = SimTime::ZERO + duration;
        while t < end {
            sim.schedule_request(
                t,
                CloudRequest::InstantiateVapp {
                    org,
                    template,
                    count: 1,
                    mode: Some(mode),
                    lease: None,
                },
            );
            t += interval;
        }
    }
    sim.run_until(SimTime::ZERO + duration);
    let stats = sim.plane().stats();

    let mut by_kind = Table::new(
        "T3 — Retry / abort / rollback breakdown by operation kind",
        &[
            "operation",
            "completed",
            "failed",
            "phase retries",
            "aborted",
            "rolled back",
        ],
    );
    for (kind, ks) in stats.kinds() {
        by_kind.row([
            kind.to_string(),
            ks.completed.to_string(),
            ks.failed.to_string(),
            ks.retries.to_string(),
            ks.aborted.to_string(),
            ks.rolled_back.to_string(),
        ]);
    }

    let mut counters = Table::new(
        "T3 — Plane-wide fault and recovery counters",
        &["counter", "count"],
    );
    for (name, value) in [
        ("host crashes injected", stats.host_crashes()),
        ("hosts declared down", stats.hosts_declared_down()),
        ("inventory resyncs", stats.resyncs()),
        ("agent timeouts", stats.agent_timeouts()),
        ("phase retries", stats.retries()),
        ("task aborts", stats.aborts()),
        ("rollbacks", stats.rollbacks()),
    ] {
        counters.row([name.to_string(), value.to_string()]);
    }
    vec![by_kind, counters]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3_breaks_down_recovery_by_kind() {
        let tables = run(&ExpOptions::quick());
        let by_kind = &tables[0];
        let clone = by_kind
            .rows()
            .iter()
            .find(|r| r[0] == "clone-linked")
            .expect("clones ran");
        let retries: u64 = clone[3].parse().unwrap();
        assert!(retries > 0, "faulty run must retry clone phases");

        let counters = &tables[1];
        let count = |name: &str| -> u64 {
            counters
                .rows()
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[1].parse().unwrap())
                .unwrap()
        };
        assert!(count("host crashes injected") > 0);
        assert!(count("hosts declared down") > 0);
        assert!(count("inventory resyncs") >= count("hosts declared down"));
        assert!(count("phase retries") >= count("task aborts"));
        assert!(count("rollbacks") > 0, "no partial state was rolled back");
    }
}
