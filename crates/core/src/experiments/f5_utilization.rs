//! F5 — Figure 5: control-plane resource utilization vs offered
//! provisioning rate (linked clones).
//!
//! As the offered rate rises, database and management-CPU utilization
//! climb toward 1 while datastore bandwidth stays almost idle — the
//! paper's direct evidence that the management control plane, not
//! storage, limits cloud deployment once bandwidth-conserving
//! provisioning is used.

use cpsim_des::SimDuration;
use cpsim_metrics::Table;
use cpsim_mgmt::ControlPlaneConfig;

use crate::experiments::loops::{open_loop, sweep};
use crate::experiments::{fmt, ExpOptions};

/// Runs F5.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    // Offered rates in VMs/hour (instantiates of one linked clone each).
    let rates: Vec<u64> = opts.pick(
        vec![1_800, 3_600, 7_200, 14_400, 28_800, 57_600, 86_400],
        vec![1_800, 14_400, 57_600],
    );
    let duration = SimDuration::from_mins(opts.pick(30, 8));

    let results = sweep(opts, &rates, |&rate| {
        let interval = SimDuration::from_secs_f64(3_600.0 / rate as f64);
        let (res, _sim) = open_loop(opts.seed, ControlPlaneConfig::default(), interval, duration);
        res
    });

    let mut table = Table::new(
        "F5 — Utilization vs offered linked-clone rate",
        &[
            "offered VMs/h",
            "completed VMs/h",
            "db util",
            "cpu util",
            "agent util",
            "datastore busy",
            "mean latency s",
            "peak pending",
            "failures",
        ],
    );
    for (&rate, res) in rates.iter().zip(&results) {
        table.row([
            rate.to_string(),
            fmt(res.vms_per_hour),
            fmt(res.db_util),
            fmt(res.cpu_util),
            fmt(res.agent_util),
            fmt(res.ds_busy),
            fmt(res.mean_latency_s),
            res.pending_peak.to_string(),
            res.failures.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f5_control_plane_saturates_before_storage() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        let last = t.len() - 1;
        // Utilization grows with offered rate.
        assert!(cell(last, 2) > cell(0, 2), "db util should grow");
        // At the highest rate, some control-plane resource is the busiest
        // resource and datastores stay nearly idle.
        let control = cell(last, 2).max(cell(last, 3)).max(cell(last, 4));
        let ds = cell(last, 5);
        assert!(control > 0.5, "control plane busy at overload: {control}");
        assert!(ds < 0.2, "datastores nearly idle for linked clones: {ds}");
        // Latency blows up under overload relative to light load.
        assert!(cell(last, 6) > 2.0 * cell(0, 6));
    }
}
