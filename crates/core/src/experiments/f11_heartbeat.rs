//! F11 — design implication: background synchronization (heartbeat) load
//! vs inventory size.
//!
//! Every host imposes periodic CPU and DB work on the management server,
//! so a larger cloud spends a growing share of its control plane on
//! standing still — and per-operation costs that scan the inventory
//! (placement) grow too. This bounds how far a single management server
//! scales, motivating the scale-out designs of F10.

use cpsim_cloud::CloudRequest;
use cpsim_des::{SimDuration, SimTime};
use cpsim_metrics::Table;
use cpsim_mgmt::CloneMode;
use cpsim_workload::Topology;

use crate::experiments::{fmt, ExpOptions};
use crate::Scenario;

fn topology(hosts: u32) -> Topology {
    Topology {
        hosts,
        host_cpu_mhz: 48_000,
        host_mem_mb: 262_144,
        datastores: 4,
        ds_capacity_gb: 8_192.0,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("probe".into(), 2, 2_048, 20.0)],
        seed_templates_everywhere: true,
        initial_vapps: 0,
        initial_vapp_size: 0,
    }
}

/// Runs F11.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let host_counts: Vec<u32> = opts.pick(vec![64, 256, 1024, 2048], vec![64, 512]);
    let duration = SimDuration::from_mins(opts.pick(30, 10));

    let mut table = Table::new(
        "F11 — Idle-cloud background load vs inventory size",
        &[
            "hosts",
            "cpu % (idle)",
            "db % (idle)",
            "probe clone latency s",
        ],
    );
    for &h in &host_counts {
        let mut sim = Scenario::bare(topology(h)).seed(opts.seed).build();
        // One probe instantiate halfway through, to expose placement-cost
        // growth with inventory size.
        let org = sim.org();
        let template = sim.templates()[0];
        sim.schedule_request(
            SimTime::ZERO + SimDuration::from_secs(duration.as_micros() / 2_000_000),
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 1,
                mode: Some(CloneMode::Linked),
                lease: None,
            },
        );
        sim.run_until(SimTime::ZERO + duration);
        let now = sim.now();
        let probe = sim
            .cloud_reports()
            .iter()
            .find(|r| r.kind == "instantiate-vapp")
            .expect("probe completes");
        table.row([
            h.to_string(),
            fmt(sim.plane().cpu_utilization(now) * 100.0),
            fmt(sim.plane().db_utilization(now) * 100.0),
            fmt(probe.latency.as_secs_f64()),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f11_background_load_scales_with_hosts() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        // 8x the hosts => roughly 8x the idle utilization.
        assert!(
            cell(1, 1) > 4.0 * cell(0, 1),
            "cpu idle % {} vs {}",
            cell(1, 1),
            cell(0, 1)
        );
        assert!(
            cell(1, 2) > 4.0 * cell(0, 2),
            "db idle % {} vs {}",
            cell(1, 2),
            cell(0, 2)
        );
        // The probe clone still completes in seconds at both scales.
        assert!(cell(0, 3) > 0.0 && cell(1, 3) < 120.0);
    }
}
