//! Shared load-driving helpers: closed-loop (fixed outstanding requests)
//! and open-loop (fixed arrival rate) provisioning drivers, plus the
//! parallel sweep entry point the heavy experiments submit points to.

use cpsim_cloud::{CloudRequest, ProvisioningPolicy};
use cpsim_des::{SimDuration, SimTime};
use cpsim_faults::RecoveryPolicy;
use cpsim_federation::{FedScenario, FedSim, FedTopology, Router, RouterPolicy};
use cpsim_mgmt::{CloneMode, ControlPlaneConfig};
use cpsim_workload::Topology;

use crate::exec::parallel_map;
use crate::experiments::ExpOptions;
use crate::{CloudSim, Scenario};

/// Runs one sweep point per element of `points` on the executor and
/// returns the results in point order.
///
/// This is the one funnel every sweep experiment goes through: points run
/// on up to [`ExpOptions::effective_jobs`] worker threads, results are
/// merged back in deterministic point order, and each point must derive
/// all of its randomness from its own inputs (every load driver in this
/// module builds a fresh [`Scenario`] from an explicit seed, so this
/// holds by construction). Output is byte-identical at any job count.
pub fn sweep<P, R>(opts: &ExpOptions, points: &[P], f: impl Fn(&P) -> R + Sync) -> Vec<R>
where
    P: Sync,
    R: Send,
{
    parallel_map(opts.effective_jobs(), points, f)
}

/// The topology used by the load experiments: mid-sized, fully seeded, so
/// linked clones are pure control-plane work.
pub fn load_topology() -> Topology {
    Topology {
        hosts: 16,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        datastores: 8,
        ds_capacity_gb: 16_384.0,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("load-template".into(), 2, 2_048, 20.0)],
        seed_templates_everywhere: true,
        initial_vapps: 0,
        initial_vapp_size: 0,
    }
}

/// Provisioning policy for load experiments: fencing on, power-on off
/// (keeps memory capacity out of the throughput measurement; the paper's
/// metric is deployment rate).
pub fn load_policy() -> ProvisioningPolicy {
    ProvisioningPolicy {
        mode: CloneMode::Linked,
        fencing: true,
        power_on: false,
        ..Default::default()
    }
}

/// Result of a load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadResult {
    /// VMs provisioned per hour during the measurement window.
    pub vms_per_hour: f64,
    /// Management CPU utilization over the run.
    pub cpu_util: f64,
    /// Database utilization over the run.
    pub db_util: f64,
    /// Mean datastore busy fraction over the run.
    pub ds_busy: f64,
    /// Mean host-agent utilization over the run.
    pub agent_util: f64,
    /// Peak admission pending-queue length.
    pub pending_peak: usize,
    /// Mean end-to-end instantiate latency (seconds) in the window.
    pub mean_latency_s: f64,
    /// Failed operations over the run.
    pub failures: u64,
}

/// Runs a closed loop: `n` single-VM instantiate requests always
/// outstanding; each completion triggers a delete of the deployed vApp and
/// a fresh instantiate (steady-state churn).
pub fn closed_loop(
    seed: u64,
    config: ControlPlaneConfig,
    mode: CloneMode,
    n: u32,
    warmup: SimDuration,
    measure: SimDuration,
) -> LoadResult {
    let mut sim = Scenario::bare(load_topology())
        .seed(seed)
        .config(config)
        .policy(load_policy())
        .build();
    let template = sim.templates()[0];
    let org = sim.org();
    let make = |sim: &mut CloudSim, at: SimTime| {
        sim.schedule_request(
            at,
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 1,
                mode: Some(mode),
                lease: None,
            },
        );
    };
    for i in 0..n {
        make(&mut sim, SimTime::from_micros(u64::from(i) + 1));
    }

    let end = SimTime::ZERO + warmup + measure;
    let slice = SimDuration::from_secs(15);
    let mut handled = 0usize;
    let mut completed_in_window = 0u64;
    let mut latency_sum = 0.0;
    let mut latency_n = 0u64;
    while sim.now() < end {
        sim.run_for(slice);
        let now = sim.now();
        let reports: Vec<(usize, &'static str, f64, bool)> = sim.cloud_reports()[handled..]
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    handled + i,
                    r.kind,
                    r.latency.as_secs_f64(),
                    // Throughput is counted by completion time: under a
                    // deep backlog everything in the window was submitted
                    // long before it.
                    r.completed_at >= SimTime::ZERO + warmup,
                )
            })
            .collect();
        handled += reports.len();
        for (idx, kind, latency, in_window) in reports {
            if kind != "instantiate-vapp" {
                continue;
            }
            if in_window {
                completed_in_window += 1;
                latency_sum += latency;
                latency_n += 1;
            }
            // Tear down what we built and keep the loop closed.
            let vapp = sim.cloud_reports()[idx].vapp;
            if let Some(vapp) = vapp {
                sim.schedule_request(now, CloudRequest::DeleteVapp { vapp });
            }
            make(&mut sim, now);
        }
    }

    let now = sim.now();
    let ds_busy = sim
        .datastores()
        .iter()
        .map(|d| sim.plane().datastore_busy(*d, now))
        .sum::<f64>()
        / sim.datastores().len().max(1) as f64;
    LoadResult {
        vms_per_hour: completed_in_window as f64 / measure.as_secs_f64() * 3_600.0,
        cpu_util: sim.plane().cpu_utilization(now),
        db_util: sim.plane().db_utilization(now),
        ds_busy,
        agent_util: sim.plane().mean_agent_utilization(now),
        pending_peak: sim.plane().admission().peak_pending(),
        mean_latency_s: if latency_n == 0 {
            0.0
        } else {
            latency_sum / latency_n as f64
        },
        failures: sim.plane().stats().failed(),
    }
}

/// Result of a federated closed-loop load run.
#[derive(Clone, Copy, Debug)]
pub struct FedLoadResult {
    /// VMs provisioned per hour across all shards in the window.
    pub vms_per_hour: f64,
    /// Mean end-to-end instantiate latency (seconds) in the window.
    pub mean_latency_s: f64,
    /// 99th-percentile provisioning queueing delay (admission + queue
    /// seconds) over tasks completed in the window.
    pub p99_queue_s: f64,
    /// Shared-pool placements committed through the ledger.
    pub commits: u64,
    /// Placement commits rejected at the ledger (stale-view races).
    pub conflicts: u64,
    /// Placement-store refreshes performed by the shards.
    pub syncs: u64,
    /// Tasks aborted after exhausting conflict retries.
    pub aborted: u64,
    /// Failed operations summed over all shards.
    pub failures: u64,
    /// Deepest admission backlog on any single shard.
    pub pending_peak: usize,
}

/// Runs a federated closed loop: `n` single-VM linked instantiates always
/// outstanding across the federation. The initial burst is spread
/// round-robin; every completion triggers a delete on its shard and a
/// fresh instantiate routed to the least-loaded shard.
#[allow(clippy::too_many_arguments)]
pub fn fed_closed_loop(
    seed: u64,
    topology: FedTopology,
    config: ControlPlaneConfig,
    policy: ProvisioningPolicy,
    recovery: RecoveryPolicy,
    staleness: SimDuration,
    intra_jobs: usize,
    n: u32,
    warmup: SimDuration,
    measure: SimDuration,
) -> FedLoadResult {
    let shards = topology.shards;
    let mut sim = FedScenario::new(topology)
        .seed(seed)
        .config(config)
        .policy(policy)
        .recovery(recovery)
        .staleness(staleness)
        .build();
    sim.set_intra_jobs(intra_jobs);
    sim.keep_task_reports(true);
    let mut router = Router::new(RouterPolicy::LeastLoaded);
    let submit = |sim: &mut FedSim, at: SimTime, s: usize| {
        let org = sim.org(s);
        let template = sim.templates(s)[0];
        sim.schedule_request(
            at,
            s,
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 1,
                mode: Some(CloneMode::Linked),
                lease: None,
            },
        );
    };
    for i in 0..n {
        submit(
            &mut sim,
            SimTime::from_micros(u64::from(i) + 1),
            i as usize % shards,
        );
    }

    let end = SimTime::ZERO + warmup + measure;
    let slice = SimDuration::from_secs(15);
    let mut handled = vec![0usize; shards];
    let mut completed_in_window = 0u64;
    let mut latency_sum = 0.0;
    let mut latency_n = 0u64;
    while sim.now() < end {
        sim.run_for(slice);
        let now = sim.now();
        // `s` also names the shard in `cloud_reports`/`schedule_request`
        // calls below, which borrow `sim` mutably — a plain index loop
        // reads better than threading `handled` through an iterator.
        #[allow(clippy::needless_range_loop)]
        for s in 0..shards {
            let reports: Vec<(usize, &'static str, f64, bool, bool)> = sim.cloud_reports(s)
                [handled[s]..]
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    (
                        handled[s] + i,
                        r.kind,
                        r.latency.as_secs_f64(),
                        r.completed_at >= SimTime::ZERO + warmup,
                        r.ops_issued > 0 && r.ops_failed == 0,
                    )
                })
                .collect();
            handled[s] += reports.len();
            for (idx, kind, latency, in_window, produced) in reports {
                if kind != "instantiate-vapp" {
                    continue;
                }
                // Goodput counts only clean instantiates; a request
                // whose clone aborted or failed placement is not goodput.
                if in_window && produced {
                    completed_in_window += 1;
                    latency_sum += latency;
                    latency_n += 1;
                }
                if let Some(vapp) = sim.cloud_reports(s)[idx].vapp {
                    sim.schedule_request(now, s, CloudRequest::DeleteVapp { vapp });
                }
                // Keep the loop closed: reissue on the least-loaded shard.
                let loads = sim.shard_loads();
                let dst = router.pick(&loads, 0);
                submit(&mut sim, now, dst);
            }
        }
    }

    let mut delays: Vec<f64> = Vec::new();
    let mut aborted = 0u64;
    let mut failures = 0u64;
    let mut pending_peak = 0usize;
    for s in 0..shards {
        for r in sim.task_reports(s) {
            if r.aborted {
                aborted += 1;
            }
            if matches!(r.kind, "clone-linked" | "clone-full" | "create-vm")
                && r.completed_at >= SimTime::ZERO + warmup
            {
                delays.push(r.queue_secs + r.admission_secs);
            }
        }
        failures += sim.plane(s).stats().failed();
        pending_peak = pending_peak.max(sim.plane(s).admission().peak_pending());
    }
    delays.sort_by(|a, b| a.total_cmp(b));
    let p99 = if delays.is_empty() {
        0.0
    } else {
        delays[((delays.len() - 1) as f64 * 0.99).round() as usize]
    };
    let stats = sim.store_stats();
    debug_assert!(sim.check_store_invariants().is_ok());
    FedLoadResult {
        vms_per_hour: completed_in_window as f64 / measure.as_secs_f64() * 3_600.0,
        mean_latency_s: if latency_n == 0 {
            0.0
        } else {
            latency_sum / latency_n as f64
        },
        p99_queue_s: p99,
        commits: stats.commits,
        conflicts: stats.conflicts,
        syncs: stats.syncs,
        aborted,
        failures,
        pending_peak,
    }
}

/// Runs an open loop: single-VM linked instantiates arriving every
/// `interval` for `duration`, then measures utilizations and latency.
pub fn open_loop(
    seed: u64,
    config: ControlPlaneConfig,
    interval: SimDuration,
    duration: SimDuration,
) -> (LoadResult, CloudSim) {
    let sim = Scenario::bare(load_topology())
        .seed(seed)
        .config(config)
        .policy(load_policy())
        .build();
    open_loop_on(sim, CloneMode::Linked, interval, duration)
}

/// Drives an already-built sim with the same open loop. The fault
/// experiments build their own [`Scenario`] (carrying a fault plan and a
/// failure policy) and reuse the loop so faulty and fault-free runs see
/// identical offered load.
pub fn open_loop_on(
    mut sim: CloudSim,
    mode: CloneMode,
    interval: SimDuration,
    duration: SimDuration,
) -> (LoadResult, CloudSim) {
    sim.keep_task_reports(true);
    let template = sim.templates()[0];
    let org = sim.org();
    let mut t = SimTime::ZERO + SimDuration::from_secs(1);
    let end = SimTime::ZERO + duration;
    let mut offered = 0u64;
    while t < end {
        sim.schedule_request(
            t,
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 1,
                mode: Some(mode),
                lease: None,
            },
        );
        offered += 1;
        t += interval;
    }
    sim.run_until(end);
    let now = sim.now();
    let completed: Vec<f64> = sim
        .cloud_reports()
        .iter()
        .filter(|r| r.kind == "instantiate-vapp")
        .map(|r| r.latency.as_secs_f64())
        .collect();
    let ds_busy = sim
        .datastores()
        .iter()
        .map(|d| sim.plane().datastore_busy(*d, now))
        .sum::<f64>()
        / sim.datastores().len().max(1) as f64;
    let result = LoadResult {
        vms_per_hour: completed.len() as f64 / duration.as_secs_f64() * 3_600.0,
        cpu_util: sim.plane().cpu_utilization(now),
        db_util: sim.plane().db_utilization(now),
        ds_busy,
        agent_util: sim.plane().mean_agent_utilization(now),
        pending_peak: sim.plane().admission().peak_pending(),
        mean_latency_s: if completed.is_empty() {
            0.0
        } else {
            completed.iter().sum::<f64>() / completed.len() as f64
        },
        failures: sim.plane().stats().failed(),
    };
    debug_assert!(offered > 0, "open loop offered no work");
    (result, sim)
}
