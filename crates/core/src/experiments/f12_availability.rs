//! F12 — goodput and availability under injected control-plane faults.
//!
//! Extends the paper's load study with a dependability axis: the same
//! open-loop provisioning stream is driven against increasingly hostile
//! fault plans (host-crash storms plus host-agent hangs), with the
//! director re-placing and retrying failed members. Goodput (cleanly
//! deployed VMs per hour) degrades with the fault rate, tail latency
//! inflates, and — the control-plane point — retries replay management
//! CPU and database phases, so the management server runs *hotter* while
//! delivering *less*, at identical offered load.

use cpsim_cloud::{FailurePolicy, ProvisioningPolicy};
use cpsim_des::SimDuration;
use cpsim_faults::FaultPlan;
use cpsim_metrics::{Histogram, Table};
use cpsim_mgmt::CloneMode;

use crate::experiments::loops::{load_policy, load_topology, open_loop_on, sweep};
use crate::experiments::{fmt, ExpOptions};
use crate::Scenario;

/// Crash storm plus agent hangs whose severity scales with the rate.
fn plan_for(rate_per_hour: f64, horizon: SimDuration) -> FaultPlan {
    FaultPlan::host_crashes(rate_per_hour, SimDuration::from_mins(4), horizon)
        .with_agent_timeout_prob((rate_per_hour * 0.003).min(0.25))
}

/// Runs F12.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let rates: Vec<f64> = opts.pick(vec![0.0, 2.0, 6.0, 18.0], vec![0.0, 18.0]);
    let duration = SimDuration::from_mins(opts.pick(240, 40));

    let mut table = Table::new(
        "F12 — Goodput and availability vs fault rate (open loop, re-place-and-retry)",
        &[
            "mode",
            "crashes/h",
            "goodput vms/h",
            "availability %",
            "p99 latency s",
            "cpu %",
            "db %",
            "retries",
            "aborts",
        ],
    );
    // One sweep point per (clone mode, fault rate). Per-mode offered load
    // is what the mode's data path can sustain: linked clones are
    // control-plane-bound, full clones serialize on the template's source
    // datastore. Load stays identical across fault rates within a mode —
    // the comparison the retry-amplification claim needs.
    let points: Vec<(CloneMode, f64)> = [CloneMode::Linked, CloneMode::Full]
        .into_iter()
        .flat_map(|mode| rates.iter().map(move |&rate| (mode, rate)))
        .collect();
    let rows = sweep(opts, &points, |&(mode, rate)| {
        let interval = match mode {
            CloneMode::Full => SimDuration::from_secs(150),
            _ => SimDuration::from_secs(30),
        };
        let offered = ((duration.as_secs_f64() - 1.0) / interval.as_secs_f64()).ceil();
        let mut scenario =
            Scenario::bare(load_topology())
                .seed(opts.seed)
                .policy(ProvisioningPolicy {
                    on_failure: FailurePolicy::Retry { max_attempts: 3 },
                    ..load_policy()
                });
        if rate > 0.0 {
            scenario = scenario.with_fault_plan(plan_for(rate, duration));
        }
        let (result, sim) = open_loop_on(scenario.build(), mode, interval, duration);

        let mut latencies = Histogram::new();
        let mut clean = 0u64;
        for r in sim.cloud_reports() {
            if r.kind != "instantiate-vapp" {
                continue;
            }
            latencies.record(r.latency.as_secs_f64());
            if r.is_clean() {
                clean += 1;
            }
        }
        let stats = sim.plane().stats();
        [
            mode.name().to_string(),
            fmt(rate),
            fmt(clean as f64 / duration.as_secs_f64() * 3_600.0),
            fmt(clean as f64 / offered * 100.0),
            fmt(latencies.quantile(0.99)),
            fmt(result.cpu_util * 100.0),
            fmt(result.db_util * 100.0),
            stats.retries().to_string(),
            stats.aborts().to_string(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f12_faults_degrade_goodput_and_inflate_control_load() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        // Quick mode: rows are (linked, 0), (linked, 18), (full, 0), (full, 18).
        assert_eq!(t.rows().len(), 4);
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        for base in [0, 2] {
            let (free, faulty) = (base, base + 1);
            // Goodput monotonically degrades with the fault rate.
            assert!(
                cell(faulty, 2) < cell(free, 2),
                "goodput {} !< {}",
                cell(faulty, 2),
                cell(free, 2)
            );
            assert!(cell(faulty, 3) < 100.0, "availability below 100%");
            // The faulty run retried and aborted work...
            assert!(cell(faulty, 7) > 0.0 && cell(faulty, 8) > 0.0);
            assert_eq!(cell(free, 7), 0.0);
            // ...and the replays inflate management CPU + DB load at
            // identical offered load.
            assert!(
                cell(faulty, 5) + cell(faulty, 6) > cell(free, 5) + cell(free, 6),
                "control load {}+{} !> {}+{}",
                cell(faulty, 5),
                cell(faulty, 6),
                cell(free, 5),
                cell(free, 6)
            );
        }
    }
}
