//! Shared low-load probe run used by F3 (latency split) and T2 (phase
//! breakdown): executes every operation kind many times on an otherwise
//! idle cloud, widely spaced so queueing is negligible and the measured
//! latencies are pure service costs.

use cpsim_des::{SimDuration, SimTime};
use cpsim_mgmt::{CloneMode, OpKind};
use cpsim_workload::Topology;

use crate::experiments::ExpOptions;
use crate::{CloudSim, Scenario};

fn probe_topology() -> Topology {
    Topology {
        hosts: 4,
        host_cpu_mhz: 48_000,
        host_mem_mb: 262_144,
        datastores: 4,
        ds_capacity_gb: 4_096.0,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("probe-template".into(), 2, 4_096, 20.0)],
        seed_templates_everywhere: true,
        initial_vapps: 0,
        initial_vapp_size: 0,
    }
}

/// Runs the probe: `n` samples of each operation kind, widely spaced.
/// Returns the finished simulation with task reports retained.
pub fn run_probe(opts: &ExpOptions) -> CloudSim {
    let n = opts.pick(30u64, 5u64);
    let mut sim = Scenario::bare(probe_topology()).seed(opts.seed).build();
    sim.keep_task_reports(true);
    let template = sim.templates()[0];
    let gap = SimDuration::from_secs(60);

    // Phase A: clones (the template is resident everywhere, so linked
    // clones are pure control-plane work).
    let mut t = SimTime::from_secs(1);
    for _ in 0..n {
        sim.schedule_op(
            t,
            OpKind::CloneVm {
                source: template,
                mode: CloneMode::Linked,
            },
        );
        t += gap;
    }
    // Full clones spaced widely enough that copies never overlap
    // (20 GiB at 200 MiB/s ≈ 102 s).
    let full_gap = SimDuration::from_secs(240);
    for _ in 0..n {
        sim.schedule_op(
            t,
            OpKind::CloneVm {
                source: template,
                mode: CloneMode::Full,
            },
        );
        t += full_gap;
    }
    let phase_a_end = t + SimDuration::from_secs(600);
    sim.run_until(phase_a_end);

    // Phase B: one sequence of lifecycle ops per produced VM, staggered.
    let vms: Vec<_> = sim
        .task_reports()
        .iter()
        .filter(|r| r.is_success())
        .filter_map(|r| r.produced_vm)
        .collect();
    assert!(!vms.is_empty(), "probe produced no VMs");
    let mut base = phase_a_end + SimDuration::from_secs(60);
    for vm in vms {
        let seq = [
            OpKind::PowerOn { vm },
            OpKind::Reconfigure { vm },
            OpKind::Snapshot { vm },
            OpKind::RemoveSnapshot { vm },
            OpKind::MigrateVm { vm },
            OpKind::PowerOff { vm },
            OpKind::DestroyVm { vm },
        ];
        let mut t = base;
        for op in seq {
            sim.schedule_op(t, op);
            t += SimDuration::from_secs(90);
        }
        base += SimDuration::from_secs(45);
    }
    sim.run_until(base + SimDuration::from_hours(2));

    // Phase C: seed-template probes onto fresh datastores added one at a
    // time (each datastore/template pair can be seeded only once).
    let mut t = sim.now() + SimDuration::from_secs(60);
    let seeds = opts.pick(8u64, 3u64);
    for i in 0..seeds {
        sim.schedule_request(
            t,
            cpsim_cloud::CloudRequest::AddDatastore {
                spec: cpsim_inventory::DatastoreSpec::new(
                    format!("probe-extra-{i}"),
                    4_096.0,
                    200.0,
                ),
                seed_templates: true,
            },
        );
        t += SimDuration::from_secs(600);
    }
    sim.run_until(t + SimDuration::from_hours(1));
    assert_eq!(
        sim.plane().tasks_in_flight(),
        0,
        "probe must quiesce before measurement"
    );
    sim
}

/// Mean of `f` over successful reports of `kind`; `None` if no samples.
pub fn mean_of(
    sim: &CloudSim,
    kind: &str,
    f: impl Fn(&cpsim_mgmt::TaskReport) -> f64,
) -> Option<f64> {
    let samples: Vec<f64> = sim
        .task_reports()
        .iter()
        .filter(|r| r.kind == kind && r.is_success())
        .map(f)
        .collect();
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}
