//! Experiment drivers: one module per table/figure of the reproduced
//! paper's evaluation (reconstructed — see `DESIGN.md`).
//!
//! Every experiment is a pure function from an [`ExpOptions`] to
//! [`Table`]s, so the `cpsim-bench` binary, the
//! examples, and the integration tests all share one implementation.
//!
//! | Id  | Module | Claim substantiated |
//! |-----|--------|---------------------|
//! | T1  | [`t1_environments`] | the two clouds' scale and activity |
//! | F1  | [`f1_opmix`] | cloud op mixes differ from enterprise |
//! | F2  | [`f2_arrivals`] | self-service arrivals are bursty |
//! | F3  | [`f3_latency_split`] | control- vs data-plane latency per op |
//! | F4  | [`f4_throughput`] | linked clones shift the bottleneck |
//! | F5  | [`f5_utilization`] | control plane saturates first |
//! | F6  | [`f6_lifetimes`] | cloud VMs are short-lived |
//! | F7  | [`f7_vapp_scaling`] | admission limits shape deploy latency |
//! | F8  | [`f8_reconfig`] | reconfiguration cost and interference |
//! | F9  | [`f9_queueing`] | queueing delays grow with load |
//! | T2  | [`t2_breakdown`] | per-phase control-plane cost |
//! | F10 | [`f10_scaleout`] | scale-out: federated shards vs capacity multiplier |
//! | F11 | [`f11_heartbeat`] | background load scales with hosts |
//! | F12 | [`f12_availability`] | goodput/availability under faults |
//! | T3  | [`t3_faults`] | retry/abort/rollback breakdown |
//! | F13 | [`f13_conflicts`] | federated conflict rate vs staleness |
//! | F14 | [`f14_rebalance`] | cross-shard rebalance cost vs skew |

pub mod f10_scaleout;
pub mod f11_heartbeat;
pub mod f12_availability;
pub mod f13_conflicts;
pub mod f14_rebalance;
pub mod f1_opmix;
pub mod f2_arrivals;
pub mod f3_latency_split;
pub mod f4_throughput;
pub mod f5_utilization;
pub mod f6_lifetimes;
pub mod f7_vapp_scaling;
pub mod f8_reconfig;
pub mod f9_queueing;
pub(crate) mod loops;
pub(crate) mod probe;
pub mod t1_environments;
pub mod t2_breakdown;
pub mod t3_faults;

use cpsim_metrics::Table;

/// Options shared by all experiments.
#[derive(Clone, Copy, Debug)]
pub struct ExpOptions {
    /// Master seed.
    pub seed: u64,
    /// Quick mode: shorter horizons and smaller sweeps (used by tests);
    /// full mode reproduces the figures at publication scale.
    pub quick: bool,
    /// Worker threads for sweep points: `0` = one per available core,
    /// `1` = fully sequential. Output tables are byte-identical at every
    /// value — parallelism only changes wall-clock (see [`crate::exec`]).
    pub jobs: usize,
    /// Worker threads *inside* each federated simulation: the number of
    /// shard executors driving one `FedSim` concurrently (conservative
    /// shard-lookahead execution). `0` = one per available core, `1` =
    /// the sequential oracle loop. Like `jobs`, output tables are
    /// byte-identical at every value.
    pub intra_jobs: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 2013,
            quick: false,
            jobs: 0,
            intra_jobs: 1,
        }
    }
}

impl ExpOptions {
    /// Quick-mode options for tests.
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            ..Default::default()
        }
    }

    /// Returns a copy with an explicit job count.
    pub fn with_jobs(self, jobs: usize) -> Self {
        ExpOptions { jobs, ..self }
    }

    /// Returns a copy with an explicit intra-simulation shard-executor
    /// count for federated experiments.
    pub fn with_intra_jobs(self, intra_jobs: usize) -> Self {
        ExpOptions { intra_jobs, ..self }
    }

    /// The concrete worker count: `jobs`, with `0` resolved to the number
    /// of available cores.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            crate::exec::available_jobs()
        } else {
            self.jobs
        }
    }

    /// Picks `full` or `q` depending on the mode.
    pub fn pick<T>(&self, full: T, q: T) -> T {
        if self.quick {
            q
        } else {
            full
        }
    }
}

/// An experiment id paired with its runner, for the harness.
pub struct Experiment {
    /// Short id, e.g. `"t1"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Independent simulation runs in quick mode (the sweep size the
    /// parallel executor can spread over cores).
    pub sweep_quick: usize,
    /// Independent simulation runs at full (publication) scale.
    pub sweep_full: usize,
    /// Runner.
    pub run: fn(&ExpOptions) -> Vec<Table>,
    /// Whether the experiment drives the federated multi-shard model
    /// (`cpsim-federation`) rather than a single control plane.
    pub federated: bool,
    /// Whether the experiment's federated runs actually exercise the
    /// intra-run threaded executor (`--intra-jobs`). False for federated
    /// experiments that schedule cross-shard migrations, which pin the
    /// run to the sequential executor. `repro list` marks these
    /// `[intra-jobs]` so CI can enumerate them mechanically.
    pub intra_jobs: bool,
}

impl Experiment {
    /// The sweep size for the given mode.
    pub fn sweep(&self, quick: bool) -> usize {
        if quick {
            self.sweep_quick
        } else {
            self.sweep_full
        }
    }
}

/// Every experiment, in paper order.
///
/// Sweep sizes count the independent simulation runs each experiment
/// performs per mode — the units the parallel executor distributes.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "t1",
            title: "Table I: characteristics of the two cloud environments",
            sweep_quick: 3,
            sweep_full: 3,
            federated: false,
            intra_jobs: false,
            run: t1_environments::run,
        },
        Experiment {
            id: "f1",
            title: "Figure 1: management operation mix, clouds vs enterprise",
            sweep_quick: 3,
            sweep_full: 3,
            federated: false,
            intra_jobs: false,
            run: f1_opmix::run,
        },
        Experiment {
            id: "f2",
            title: "Figure 2: request arrival rate over a day",
            sweep_quick: 3,
            sweep_full: 3,
            federated: false,
            intra_jobs: false,
            run: f2_arrivals::run,
        },
        Experiment {
            id: "f3",
            title: "Figure 3: per-operation latency, control vs data plane",
            sweep_quick: 1,
            sweep_full: 1,
            federated: false,
            intra_jobs: false,
            run: f3_latency_split::run,
        },
        Experiment {
            id: "f4",
            title: "Figure 4: provisioning throughput vs concurrency",
            sweep_quick: 9,
            sweep_full: 30,
            federated: false,
            intra_jobs: false,
            run: f4_throughput::run,
        },
        Experiment {
            id: "f5",
            title: "Figure 5: control-plane utilization vs provisioning rate",
            sweep_quick: 3,
            sweep_full: 7,
            federated: false,
            intra_jobs: false,
            run: f5_utilization::run,
        },
        Experiment {
            id: "f6",
            title: "Figure 6: VM lifetime distributions",
            sweep_quick: 3,
            sweep_full: 3,
            federated: false,
            intra_jobs: false,
            run: f6_lifetimes::run,
        },
        Experiment {
            id: "f7",
            title: "Figure 7: vApp deployment latency vs size under limits",
            sweep_quick: 12,
            sweep_full: 28,
            federated: false,
            intra_jobs: false,
            run: f7_vapp_scaling::run,
        },
        Experiment {
            id: "f8",
            title: "Figure 8: cloud reconfiguration cost and interference",
            sweep_quick: 4,
            sweep_full: 7,
            federated: false,
            intra_jobs: false,
            run: f8_reconfig::run,
        },
        Experiment {
            id: "f9",
            title: "Figure 9: task queueing-delay distribution vs load",
            sweep_quick: 4,
            sweep_full: 4,
            federated: false,
            intra_jobs: false,
            run: f9_queueing::run,
        },
        Experiment {
            id: "t2",
            title: "Table II: control-plane cost breakdown by phase",
            sweep_quick: 1,
            sweep_full: 1,
            federated: false,
            intra_jobs: false,
            run: t2_breakdown::run,
        },
        Experiment {
            id: "f10",
            title: "Figure 10: scale-out, federated shards vs capacity multiplier",
            sweep_quick: 4,
            sweep_full: 8,
            federated: true,
            intra_jobs: true,
            run: f10_scaleout::run,
        },
        Experiment {
            id: "f11",
            title: "Figure 11: heartbeat/background load vs inventory size",
            sweep_quick: 2,
            sweep_full: 4,
            federated: false,
            intra_jobs: false,
            run: f11_heartbeat::run,
        },
        Experiment {
            id: "f12",
            title: "Figure 12: goodput and availability vs injected fault rate",
            sweep_quick: 4,
            sweep_full: 8,
            federated: false,
            intra_jobs: false,
            run: f12_availability::run,
        },
        Experiment {
            id: "t3",
            title: "Table III: retry/abort/rollback breakdown under faults",
            sweep_quick: 1,
            sweep_full: 1,
            federated: false,
            intra_jobs: false,
            run: t3_faults::run,
        },
        Experiment {
            id: "f13",
            title: "Figure 13: federated conflicts/goodput vs shards and staleness",
            sweep_quick: 6,
            sweep_full: 9,
            federated: true,
            intra_jobs: true,
            run: f13_conflicts::run,
        },
        Experiment {
            id: "f14",
            title: "Figure 14: cross-shard rebalance cost vs inventory skew",
            sweep_quick: 3,
            sweep_full: 5,
            federated: true,
            // Rebalance schedules cross-shard migrations, which force
            // the sequential executor regardless of --intra-jobs.
            intra_jobs: false,
            run: f14_rebalance::run,
        },
    ]
}

/// Formats a float with scale-appropriate precision for table cells.
pub(crate) fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_ordered() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn fmt_scales() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.123");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1234.6), "1235");
    }
}
