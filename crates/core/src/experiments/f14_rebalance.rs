//! F14 — cross-shard rebalance cost vs inventory skew.
//!
//! When one control-plane shard accumulates far more inventory than its
//! peers (hot tenant, failed shard absorbed elsewhere), the federation
//! rebalances by migrating VMs: evacuate on the source shard, hand the
//! placement through the shared store, re-admit on the destination. Each
//! move costs real control-plane work on both shards — destroy on one,
//! clone on the other — plus the handoff latency, so the time to drain
//! the skew grows with how lopsided the federation started.
//!
//! Expected shape: zero cost at zero skew, then total rebalance time and
//! moves both rising monotonically with skew; per-migration latency stays
//! roughly flat (the protocol cost), while makespan grows with the number
//! of moves contending for the same source shard.

use cpsim_des::{SimDuration, SimTime};
use cpsim_federation::{FedScenario, FedTopology};
use cpsim_metrics::Table;

use crate::experiments::loops::sweep;
use crate::experiments::{fmt, ExpOptions};

const SHARDS: usize = 4;
/// Balanced share of the initial population per shard.
const BALANCED: u32 = 12;
/// Total pre-installed VMs across the federation.
const TOTAL: u32 = BALANCED * SHARDS as u32;

/// Roomy 4-shard topology: rebalance cost, not capacity contention, is
/// the object of study.
fn rebalance_topology(skew: f64) -> FedTopology {
    // Skew concentrates the population on shard 0: `skew = 0` is
    // balanced, `skew = 1` gives shard 0 everything beyond its peers'
    // empty racks.
    let extra = (skew * (TOTAL - BALANCED) as f64).round() as u32;
    let shard0 = BALANCED + extra.min(TOTAL - BALANCED);
    let rest = TOTAL - shard0;
    let mut initial = vec![shard0];
    for s in 1..SHARDS {
        let peers = (SHARDS - 1) as u32;
        let base = rest / peers;
        let bump = u32::from((s as u32 - 1) < rest % peers);
        initial.push(base + bump);
    }
    FedTopology {
        shards: SHARDS,
        home_hosts_per_shard: 4,
        home_ds_per_shard: 2,
        home_ds_capacity_gb: 512.0,
        shared_hosts: 2,
        shared_ds: 1,
        shared_ds_capacity_gb: 512.0,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("fed-template".into(), 2, 2_048, 20.0)],
        initial_vms_per_shard: initial,
        initial_vm_disk_gb: 4.0,
    }
}

/// Runs F14.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let skews: Vec<f64> = opts.pick(vec![0.0, 0.25, 0.5, 0.75, 1.0], vec![0.0, 0.5, 1.0]);

    let mut table = Table::new(
        "F14 — Cross-shard rebalance: drain time vs inventory skew (4 shards)",
        &[
            "skew",
            "shard-0 VMs",
            "moved",
            "rebalance s",
            "mean migration s",
            "p99 migration s",
            "failed",
        ],
    );
    let results = sweep(opts, &skews, |&skew| {
        let topo = rebalance_topology(skew);
        let shard0 = topo.initial_vms_per_shard[0];
        let moves = shard0 - BALANCED;
        let mut sim = FedScenario::new(topo)
            .seed(opts.seed)
            .staleness(SimDuration::from_secs(10))
            .build();
        // Honored until the first migration is scheduled below pins the
        // run sequential; kept so F14 exercises the knob's fallback path.
        sim.set_intra_jobs(opts.intra_jobs);
        let start = SimTime::from_secs(1);
        let victims: Vec<_> = sim.initial_vms(0)[..moves as usize].to_vec();
        for (i, vm) in victims.into_iter().enumerate() {
            // Round-robin the drained VMs over the under-full peers.
            let dst = 1 + i % (SHARDS - 1);
            sim.schedule_migration(start + SimDuration::from_micros(i as u64), 0, dst, vm);
        }
        let cap = SimTime::from_hours(4);
        while sim.migrations_in_flight() > 0 && sim.now() < cap {
            sim.run_for(SimDuration::from_secs(60));
        }
        sim.check_store_invariants().expect("ledger conserved");
        let reports = sim.migration_reports();
        let mut durations: Vec<f64> = reports
            .iter()
            .map(|r| r.completed.since(r.started).as_secs_f64())
            .collect();
        durations.sort_by(|a, b| a.total_cmp(b));
        let mean = if durations.is_empty() {
            0.0
        } else {
            durations.iter().sum::<f64>() / durations.len() as f64
        };
        let p99 = durations
            .last()
            .map(|_| durations[((durations.len() - 1) as f64 * 0.99).round() as usize])
            .unwrap_or(0.0);
        let makespan = reports
            .iter()
            .map(|r| r.completed)
            .max()
            .map(|t| t.since(start).as_secs_f64())
            .unwrap_or(0.0);
        let failed = reports.iter().filter(|r| !r.success).count();
        (shard0, moves, makespan, mean, p99, failed)
    });
    for (&skew, &(shard0, moves, makespan, mean, p99, failed)) in skews.iter().zip(&results) {
        table.row([
            fmt(skew),
            shard0.to_string(),
            moves.to_string(),
            fmt(makespan),
            fmt(mean),
            fmt(p99),
            failed.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f14_rebalance_cost_rises_with_skew() {
        let tables = run(&ExpOptions::quick());
        let t = &tables[0];
        let cell = |row: usize, col: usize| -> f64 { t.rows()[row][col].parse().unwrap() };
        // Balanced federation: nothing to move, nothing paid.
        assert_eq!(cell(0, 2), 0.0);
        assert_eq!(cell(0, 3), 0.0);
        // Full skew drains every surplus VM off shard 0.
        let last = t.len() - 1;
        assert_eq!(cell(last, 2), (TOTAL - BALANCED) as f64);
        // Drain time grows monotonically with skew, and no move fails.
        for row in 1..t.len() {
            assert!(
                cell(row, 3) >= cell(row - 1, 3),
                "makespan must not shrink with skew: row {row}"
            );
            assert!(cell(row, 3) > 0.0, "skewed run must pay drain time");
            assert_eq!(cell(row, 6), 0.0, "no migration may fail: row {row}");
        }
    }
}
