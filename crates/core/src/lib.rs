//! # cpsim — a management control-plane simulator for virtualized clouds
//!
//! `cpsim` reproduces the system studied in *"Revisiting the management
//! control plane in virtualized cloud computing infrastructure"*
//! (Soundararajan & Spracklen, IISWC 2013): a centralized management
//! server orchestrating a virtualized datacenter underneath a self-service
//! cloud, with a workload generator calibrated to the two production
//! clouds the paper profiled.
//!
//! The headline phenomenon the simulator reproduces: with
//! bandwidth-conserving provisioning (linked clones), the bytes-heavy data
//! plane almost vanishes from the provisioning path, and the **management
//! control plane** — management-server CPU, the inventory database,
//! admission limits, host agents — becomes the factor that limits cloud
//! deployment rates.
//!
//! ## Layering
//!
//! ```text
//!   cpsim (this crate)         Scenario builder, CloudSim driver, experiments
//!   ├─ cpsim-workload          arrivals, op mixes, profiles, traces, analysis
//!   ├─ cpsim-cloud             orgs/vApps/leases, request → op-DAG translation
//!   ├─ cpsim-mgmt              the control plane: orchestration, DB, admission
//!   ├─ cpsim-hostagent         per-host agents, heartbeats
//!   ├─ cpsim-storage           VMDK chains, linked clones, copy engine
//!   ├─ cpsim-inventory         hosts / VMs / datastores, capacity accounting
//!   ├─ cpsim-metrics           histograms, summaries, tables
//!   └─ cpsim-des               deterministic event kernel
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use cpsim::{CloudSim, Scenario};
//! use cpsim_des::{SimDuration, SimTime};
//! use cpsim_workload::cloud_a;
//!
//! // Simulate 6 hours of the "Cloud A" profile.
//! let mut sim: CloudSim = Scenario::from_profile(&cloud_a()).seed(42).build();
//! sim.run_until(SimTime::from_hours(6));
//!
//! let analysis = sim.analyze_trace();
//! assert!(analysis.total_ops > 0);
//! // Self-service clouds are provisioning-dominated.
//! assert!(analysis.provisioning_fraction() > 0.2);
//! ```

pub mod driver;
pub mod exec;
pub mod experiments;
pub mod scenario;

pub use driver::{CloudSim, CoreEvent};
pub use scenario::Scenario;

// Re-export the workspace layers under stable names so downstream users
// need only depend on `cpsim`.
pub use cpsim_cloud as cloud;
pub use cpsim_des as des;
pub use cpsim_faults as faults;
pub use cpsim_hostagent as hostagent;
pub use cpsim_inventory as inventory;
pub use cpsim_metrics as metrics;
pub use cpsim_mgmt as mgmt;
pub use cpsim_storage as storage;
pub use cpsim_workload as workload;
