//! The [`CloudSim`] driver: wires plane, director and workload generator
//! onto the discrete-event kernel.

use cpsim_cloud::{CloudDirector, CloudOut, CloudReport, CloudRequest};
use cpsim_des::{EventQueue, Model, SimDuration, SimTime, Simulation};
use cpsim_faults::FaultEvent;
use cpsim_inventory::{DatastoreId, HostId, OrgId, VappId, VmId};
use cpsim_mgmt::{ControlPlane, Emit, MgmtEvent, OpKind, Operation, TaskReport};
use cpsim_workload::{GeneratedRequest, ReplayPlan, RequestGenerator, TraceAnalysis, TraceLog};

/// Top-level simulation events.
#[derive(Debug)]
pub enum CoreEvent {
    /// A management-plane event.
    Mgmt(MgmtEvent),
    /// A vApp lease expired.
    Lease(VappId),
    /// The workload generator fires.
    Arrival,
    /// An externally-scheduled cloud request.
    Request(CloudRequest),
    /// An externally-scheduled raw management operation.
    Op(OpKind),
}

/// The simulation state driven by the kernel.
pub struct CloudModel {
    plane: ControlPlane,
    director: CloudDirector,
    generator: Option<RequestGenerator>,
    arrivals_enabled: bool,
    collect_trace: bool,
    trace: TraceLog,
    task_reports_kept: Vec<TaskReport>,
    keep_task_reports: bool,
    cloud_reports: Vec<CloudReport>,
    hosts: Vec<HostId>,
    datastores: Vec<DatastoreId>,
    templates: Vec<VmId>,
    org: OrgId,
    /// Reused emission buffer: the plane appends into this on every
    /// dispatched event instead of allocating a fresh `Vec` per event.
    scratch: Vec<Emit>,
    /// Pooled routing stack reused across events (see `route_stack`).
    route_buf: Vec<CloudOut>,
}

impl CloudModel {
    /// Routes one emission: timers go onto the kernel queue, task reports
    /// go to the director, whose output the caller must route in turn.
    fn consume_emit(
        &mut self,
        now: SimTime,
        e: Emit,
        queue: &mut EventQueue<CoreEvent>,
    ) -> Option<CloudOut> {
        match e {
            Emit::At(t, ev) => {
                queue.schedule(t, CoreEvent::Mgmt(ev));
                None
            }
            Emit::Done(_, r) | Emit::Failed(_, r) => {
                if self.collect_trace {
                    self.trace.push_task(&r);
                }
                if self.keep_task_reports {
                    self.task_reports_kept.push(r.clone());
                }
                Some(self.director.on_task_report(now, &r, &mut self.plane))
            }
        }
    }

    fn route_stack(
        &mut self,
        now: SimTime,
        stack: &mut Vec<CloudOut>,
        queue: &mut EventQueue<CoreEvent>,
    ) {
        while let Some(o) = stack.pop() {
            self.cloud_reports.extend(o.reports);
            for (t, vapp) in o.leases {
                queue.schedule(t, CoreEvent::Lease(vapp));
            }
            for e in o.mgmt {
                if let Some(child) = self.consume_emit(now, e, queue) {
                    stack.push(child);
                }
            }
        }
    }

    fn route(&mut self, now: SimTime, out: CloudOut, queue: &mut EventQueue<CoreEvent>) {
        let mut stack = std::mem::take(&mut self.route_buf);
        stack.push(out);
        self.route_stack(now, &mut stack, queue);
        self.route_buf = stack;
    }

    /// Routes the plane emissions accumulated in `self.scratch`, leaving
    /// the (emptied) buffer in place for the next event.
    fn route_scratch(&mut self, now: SimTime, queue: &mut EventQueue<CoreEvent>) {
        let mut emits = std::mem::take(&mut self.scratch);
        let mut stack = std::mem::take(&mut self.route_buf);
        for e in emits.drain(..) {
            if let Some(child) = self.consume_emit(now, e, queue) {
                stack.push(child);
            }
        }
        self.scratch = emits;
        self.route_stack(now, &mut stack, queue);
        self.route_buf = stack;
    }

    fn submit_cloud(&mut self, now: SimTime, req: CloudRequest, queue: &mut EventQueue<CoreEvent>) {
        let (_, out) = self.director.submit(now, req, &mut self.plane);
        self.route(now, out, queue);
    }

    fn submit_op(&mut self, now: SimTime, op: OpKind, queue: &mut EventQueue<CoreEvent>) {
        debug_assert!(self.scratch.is_empty());
        let mut emits = std::mem::take(&mut self.scratch);
        self.plane.submit(now, Operation::new(op), &mut emits);
        self.scratch = emits;
        self.route_scratch(now, queue);
    }
}

impl Model for CloudModel {
    type Event = CoreEvent;

    fn handle(&mut self, now: SimTime, event: CoreEvent, queue: &mut EventQueue<CoreEvent>) {
        match event {
            CoreEvent::Mgmt(ev) => {
                debug_assert!(self.scratch.is_empty());
                let mut emits = std::mem::take(&mut self.scratch);
                self.plane.handle(now, ev, &mut emits);
                self.scratch = emits;
                self.route_scratch(now, queue);
            }
            CoreEvent::Lease(vapp) => {
                let out = self.director.on_lease_expiry(now, vapp, &mut self.plane);
                self.route(now, out, queue);
            }
            CoreEvent::Arrival => {
                if !self.arrivals_enabled {
                    return;
                }
                let request = self.generator.as_mut().and_then(|g| {
                    // Split borrows: generate needs &director and &plane.
                    let req = g.generate(now, &self.director, &self.plane);
                    let next = g.next_arrival(now);
                    if next < SimTime::MAX {
                        queue.schedule(next, CoreEvent::Arrival);
                    }
                    req
                });
                match request {
                    Some(GeneratedRequest::Cloud(req)) => self.submit_cloud(now, req, queue),
                    Some(GeneratedRequest::Op(op)) => self.submit_op(now, op, queue),
                    None => {}
                }
            }
            CoreEvent::Request(req) => self.submit_cloud(now, req, queue),
            CoreEvent::Op(op) => self.submit_op(now, op, queue),
        }
    }
}

/// A runnable cloud simulation.
///
/// Construct via [`Scenario`](crate::Scenario); drive with
/// [`run_until`](CloudSim::run_until); inspect through the accessors.
pub struct CloudSim {
    sim: Simulation<CloudModel>,
}

impl CloudSim {
    /// Internal constructor used by [`Scenario`](crate::Scenario).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        plane: ControlPlane,
        director: CloudDirector,
        generator: Option<RequestGenerator>,
        hosts: Vec<HostId>,
        datastores: Vec<DatastoreId>,
        templates: Vec<VmId>,
        org: OrgId,
        collect_trace: bool,
        fault_events: Vec<FaultEvent>,
    ) -> Self {
        let init = plane.init_events();
        let has_generator = generator.is_some();
        let model = CloudModel {
            plane,
            director,
            generator,
            arrivals_enabled: true,
            collect_trace,
            trace: TraceLog::new(),
            task_reports_kept: Vec::new(),
            keep_task_reports: false,
            cloud_reports: Vec::new(),
            hosts,
            datastores,
            templates,
            org,
            scratch: Vec::new(),
            route_buf: Vec::new(),
        };
        let mut sim = Simulation::new(model);
        for e in init {
            if let Emit::At(t, ev) = e {
                sim.schedule(t, CoreEvent::Mgmt(ev));
            }
        }
        for e in fault_events {
            sim.schedule(e.at, CoreEvent::Mgmt(MgmtEvent::Fault(e.kind)));
        }
        if has_generator {
            let first = {
                let m = sim.model_mut();
                m.generator
                    .as_mut()
                    .map(|g| g.next_arrival(SimTime::ZERO))
                    .unwrap_or(SimTime::MAX)
            };
            if first < SimTime::MAX {
                sim.schedule(first, CoreEvent::Arrival);
            }
        }
        CloudSim { sim }
    }

    /// Runs until `horizon` (events after it remain queued).
    pub fn run_until(&mut self, horizon: SimTime) {
        self.sim.run_until(horizon);
    }

    /// Runs for `span` past the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let horizon = self.now() + span;
        self.run_until(horizon);
    }

    /// Stops generating new workload arrivals (in-flight work continues).
    pub fn stop_arrivals(&mut self) {
        self.sim.model_mut().arrivals_enabled = false;
    }

    /// Keep full task reports in memory (off by default; traces are always
    /// collected unless disabled in the scenario).
    pub fn keep_task_reports(&mut self, on: bool) {
        self.sim.model_mut().keep_task_reports = on;
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Schedules a cloud request at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_request(&mut self, at: SimTime, req: CloudRequest) {
        self.sim.schedule(at, CoreEvent::Request(req));
    }

    /// Schedules a raw management operation at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_op(&mut self, at: SimTime, op: OpKind) {
        self.sim.schedule(at, CoreEvent::Op(op));
    }

    /// The control plane.
    pub fn plane(&self) -> &ControlPlane {
        &self.sim.model().plane
    }

    /// The cloud director.
    pub fn director(&self) -> &CloudDirector {
        &self.sim.model().director
    }

    /// Whether a workload generator is attached.
    pub fn has_generator(&self) -> bool {
        self.sim.model().generator.is_some()
    }

    /// The workload generator, if any.
    pub fn generator(&self) -> Option<&RequestGenerator> {
        self.sim.model().generator.as_ref()
    }

    /// The operation trace collected so far.
    pub fn trace(&self) -> &TraceLog {
        &self.sim.model().trace
    }

    /// Full task reports (only if `keep_task_reports` was enabled).
    pub fn task_reports(&self) -> &[TaskReport] {
        &self.sim.model().task_reports_kept
    }

    /// Completed cloud requests.
    pub fn cloud_reports(&self) -> &[CloudReport] {
        &self.sim.model().cloud_reports
    }

    /// Hosts created by the scenario, in creation order.
    pub fn hosts(&self) -> &[HostId] {
        &self.sim.model().hosts
    }

    /// Datastores created by the scenario, in creation order.
    pub fn datastores(&self) -> &[DatastoreId] {
        &self.sim.model().datastores
    }

    /// Catalog templates, in creation order.
    pub fn templates(&self) -> &[VmId] {
        &self.sim.model().templates
    }

    /// The default org requests are attributed to.
    pub fn org(&self) -> OrgId {
        self.sim.model().org
    }

    /// Setup-time helper exposed for experiments: installs a powered-off
    /// VM with a thick base disk at an exact location (no simulated cost).
    ///
    /// # Errors
    ///
    /// Fails if the placement is invalid or capacity is lacking.
    pub fn install_vm_for_experiments(
        &mut self,
        name: &str,
        spec: cpsim_inventory::VmSpec,
        host: HostId,
        ds: DatastoreId,
    ) -> Result<VmId, String> {
        self.sim
            .model_mut()
            .plane
            .install_vm(name, spec, host, ds, false)
    }

    /// Runs the characterization pass over the collected trace.
    pub fn analyze_trace(&self) -> TraceAnalysis {
        TraceAnalysis::from_log(self.trace())
    }

    /// Schedules every provisioning event of `plan` as a single-VM
    /// instantiate request from `template`, using each event's recorded
    /// lifetime as the lease. Events already in the past are skipped;
    /// returns the number scheduled.
    pub fn schedule_replay(&mut self, plan: &ReplayPlan, template: VmId) -> usize {
        let org = self.org();
        let now = self.now();
        let mut scheduled = 0;
        for e in plan.events() {
            if e.at < now {
                continue;
            }
            self.schedule_request(
                e.at,
                CloudRequest::InstantiateVapp {
                    org,
                    template,
                    count: 1,
                    mode: Some(e.mode),
                    lease: e.lifetime,
                },
            );
            scheduled += 1;
        }
        scheduled
    }
}

impl std::fmt::Debug for CloudSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudSim")
            .field("now", &self.now())
            .field("events", &self.events_processed())
            .field("trace_len", &self.trace().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use cpsim_workload::{cloud_a, cloud_b, enterprise};

    #[test]
    fn cloud_a_runs_and_provisions() {
        let mut sim = Scenario::from_profile(&cloud_a()).seed(7).build();
        sim.run_until(SimTime::from_hours(8));
        let stats = sim.director().stats();
        assert!(stats.vms_provisioned() > 20, "{}", stats.vms_provisioned());
        assert!(sim.trace().len() > 100);
        // Lease expiries should already be recycling short-lived vApps.
        assert!(stats.lease_expiries() > 0);
        assert!(stats.vms_destroyed() > 0);
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let run = |seed| {
            let mut sim = Scenario::from_profile(&cloud_a()).seed(seed).build();
            sim.run_until(SimTime::from_hours(4));
            (
                sim.events_processed(),
                sim.trace().len(),
                sim.director().stats().vms_provisioned(),
            )
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn stop_arrivals_quiesces() {
        let mut sim = Scenario::from_profile(&cloud_a()).seed(5).build();
        sim.run_until(SimTime::from_hours(2));
        sim.stop_arrivals();
        let provisioned_before = sim.director().stats().submitted();
        sim.run_until(SimTime::from_hours(12));
        // A lease-driven delete may still fire, but no *new* instantiates
        // arrive after stopping: submissions grow only via leases.
        let after = sim.director().stats().submitted();
        assert!(after >= provisioned_before);
        assert_eq!(sim.plane().tasks_in_flight(), 0, "work drained");
    }

    #[test]
    fn enterprise_mix_is_power_dominated() {
        let mut sim = Scenario::from_profile(&enterprise()).seed(9).build();
        sim.run_until(SimTime::from_hours(12));
        let a = sim.analyze_trace();
        let power = a.mix_fraction("power-on") + a.mix_fraction("power-off");
        assert!(
            power > a.provisioning_fraction(),
            "power {power:.2} vs provisioning {:.2}",
            a.provisioning_fraction()
        );
    }

    #[test]
    fn cloud_b_sees_shadow_copies() {
        let mut sim = Scenario::from_profile(&cloud_b()).seed(11).build();
        sim.keep_task_reports(true);
        sim.run_until(SimTime::from_hours(10));
        // Templates start resident on one datastore only; clones landing
        // elsewhere pay shadow copies, visible as data-heavy linked clones.
        let reports = sim.task_reports();
        let shadowed = reports
            .iter()
            .filter(|r| r.kind == "clone-linked" && r.data_secs > 30.0)
            .count();
        assert!(shadowed > 0, "expected at least one shadow copy");
    }

    #[test]
    fn scheduled_requests_and_ops_run() {
        let mut sim = Scenario::bare(cloud_a().topology).seed(2).build();
        let template = sim.templates()[0];
        let org = sim.org();
        sim.schedule_request(
            SimTime::from_secs(10),
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 2,
                mode: None,
                lease: None,
            },
        );
        sim.schedule_op(SimTime::from_secs(10), OpKind::Snapshot { vm: template });
        sim.run_until(SimTime::from_hours(2));
        assert_eq!(sim.cloud_reports().len(), 1);
        assert!(sim.cloud_reports()[0].is_clean());
        // The snapshot on a template is legal (templates have disks).
        let a = sim.analyze_trace();
        assert_eq!(a.op_mix["snapshot"], 1);
        assert_eq!(a.op_mix["clone-linked"], 2);
    }
}
