//! Parallel sweep execution.
//!
//! Every sweep point of an experiment — one (clone-mode × arrival-rate ×
//! replication) cell — is an independent [`Simulation`](cpsim_des::Simulation)
//! with its own seed substream, so sweeps are embarrassingly parallel. This
//! module provides the small job-runner the experiments submit points to: a
//! work-stealing pool built on `std::thread::scope` (no external
//! dependencies; the workspace builds offline).
//!
//! # Determinism
//!
//! Parallelism must never change results, only wall-clock. Two properties
//! guarantee byte-identical output tables at any job count:
//!
//! 1. each sweep point derives all randomness from its own point inputs
//!    (seed, parameters) — nothing is shared between points; and
//! 2. results are written into a slot vector indexed by the point's
//!    position and returned **in submission order**, regardless of which
//!    worker finished first.
//!
//! The scheduling itself (an atomic next-point counter, i.e. work
//! stealing at point granularity) only decides *who* runs a point, never
//! *what* the point computes. This is asserted end-to-end by the
//! `jobs_determinism` integration test.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use when the caller asks for "all cores".
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `points` on up to `jobs` worker threads, returning the
/// results in point order.
///
/// `jobs <= 1` (or fewer than two points) degenerates to a plain
/// sequential loop on the calling thread — byte-for-byte the pre-executor
/// behavior, with no threads spawned. Larger sweeps are distributed by
/// work stealing: each worker repeatedly claims the next unclaimed point,
/// so a slow point (e.g. a saturated full-clone run) never stalls the
/// points behind it.
///
/// # Panics
///
/// Panics propagate: if any point's closure panics, the panic is
/// re-raised on the calling thread once the scope joins.
pub fn parallel_map<P, R, F>(jobs: usize, points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let workers = jobs.min(points.len());
    if workers <= 1 {
        return points.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = points.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let r = f(point);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or_else(|| unreachable!("point {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_point_order() {
        let points: Vec<u64> = (0..100).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let out = parallel_map(jobs, &points, |&p| p * p);
            assert_eq!(out, points.iter().map(|p| p * p).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_work_is_stolen_not_blocked() {
        // Front-loaded heavy points: a static split would serialize them
        // on one worker; stealing spreads them. Only correctness is
        // asserted here (timing is covered by the benches).
        let points: Vec<u64> = (0..40).map(|i| if i < 4 { 200_000 } else { 10 }).collect();
        let out = parallel_map(4, &points, |&n| (0..n).sum::<u64>());
        let expected: Vec<u64> = points.iter().map(|&n| (0..n).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_single_point_sweeps() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |&p| p).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |&p| p + 1), vec![8]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(2, &[1u32, 2, 3, 4], |&p| {
                assert!(p != 3, "boom");
                p
            })
        });
        assert!(result.is_err());
    }
}
