//! Behavioral tests of the control plane: whole operations driven through
//! a miniature event loop to completion.

use cpsim_des::{EventQueue, SimTime, Streams};
use cpsim_inventory::{DatastoreId, DatastoreSpec, HostId, HostSpec, PowerState, VmId, VmSpec};
use cpsim_mgmt::{
    AdmissionLimits, CloneMode, ControlPlane, ControlPlaneConfig, Emit, MgmtEvent, OpKind,
    TaskReport,
};

/// Drives the plane until the event queue drains or `horizon` passes.
/// Returns completed reports in completion order.
fn drive(plane: &mut ControlPlane, seed_emits: Vec<Emit>, horizon: SimTime) -> Vec<TaskReport> {
    let mut queue: EventQueue<MgmtEvent> = EventQueue::new();
    let mut reports = Vec::new();
    let sink =
        |emits: Vec<Emit>, queue: &mut EventQueue<MgmtEvent>, reports: &mut Vec<TaskReport>| {
            for e in emits {
                match e {
                    Emit::At(t, ev) => queue.schedule(t, ev),
                    Emit::Done(_, r) | Emit::Failed(_, r) => reports.push(r),
                }
            }
        };
    sink(seed_emits, &mut queue, &mut reports);
    let mut guard = 0u64;
    while let Some((t, ev)) = queue.pop() {
        if t > horizon {
            break;
        }
        guard += 1;
        assert!(guard < 5_000_000, "event storm: runaway simulation");
        let emits = plane.handle_collect(t, ev);
        sink(emits, &mut queue, &mut reports);
    }
    reports
}

/// A small two-host, two-datastore cloud with one 20 GiB template.
struct Rig {
    plane: ControlPlane,
    hosts: Vec<HostId>,
    datastores: Vec<DatastoreId>,
    template: VmId,
}

fn rig_with(cfg: ControlPlaneConfig) -> Rig {
    let mut plane = ControlPlane::new(cfg, Streams::new(42));
    let ds0 = plane.add_datastore(DatastoreSpec::new("ds0", 2048.0, 100.0));
    let ds1 = plane.add_datastore(DatastoreSpec::new("ds1", 2048.0, 100.0));
    let h0 = plane.add_host(HostSpec::new("h0", 48_000, 262_144));
    let h1 = plane.add_host(HostSpec::new("h1", 48_000, 262_144));
    for &h in &[h0, h1] {
        for &d in &[ds0, ds1] {
            plane.connect(h, d).unwrap();
        }
    }
    let template = plane
        .install_template("tmpl", VmSpec::new(2, 2_048, 20.0), h0, ds0)
        .unwrap();
    Rig {
        plane,
        hosts: vec![h0, h1],
        datastores: vec![ds0, ds1],
        template,
    }
}

fn rig() -> Rig {
    let cfg = ControlPlaneConfig {
        heartbeat: cpsim_hostagent::HeartbeatSpec::disabled(),
        ..Default::default()
    };
    rig_with(cfg)
}

const FAR: SimTime = SimTime::from_hours(24);

#[test]
fn full_clone_is_data_bound_linked_clone_is_control_bound() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Full,
        },
    );
    let full = drive(&mut r.plane, emits, FAR);
    assert_eq!(full.len(), 1);
    let full = &full[0];
    assert!(full.is_success(), "{:?}", full.error);
    // 20 GiB at 100 MiB/s = ~205 s of copy.
    assert!(full.data_secs > 150.0, "data {:.1}s", full.data_secs);
    assert!(full.data_secs > 10.0 * full.control_secs());

    let emits = r.plane.submit_collect(
        SimTime::ZERO + cpsim_des::SimDuration::from_hours(1),
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Linked,
        },
    );
    let linked = drive(&mut r.plane, emits, FAR);
    assert_eq!(linked.len(), 1);
    let linked = &linked[0];
    assert!(linked.is_success(), "{:?}", linked.error);
    assert!(
        linked.data_secs < 5.0,
        "linked clone moved real data: {:.1}s",
        linked.data_secs
    );
    assert!(
        linked.latency.as_secs_f64() < full.latency.as_secs_f64() / 5.0,
        "linked {:.1}s vs full {:.1}s",
        linked.latency.as_secs_f64(),
        full.latency.as_secs_f64()
    );
}

#[test]
fn linked_clone_on_nonresident_datastore_makes_shadow_then_reuses_it() {
    let mut r = rig();
    // Fill ds0 so placement must use ds1, where the template is not
    // resident.
    let ds0 = r.datastores[0];
    if let Some(d) = r.plane.inventory().datastore(ds0) {
        assert!(d.free_gb() > 0.0);
    }
    // Occupy ds0 almost fully so even a 1 GiB linked-clone delta cannot
    // fit there and placement must fall through to ds1.
    for filler_gb in [500.0, 500.0, 500.0, 500.0, 27.6] {
        let h = r.hosts[0];
        r.plane
            .install_template("filler", VmSpec::new(1, 512, filler_gb), h, ds0)
            .unwrap();
    }
    assert!(r.plane.inventory().datastore(ds0).unwrap().free_gb() < 1.0);

    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Linked,
        },
    );
    let first = drive(&mut r.plane, emits, FAR);
    assert!(first[0].is_success(), "{:?}", first[0].error);
    assert!(
        first[0].data_secs > 100.0,
        "first linked clone on ds1 should pay a shadow copy, got {:.1}s",
        first[0].data_secs
    );
    let ds1 = r.datastores[1];
    assert!(r.plane.residency().is_resident(r.template, ds1));

    // Second linked clone on ds1 reuses the shadow: near-zero data.
    let emits = r.plane.submit_collect(
        SimTime::from_hours(1),
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Linked,
        },
    );
    let second = drive(&mut r.plane, emits, FAR);
    assert!(second[0].is_success());
    assert!(
        second[0].data_secs < 5.0,
        "second linked clone should reuse the shadow, got {:.1}s",
        second[0].data_secs
    );
}

#[test]
fn instant_clone_lands_on_parent_host_with_no_data() {
    let mut r = rig();
    let src_host = r.plane.inventory().vm(r.template).unwrap().host;
    let src_ds = r.plane.inventory().vm(r.template).unwrap().datastore;
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Instant,
        },
    );
    let reports = drive(&mut r.plane, emits, FAR);
    let rep = &reports[0];
    assert!(rep.is_success(), "{:?}", rep.error);
    assert_eq!(rep.kind, "clone-instant");
    assert_eq!(rep.data_secs, 0.0, "instant clones move no data");
    let vm = rep.produced_vm.unwrap();
    let v = r.plane.inventory().vm(vm).unwrap();
    assert_eq!(v.host, src_host, "fork lands on the parent's host");
    assert_eq!(v.datastore, src_ds);
    // The fork's disk chains off the parent's disk.
    let top = *v.disks.last().unwrap();
    assert_eq!(r.plane.storage().chain_depth(top).unwrap(), 2);
    // Destroying the fork leaves the parent's disk intact.
    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(1), OpKind::DestroyVm { vm });
    let del = drive(&mut r.plane, emits, FAR);
    assert!(del[0].is_success());
    r.plane
        .storage()
        .check_invariants(r.plane.inventory())
        .unwrap();
    assert!(r.plane.inventory().vm(r.template).is_some());
}

#[test]
fn seed_template_makes_remote_linked_clones_cheap() {
    let mut r = rig();
    let ds1 = r.datastores[1];
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::SeedTemplate {
            template: r.template,
            dst: ds1,
        },
    );
    let seeded = drive(&mut r.plane, emits, FAR);
    assert!(seeded[0].is_success(), "{:?}", seeded[0].error);
    assert!(r.plane.residency().is_resident(r.template, ds1));
    // Seeding again fails cleanly.
    let emits = r.plane.submit_collect(
        SimTime::from_hours(2),
        OpKind::SeedTemplate {
            template: r.template,
            dst: ds1,
        },
    );
    let again = drive(&mut r.plane, emits, FAR);
    assert!(!again[0].is_success());
}

#[test]
fn power_cycle_updates_inventory_and_reservations() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Linked,
        },
    );
    let reports = drive(&mut r.plane, emits, FAR);
    let vm = reports[0].produced_vm.expect("clone produces a vm");

    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(1), OpKind::PowerOn { vm });
    let on = drive(&mut r.plane, emits, FAR);
    assert!(on[0].is_success(), "{:?}", on[0].error);
    assert_eq!(r.plane.inventory().vm(vm).unwrap().power, PowerState::On);
    let host = r.plane.inventory().vm(vm).unwrap().host;
    assert!(r.plane.inventory().host(host).unwrap().mem_used_mb >= 2_048);

    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(2), OpKind::PowerOff { vm });
    let off = drive(&mut r.plane, emits, FAR);
    assert!(off[0].is_success());
    assert_eq!(r.plane.inventory().vm(vm).unwrap().power, PowerState::Off);
    assert_eq!(r.plane.inventory().host(host).unwrap().mem_used_mb, 0);
}

#[test]
fn destroy_powered_on_vm_fails_and_destroy_off_vm_releases_storage() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Linked,
        },
    );
    let vm = drive(&mut r.plane, emits, FAR)[0].produced_vm.unwrap();
    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(1), OpKind::PowerOn { vm });
    drive(&mut r.plane, emits, FAR);

    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(2), OpKind::DestroyVm { vm });
    let fail = drive(&mut r.plane, emits, FAR);
    assert!(!fail[0].is_success());

    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(3), OpKind::PowerOff { vm });
    drive(&mut r.plane, emits, FAR);
    let before = r.plane.inventory().counts().vms;
    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(4), OpKind::DestroyVm { vm });
    let ok = drive(&mut r.plane, emits, FAR);
    assert!(ok[0].is_success(), "{:?}", ok[0].error);
    assert_eq!(r.plane.inventory().counts().vms, before - 1);
    assert!(r.plane.inventory().vm(vm).is_none());
}

#[test]
fn per_host_limit_caps_concurrency_but_everything_completes() {
    let mut cfg = ControlPlaneConfig {
        heartbeat: cpsim_hostagent::HeartbeatSpec::disabled(),
        ..Default::default()
    };
    cfg.limits = AdmissionLimits {
        global: 96,
        per_host: 2,
        per_datastore: 16,
    };
    let mut r = rig_with(cfg);
    // 12 reconfigure ops on VMs all registered to host 0.
    let mut vms = Vec::new();
    for i in 0..12 {
        let vm = {
            let plane = &mut r.plane;
            let inv_host = r.hosts[0];
            let ds = r.datastores[0];
            // install_template is a setup helper; build plain VMs instead
            // through the clone path to keep host assignment predictable.
            let _ = (i, inv_host, ds);
            plane
                .install_template(
                    format!("t{i}").as_str(),
                    VmSpec::new(1, 512, 1.0),
                    inv_host,
                    ds,
                )
                .unwrap()
        };
        vms.push(vm);
    }
    let mut emits = Vec::new();
    for &vm in &vms {
        emits.extend(
            r.plane
                .submit_collect(SimTime::ZERO, OpKind::Reconfigure { vm }),
        );
    }
    let reports = drive(&mut r.plane, emits, FAR);
    assert_eq!(reports.len(), 12);
    assert!(reports.iter().all(|r| r.is_success()));
    // Backpressure must have parked some tasks.
    assert!(r.plane.admission().parked_total() > 0);
    // Later tasks waited on admission.
    let max_adm = reports
        .iter()
        .map(|r| r.admission_secs)
        .fold(0.0f64, f64::max);
    assert!(max_adm > 0.0);
}

#[test]
fn vm_lock_serializes_operations_on_one_vm() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Linked,
        },
    );
    let vm = drive(&mut r.plane, emits, FAR)[0].produced_vm.unwrap();

    let mut emits = Vec::new();
    r.plane
        .submit(SimTime::from_hours(1), OpKind::Snapshot { vm }, &mut emits);
    r.plane.submit(
        SimTime::from_hours(1),
        OpKind::Reconfigure { vm },
        &mut emits,
    );
    let reports = drive(&mut r.plane, emits, FAR);
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().all(|r| r.is_success()));
    // The second op to finish must have waited for the first's VM lock.
    let total_admission: f64 = reports.iter().map(|r| r.admission_secs).sum();
    assert!(
        total_admission > 0.5,
        "expected lock wait, got {total_admission:.3}s"
    );
}

#[test]
fn snapshot_then_remove_consolidates_with_merge_transfer() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Full,
        },
    );
    let vm = drive(&mut r.plane, emits, FAR)[0].produced_vm.unwrap();

    let disks_before = r.plane.inventory().vm(vm).unwrap().disks.clone();
    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(1), OpKind::Snapshot { vm });
    let snap = drive(&mut r.plane, emits, FAR);
    assert!(snap[0].is_success(), "{:?}", snap[0].error);
    let top = *r.plane.inventory().vm(vm).unwrap().disks.last().unwrap();
    assert_ne!(Some(&top), disks_before.last());
    assert_eq!(r.plane.storage().chain_depth(top).unwrap(), 2);

    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(2), OpKind::RemoveSnapshot { vm });
    let rm = drive(&mut r.plane, emits, FAR);
    assert!(rm[0].is_success(), "{:?}", rm[0].error);
    assert!(rm[0].data_secs > 0.0, "merge moves the delta's bytes");
    let top = *r.plane.inventory().vm(vm).unwrap().disks.last().unwrap();
    assert_eq!(r.plane.storage().chain_depth(top).unwrap(), 1);
}

#[test]
fn remove_snapshot_without_snapshot_fails() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Full,
        },
    );
    let vm = drive(&mut r.plane, emits, FAR)[0].produced_vm.unwrap();
    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(1), OpKind::RemoveSnapshot { vm });
    let rm = drive(&mut r.plane, emits, FAR);
    assert!(!rm[0].is_success());
}

#[test]
fn migrate_moves_vm_between_hosts() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Linked,
        },
    );
    let vm = drive(&mut r.plane, emits, FAR)[0].produced_vm.unwrap();
    let src_host = r.plane.inventory().vm(vm).unwrap().host;
    let emits = r
        .plane
        .submit_collect(SimTime::from_hours(1), OpKind::MigrateVm { vm });
    let mig = drive(&mut r.plane, emits, FAR);
    assert!(mig[0].is_success(), "{:?}", mig[0].error);
    let dst_host = r.plane.inventory().vm(vm).unwrap().host;
    assert_ne!(src_host, dst_host);
}

#[test]
fn relocate_moves_storage_with_byte_proportional_cost() {
    let mut r = rig();
    let emits = r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::CloneVm {
            source: r.template,
            mode: CloneMode::Full,
        },
    );
    let vm = drive(&mut r.plane, emits, FAR)[0].produced_vm.unwrap();
    let src_ds = r.plane.inventory().vm(vm).unwrap().datastore;
    let dst_ds = *r.datastores.iter().find(|d| **d != src_ds).unwrap();
    let emits = r.plane.submit_collect(
        SimTime::from_hours(1),
        OpKind::RelocateVm { vm, dst: dst_ds },
    );
    let rel = drive(&mut r.plane, emits, FAR);
    assert!(rel[0].is_success(), "{:?}", rel[0].error);
    assert!(rel[0].data_secs > 100.0, "20 GiB move takes minutes");
    assert_eq!(r.plane.inventory().vm(vm).unwrap().datastore, dst_ds);
    r.plane
        .storage()
        .check_invariants(r.plane.inventory())
        .unwrap();
}

#[test]
fn add_host_grows_inventory_and_schedules_heartbeats() {
    let mut cfg = ControlPlaneConfig::default();
    // Keep heartbeats on to check they start for the new host.
    let mut r = {
        let mut plane = ControlPlane::new(cfg.clone(), Streams::new(42));
        let ds = plane.add_datastore(DatastoreSpec::new("ds0", 2048.0, 100.0));
        let h = plane.add_host(HostSpec::new("h0", 48_000, 262_144));
        plane.connect(h, ds).unwrap();
        let template = plane
            .install_template("tmpl", VmSpec::new(2, 2_048, 20.0), h, ds)
            .unwrap();
        Rig {
            plane,
            hosts: vec![h],
            datastores: vec![ds],
            template,
        }
    };
    cfg.heartbeat = cpsim_hostagent::HeartbeatSpec::default();
    let before = r.plane.inventory().counts().hosts;
    let mut emits = r.plane.init_events();
    emits.extend(r.plane.submit_collect(
        SimTime::ZERO,
        OpKind::add_host(
            HostSpec::new("h-new", 48_000, 262_144),
            r.datastores.clone(),
        ),
    ));
    // Bounded horizon: heartbeats recur forever.
    let reports = drive(&mut r.plane, emits, SimTime::from_hours(1));
    let add = reports
        .iter()
        .find(|r| r.kind == "add-host")
        .expect("add-host completed");
    assert!(add.is_success(), "{:?}", add.error);
    assert_eq!(r.plane.inventory().counts().hosts, before + 1);
    // Host-sync is expensive: tens of seconds of control time.
    assert!(add.cpu_secs > 10.0);
    let _ = r.template;
}

#[test]
fn heartbeats_consume_control_plane_capacity() {
    let mut cfg = ControlPlaneConfig::default();
    cfg.heartbeat.interval = cpsim_des::SimDuration::from_secs(1);
    cfg.heartbeat.mgmt_cpu = cpsim_des::SimDuration::from_millis(50);
    let mut plane = ControlPlane::new(cfg, Streams::new(42));
    let ds = plane.add_datastore(DatastoreSpec::new("ds", 100.0, 100.0));
    for i in 0..8 {
        let h = plane.add_host(HostSpec::new(format!("h{i}"), 10_000, 65_536));
        plane.connect(h, ds).unwrap();
    }
    let emits = plane.init_events();
    let horizon = SimTime::from_secs(60);
    drive(&mut plane, emits, horizon);
    // 8 hosts * 50 ms per second = 0.4 core-seconds/s over 4 cores = 10 %.
    let util = plane.cpu_utilization(horizon);
    assert!(util > 0.05, "heartbeat load invisible: {util:.3}");
}

#[test]
fn identical_seeds_give_identical_runs() {
    let run = |seed: u64| -> Vec<(String, u64)> {
        let cfg = ControlPlaneConfig {
            heartbeat: cpsim_hostagent::HeartbeatSpec::disabled(),
            ..Default::default()
        };
        let mut plane = ControlPlane::new(cfg, Streams::new(seed));
        let ds = plane.add_datastore(DatastoreSpec::new("ds", 2048.0, 100.0));
        let h = plane.add_host(HostSpec::new("h", 48_000, 262_144));
        plane.connect(h, ds).unwrap();
        let t = plane
            .install_template("tmpl", VmSpec::new(1, 1_024, 10.0), h, ds)
            .unwrap();
        let emits = (0..5)
            .map(|i| {
                Emit::At(
                    SimTime::from_secs(i * 10),
                    MgmtEvent::Submit(
                        OpKind::CloneVm {
                            source: t,
                            mode: CloneMode::Linked,
                        }
                        .into(),
                    ),
                )
            })
            .collect();
        drive(&mut plane, emits, FAR)
            .into_iter()
            .map(|r| (r.kind.to_string(), r.latency.as_micros()))
            .collect()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds should differ somewhere");
}

#[test]
fn stats_accumulate_per_kind() {
    let mut r = rig();
    let emits = (0..3)
        .map(|i| {
            Emit::At(
                SimTime::from_secs(i * 100),
                MgmtEvent::Submit(
                    OpKind::CloneVm {
                        source: r.template,
                        mode: CloneMode::Linked,
                    }
                    .into(),
                ),
            )
        })
        .collect();
    drive(&mut r.plane, emits, FAR);
    let stats = r.plane.stats();
    assert_eq!(stats.submitted(), 3);
    assert_eq!(stats.completed(), 3);
    let ks = stats.kind("clone-linked").unwrap();
    assert_eq!(ks.latency.count(), 3);
    assert!(ks.latency.mean() > 0.0);
    // Phase totals include the placement label.
    assert!(stats
        .phase_totals()
        .any(|(k, c, l, _, _)| k == "clone-linked" && c == "cpu" && l == "placement"));
}
