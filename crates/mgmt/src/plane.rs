//! The [`ControlPlane`] orchestrator: executes management operations as
//! phase programs over shared control-plane resources.
//!
//! See the crate docs for the model. The plane is event-driven: callers
//! deliver [`MgmtEvent`]s with explicit timestamps via
//! [`ControlPlane::handle`] and route the returned [`Emit`]s.

use cpsim_des::FastMap;

use cpsim_des::{FifoQueue, SimDuration, SimRng, SimTime, Streams};
use cpsim_faults::{FaultKind, RecoveryPolicy};
use cpsim_hostagent::{AgentFleet, Primitive, ServiceMod};
use cpsim_inventory::{
    Arena, DatastoreId, DatastoreSpec, HostId, HostSpec, HostState, Inventory, PowerState, TaskId,
    VmId, VmSpec,
};
use cpsim_storage::{StoragePool, TemplateResidency, TransferEngine, TransferId, GIB};

use crate::admission::{AdmissionControl, Scope};
use crate::config::ControlPlaneConfig;
use crate::gate::{GateDecision, PlacementGate};
use crate::op::{CloneMode, OpKind, Operation};
use crate::placement::Placer;
use crate::recovery::FaultInjector;
use crate::stats::MgmtStats;
use crate::task::{PhaseClass, Task, TaskReport};

/// Who a CPU/DB job belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Owner {
    /// A management task.
    Task(TaskId),
    /// Background work (heartbeats).
    Background,
}

/// A unit of management-server CPU or database work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceJob {
    /// Whose work this is.
    pub owner: Owner,
    /// Phase label for cost breakdowns.
    pub label: &'static str,
    /// Sampled service time.
    pub service: SimDuration,
}

/// Events the control plane reacts to.
#[derive(Clone, Debug)]
pub enum MgmtEvent {
    /// An operation arrives.
    Submit(Operation),
    /// A management-CPU job finished service.
    CpuDone(ServiceJob),
    /// A database job finished service.
    DbDone(ServiceJob),
    /// A host-agent primitive finished.
    AgentDone {
        /// Host it ran on.
        host: HostId,
        /// Owning task.
        task: TaskId,
        /// The primitive that finished.
        primitive: Primitive,
        /// Its sampled service time.
        service: SimDuration,
        /// The host's crash epoch at scheduling time; a mismatch at
        /// delivery means the work was lost in a crash and the event is
        /// stale.
        epoch: u64,
    },
    /// A datastore bandwidth tick (possibly stale).
    TransferTick {
        /// The datastore.
        datastore: DatastoreId,
        /// Epoch guarding against staleness.
        epoch: u64,
    },
    /// A host heartbeat is due.
    Heartbeat {
        /// Index into the plane's heartbeat slot table.
        slot: usize,
    },
    /// An injected fault (or its internally scheduled recovery) fires.
    Fault(FaultKind),
    /// A backed-off phase retry is due.
    Retry {
        /// The task replaying its failed stage.
        task: TaskId,
    },
}

/// Outputs of [`ControlPlane::handle`].
#[derive(Clone, Debug)]
pub enum Emit {
    /// Schedule `event` at the given time.
    At(SimTime, MgmtEvent),
    /// A task completed successfully.
    Done(TaskId, TaskReport),
    /// A task failed.
    Failed(TaskId, TaskReport),
}

/// What the phase program asks for next (internal).
enum Step {
    Cpu(&'static str, SimDuration),
    Db(&'static str, SimDuration),
    Agent(HostId, Primitive),
    Transfer {
        src: DatastoreId,
        dst: DatastoreId,
        bytes: f64,
        label: &'static str,
    },
    Acquire(Scope),
    Continue,
    Done,
    /// Transient failure: retried with backoff when fault injection is
    /// installed, terminal otherwise.
    FailRetryable(String),
    Fail(String),
}

struct TransferOwner {
    task: TaskId,
    label: &'static str,
}

/// The management server and everything it orchestrates.
pub struct ControlPlane {
    cfg: ControlPlaneConfig,
    inv: Inventory,
    storage: StoragePool,
    residency: TemplateResidency,
    cpu: FifoQueue<ServiceJob>,
    db: FifoQueue<ServiceJob>,
    agents: AgentFleet<TaskId>,
    transfers: TransferEngine,
    /// Keyed lookups only (insert on start, remove on completion) — the
    /// map is never iterated, so hash ordering cannot leak into event
    /// order.
    // cpsim-lint: allow(no-unordered-iteration): keyed insert/remove only; iteration order is never observed
    transfer_owner: FastMap<TransferId, TransferOwner>,
    admission: AdmissionControl,
    tasks: Arena<TaskId, Task>,
    placer: Placer,
    stats: MgmtStats,
    rng: SimRng,
    heartbeat_hosts: Vec<HostId>,
    /// Datastores in creation order; fault plans address them by index.
    datastore_order: Vec<DatastoreId>,
    /// Fault-injection state; `None` (the default) leaves every fault
    /// branch untaken and draws no fault randomness.
    faults: Option<FaultInjector>,
    /// External placement gate; `None` (the default) skips every gate
    /// branch, so a single-plane simulation is unaffected.
    gate: Option<Box<dyn PlacementGate>>,
    name_seq: u64,
}

impl ControlPlane {
    /// Creates a plane with `cfg`, drawing randomness from `streams`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ControlPlaneConfig::validate`]).
    pub fn new(cfg: ControlPlaneConfig, streams: Streams) -> Self {
        cfg.validate().expect("invalid ControlPlaneConfig");
        let agents = AgentFleet::new(cfg.host_cost.clone(), streams.rng(Streams::SERVICE + 100));
        ControlPlane {
            cpu: FifoQueue::new(cfg.effective_cores()),
            db: FifoQueue::new(cfg.effective_db_connections()),
            admission: AdmissionControl::new(cfg.limits),
            agents,
            transfers: TransferEngine::new(),
            transfer_owner: FastMap::default(),
            inv: Inventory::new(),
            storage: StoragePool::new(),
            residency: TemplateResidency::new(),
            tasks: Arena::new(),
            placer: Placer::default(),
            stats: MgmtStats::new(),
            rng: streams.rng(Streams::SERVICE),
            heartbeat_hosts: Vec::new(),
            datastore_order: Vec::new(),
            faults: None,
            gate: None,
            name_seq: 0,
            cfg,
        }
    }

    // ---- setup-time helpers (not charged to the simulation) -------------

    /// Adds a datastore to the inventory and registers its copy engine.
    pub fn add_datastore(&mut self, spec: DatastoreSpec) -> DatastoreId {
        let id = self.inv.add_datastore(spec);
        self.datastore_order.push(id);
        self.transfers
            .register_datastore(&self.inv, id)
            .expect("freshly added datastore");
        id
    }

    /// Adds a host, its agent, and its heartbeat slot.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = self.inv.add_host(spec);
        self.agents.add_host(id, self.cfg.agent_concurrency);
        self.heartbeat_hosts.push(id);
        id
    }

    /// Connects a host to a datastore.
    ///
    /// # Errors
    ///
    /// Fails if either id is stale.
    pub fn connect(
        &mut self,
        host: HostId,
        ds: DatastoreId,
    ) -> Result<(), cpsim_inventory::InventoryError> {
        self.inv.connect_host_datastore(host, ds)
    }

    /// Installs a template VM with a thick base disk on `(host, ds)` and
    /// seeds its residency there.
    ///
    /// # Errors
    ///
    /// Fails if the placement is invalid or the datastore lacks space.
    pub fn install_template(
        &mut self,
        name: &str,
        spec: VmSpec,
        host: HostId,
        ds: DatastoreId,
    ) -> Result<VmId, String> {
        let vm = self
            .inv
            .create_vm(name, spec, host, ds)
            .map_err(|e| e.to_string())?;
        let disk = self
            .storage
            .create_base(&mut self.inv, ds, spec.disk_gb)
            .map_err(|e| e.to_string())?;
        self.inv.vm_mut(vm).expect("just created").disks.push(disk);
        self.inv.mark_template(vm).map_err(|e| e.to_string())?;
        self.residency.seed(vm, ds, disk);
        Ok(vm)
    }

    /// Installs a plain VM with a thick base disk (setup-time helper for
    /// pre-populated datacenters), optionally powered on.
    ///
    /// # Errors
    ///
    /// Fails if the placement is invalid or capacity is lacking.
    pub fn install_vm(
        &mut self,
        name: &str,
        spec: VmSpec,
        host: HostId,
        ds: DatastoreId,
        powered_on: bool,
    ) -> Result<VmId, String> {
        let vm = self
            .inv
            .create_vm(name, spec, host, ds)
            .map_err(|e| e.to_string())?;
        let disk = self
            .storage
            .create_base(&mut self.inv, ds, spec.disk_gb)
            .map_err(|e| e.to_string())?;
        self.inv.vm_mut(vm).expect("just created").disks.push(disk);
        if powered_on {
            self.inv.power_on(vm).map_err(|e| e.to_string())?;
        }
        Ok(vm)
    }

    /// Instantly seeds `template` onto `ds` (setup-time helper modeling a
    /// cloud whose reconfiguration already ran).
    ///
    /// # Errors
    ///
    /// Fails if ids are stale, the datastore lacks space, or the template
    /// is already resident there.
    pub fn seed_template_now(&mut self, template: VmId, ds: DatastoreId) -> Result<(), String> {
        if self.residency.is_resident(template, ds) {
            return Err(format!("template {template} already resident on {ds}"));
        }
        let gb = self
            .inv
            .vm_checked(template)
            .map_err(|e| e.to_string())?
            .spec
            .disk_gb;
        let disk = self
            .storage
            .create_base(&mut self.inv, ds, gb)
            .map_err(|e| e.to_string())?;
        self.residency.seed(template, ds, disk);
        Ok(())
    }

    /// Installs fault injection. `policy` governs phase timeouts, retry
    /// budgets, backoff, and heartbeat-miss detection; `timeout_prob` is
    /// the per-primitive hang probability; `rng` must come from a
    /// dedicated stream so fault draws never perturb service-time
    /// sampling.
    pub fn enable_faults(&mut self, policy: RecoveryPolicy, timeout_prob: f64, rng: SimRng) {
        self.faults = Some(FaultInjector::new(policy, timeout_prob, rng));
    }

    /// Whether fault injection is installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Installs an external placement gate: every provisioning placement
    /// is committed against it before admission, and conflicts retry via
    /// the fault-recovery machinery (install that too, via
    /// [`enable_faults`](Self::enable_faults), or conflicts abort the
    /// task on the spot).
    pub fn set_placement_gate(&mut self, gate: Box<dyn PlacementGate>) {
        self.gate = Some(gate);
    }

    /// Whether an external placement gate is installed.
    pub fn placement_gate_enabled(&self) -> bool {
        self.gate.is_some()
    }

    /// Refreshes the mirrored free-capacity view from the gate's
    /// authoritative store and charges the refresh as background
    /// management load (one CPU slice + one DB statement), mirroring how
    /// heartbeats and resyncs are charged. No-op without a gate.
    pub fn sync_placement_gate(&mut self, now: SimTime, out: &mut Vec<Emit>) {
        let Some(g) = self.gate.as_mut() else {
            return;
        };
        g.sync(now, &mut self.inv);
        self.stats.on_placement_sync();
        let cpu = Self::sample_cost(&self.cfg.cost.result_processing, &mut self.rng);
        self.enqueue_cpu(now, Owner::Background, "placement-sync", cpu, out);
        let db = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
        self.enqueue_db(now, Owner::Background, "placement-sync", db, out);
    }

    /// Refreshes the mirrored view without charging any cost: the
    /// setup-time initial sync, run once after the federation seeds the
    /// shared pool (not part of the simulated run).
    pub fn sync_placement_gate_quiet(&mut self) {
        if let Some(g) = self.gate.as_mut() {
            g.sync(SimTime::ZERO, &mut self.inv);
        }
    }

    /// Initial events: one staggered heartbeat per host. Call once after
    /// setup, before running.
    pub fn init_events(&self) -> Vec<Emit> {
        if self.cfg.heartbeat.is_disabled() {
            return Vec::new();
        }
        (0..self.heartbeat_hosts.len())
            .map(|slot| {
                Emit::At(
                    self.cfg.heartbeat.first_beat(slot),
                    MgmtEvent::Heartbeat { slot },
                )
            })
            .collect()
    }

    // ---- accessors -------------------------------------------------------

    /// The shared inventory.
    pub fn inventory(&self) -> &Inventory {
        &self.inv
    }

    /// The storage pool.
    pub fn storage(&self) -> &StoragePool {
        &self.storage
    }

    /// Template residency.
    pub fn residency(&self) -> &TemplateResidency {
        &self.residency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MgmtStats {
        &self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &ControlPlaneConfig {
        &self.cfg
    }

    /// Admission-control state (pending queue, in-flight count).
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// Management-CPU utilization through `now` (0..=1).
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        self.cpu.utilization(now)
    }

    /// Database utilization through `now` (0..=1).
    pub fn db_utilization(&self, now: SimTime) -> f64 {
        self.db.utilization(now)
    }

    /// Datastore copy-bandwidth busy fraction through `now`.
    pub fn datastore_busy(&self, ds: DatastoreId, now: SimTime) -> f64 {
        self.transfers.busy_fraction(ds, now)
    }

    /// Mean host-agent utilization across hosts through `now`.
    pub fn mean_agent_utilization(&self, now: SimTime) -> f64 {
        let hosts: Vec<HostId> = self.inv.hosts().map(|(id, _)| id).collect();
        if hosts.is_empty() {
            return 0.0;
        }
        hosts
            .iter()
            .map(|h| self.agents.utilization(*h, now))
            .sum::<f64>()
            / hosts.len() as f64
    }

    /// Tasks currently in flight (submitted, not yet finished).
    pub fn tasks_in_flight(&self) -> usize {
        self.tasks.len()
    }

    // ---- event handling --------------------------------------------------

    /// Submits an operation at `now`, appending follow-up emissions to
    /// `out`. Equivalent to handling [`MgmtEvent::Submit`].
    ///
    /// `out` is caller-owned so the driver can reuse one scratch buffer
    /// across every event instead of allocating per dispatch.
    pub fn submit(&mut self, now: SimTime, kind: impl Into<Operation>, out: &mut Vec<Emit>) {
        self.handle(now, MgmtEvent::Submit(kind.into()), out);
    }

    /// [`submit`](Self::submit) into a freshly allocated buffer
    /// (convenience for tests and examples; the hot path reuses one).
    pub fn submit_collect(&mut self, now: SimTime, kind: impl Into<Operation>) -> Vec<Emit> {
        let mut out = Vec::new();
        self.submit(now, kind, &mut out);
        out
    }

    /// [`handle`](Self::handle) into a freshly allocated buffer
    /// (convenience for tests and examples; the hot path reuses one).
    pub fn handle_collect(&mut self, now: SimTime, event: MgmtEvent) -> Vec<Emit> {
        let mut out = Vec::new();
        self.handle(now, event, &mut out);
        out
    }

    /// Processes one event, appending follow-up emissions to `out`.
    pub fn handle(&mut self, now: SimTime, event: MgmtEvent, out: &mut Vec<Emit>) {
        match event {
            MgmtEvent::Submit(op) => {
                self.stats.on_submitted(op.kind.name());
                let target_vm = match &op.kind {
                    OpKind::PowerOn { vm }
                    | OpKind::PowerOff { vm }
                    | OpKind::Reconfigure { vm }
                    | OpKind::Snapshot { vm }
                    | OpKind::RemoveSnapshot { vm }
                    | OpKind::DestroyVm { vm }
                    | OpKind::MigrateVm { vm }
                    | OpKind::RelocateVm { vm, .. } => Some(*vm),
                    OpKind::CloneVm { source, .. } => Some(*source),
                    _ => None,
                };
                let mut task = Task::new(op, now);
                task.target_vm = target_vm;
                let tid = self.tasks.insert(task);
                self.advance(now, tid, out);
            }
            MgmtEvent::CpuDone(job) => {
                if let Owner::Task(tid) = job.owner {
                    if let Some(task) = self.tasks.get_mut(tid) {
                        task.charge(PhaseClass::Cpu, job.label, job.service.as_secs_f64());
                    }
                }
                if let Some(next) = self.cpu.complete(now) {
                    self.charge_queue_wait(next.job.owner, next.waited);
                    out.push(Emit::At(
                        now + next.job.service,
                        MgmtEvent::CpuDone(next.job),
                    ));
                }
                if let Owner::Task(tid) = job.owner {
                    self.advance(now, tid, out);
                }
            }
            MgmtEvent::DbDone(job) => {
                if let Owner::Task(tid) = job.owner {
                    if let Some(task) = self.tasks.get_mut(tid) {
                        task.charge(PhaseClass::Db, job.label, job.service.as_secs_f64());
                    }
                }
                if let Some(next) = self.db.complete(now) {
                    self.charge_queue_wait(next.job.owner, next.waited);
                    out.push(Emit::At(
                        now + next.job.service,
                        MgmtEvent::DbDone(next.job),
                    ));
                }
                if let Owner::Task(tid) = job.owner {
                    self.advance(now, tid, out);
                }
            }
            MgmtEvent::AgentDone {
                host,
                task,
                primitive,
                service,
                epoch,
            } => {
                if epoch != self.agents.epoch(host) {
                    // Scheduled before the host crashed: the primitive was
                    // lost and the task already took the failure path.
                    return;
                }
                if let Some(t) = self.tasks.get_mut(task) {
                    t.charge(
                        PhaseClass::HostAgent,
                        primitive.name(),
                        service.as_secs_f64(),
                    );
                }
                match self.agents.complete(now, host, task) {
                    Ok(Some(next)) => {
                        self.charge_queue_wait(Owner::Task(next.job), next.waited);
                        out.push(Emit::At(
                            now + next.service,
                            MgmtEvent::AgentDone {
                                host,
                                task: next.job,
                                primitive: next.primitive,
                                service: next.service,
                                epoch,
                            },
                        ));
                    }
                    Ok(None) => {}
                    Err(_) => {} // host removed mid-flight; nothing to start
                }
                let timed_out = self.tasks.get(task).is_some_and(|t| t.pending_timeout);
                if timed_out {
                    self.on_phase_failure(
                        now,
                        task,
                        format!("host agent timed out during {}", primitive.name()),
                        out,
                    );
                } else {
                    self.advance(now, task, out);
                }
            }
            MgmtEvent::TransferTick { datastore, epoch } => {
                if let Some((finished, next)) = self.transfers.on_tick(now, datastore, epoch) {
                    if let Some(ev) = next {
                        out.push(Emit::At(
                            ev.at,
                            MgmtEvent::TransferTick {
                                datastore: ev.datastore,
                                epoch: ev.epoch,
                            },
                        ));
                    }
                    for xid in finished {
                        if let Some(owner) = self.transfer_owner.remove(&xid) {
                            if let Some(t) = self.tasks.get_mut(owner.task) {
                                let started = t.transfer_started.take().unwrap_or(now);
                                t.charge(
                                    PhaseClass::DataTransfer,
                                    owner.label,
                                    now.since(started).as_secs_f64(),
                                );
                            }
                            self.advance(now, owner.task, out);
                        }
                    }
                }
            }
            MgmtEvent::Heartbeat { slot } => {
                self.on_heartbeat(now, slot, out);
            }
            MgmtEvent::Fault(kind) => {
                self.on_fault(now, kind, out);
            }
            MgmtEvent::Retry { task } => {
                self.advance(now, task, out);
            }
        }
    }

    fn on_heartbeat(&mut self, now: SimTime, slot: usize, out: &mut Vec<Emit>) {
        let Some(&host) = self.heartbeat_hosts.get(slot) else {
            return;
        };
        if self.inv.host(host).is_none() {
            return; // host removed: stop its beats
        }
        let hb = self.cfg.heartbeat;
        let missed = self
            .faults
            .as_ref()
            .is_some_and(|inj| inj.host_down(host) || inj.hb_dropped(host));
        if missed {
            // No beat arrives (and nothing is charged): consecutive misses
            // eventually make the plane declare the host down, triggering
            // an inventory resync the control plane pays for.
            let threshold = self
                .faults
                .as_ref()
                .expect("missed implies injector")
                .policy()
                .heartbeat_miss_threshold;
            let misses = self
                .faults
                .as_mut()
                .expect("gated on faults.is_some() by this match arm")
                .record_miss(host);
            let connected = self
                .inv
                .host(host)
                .is_some_and(|h| h.state == HostState::Connected);
            if misses >= threshold && connected {
                let _ = self.inv.set_host_state(host, HostState::Disconnected);
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .declare_down(host);
                self.stats.on_host_declared_down();
                self.charge_resync(now, out);
            }
        } else {
            if let Some(inj) = self.faults.as_mut() {
                inj.reset_misses(host);
                if inj.is_declared_down(host) {
                    // The host answered again: reconnect it and resync.
                    inj.clear_declared(host);
                    let _ = self.inv.set_host_state(host, HostState::Connected);
                    self.charge_resync(now, out);
                }
            }
            if !hb.mgmt_cpu.is_zero() {
                self.enqueue_cpu(now, Owner::Background, "heartbeat", hb.mgmt_cpu, out);
            }
            if !hb.db_time.is_zero() {
                self.enqueue_db(now, Owner::Background, "heartbeat", hb.db_time, out);
            }
        }
        out.push(Emit::At(now + hb.interval, MgmtEvent::Heartbeat { slot }));
    }

    /// Charges the CPU + DB cost of a host-state resync as background
    /// management load (host declared down, or reconnected after one).
    fn charge_resync(&mut self, now: SimTime, out: &mut Vec<Emit>) {
        self.stats.on_resync();
        let cpu = Self::sample_cost(&self.cfg.cost.host_sync, &mut self.rng);
        self.enqueue_cpu(now, Owner::Background, "host-resync", cpu, out);
        let db = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
        self.enqueue_db(now, Owner::Background, "host-resync", db, out);
    }

    fn charge_queue_wait(&mut self, owner: Owner, waited: SimDuration) {
        if let Owner::Task(tid) = owner {
            if let Some(t) = self.tasks.get_mut(tid) {
                t.queue_secs += waited.as_secs_f64();
            }
        }
    }

    fn enqueue_cpu(
        &mut self,
        now: SimTime,
        owner: Owner,
        label: &'static str,
        service: SimDuration,
        out: &mut Vec<Emit>,
    ) {
        let job = ServiceJob {
            owner,
            label,
            service,
        };
        if let Some(started) = self.cpu.arrive(now, job) {
            out.push(Emit::At(
                now + started.job.service,
                MgmtEvent::CpuDone(started.job),
            ));
        }
    }

    fn enqueue_db(
        &mut self,
        now: SimTime,
        owner: Owner,
        label: &'static str,
        service: SimDuration,
        out: &mut Vec<Emit>,
    ) {
        // Degraded-DB windows stretch every statement while active.
        let service = match &self.faults {
            Some(inj) if inj.db_scale() != 1.0 => {
                SimDuration::from_secs_f64(service.as_secs_f64() * inj.db_scale())
            }
            _ => service,
        };
        let job = ServiceJob {
            owner,
            label,
            service,
        };
        if let Some(started) = self.db.arrive(now, job) {
            out.push(Emit::At(
                now + started.job.service,
                MgmtEvent::DbDone(started.job),
            ));
        }
    }

    /// Drives `tid` forward until it blocks on a resource or finishes.
    fn advance(&mut self, now: SimTime, tid: TaskId, out: &mut Vec<Emit>) {
        loop {
            if self.tasks.get(tid).is_none() {
                return; // already finished (defensive)
            }
            let step = self.plan_step(now, tid, out);
            match step {
                Step::Cpu(label, dur) => {
                    self.enqueue_cpu(now, Owner::Task(tid), label, dur, out);
                    return;
                }
                Step::Db(label, dur) => {
                    self.enqueue_db(now, Owner::Task(tid), label, dur, out);
                    return;
                }
                Step::Agent(host, primitive) => {
                    if self.faults.as_ref().is_some_and(|inj| inj.host_down(host)) {
                        self.on_phase_failure(
                            now,
                            tid,
                            format!("host not responding during {}", primitive.name()),
                            out,
                        );
                        return;
                    }
                    let mut service_mod = ServiceMod::default();
                    let mut hangs = false;
                    if let Some(inj) = self.faults.as_mut() {
                        let scale = inj.agent_scale();
                        if scale != 1.0 {
                            service_mod.scale = scale;
                        }
                        if inj.draw_timeout() {
                            // The primitive hangs: it occupies the agent
                            // until the phase timeout, then fails.
                            service_mod.force = Some(inj.policy().agent_timeout);
                            hangs = true;
                        }
                    }
                    if hangs {
                        self.stats.on_agent_timeout();
                        self.tasks
                            .get_mut(tid)
                            .expect("task entry outlives its in-flight events")
                            .pending_timeout = true;
                    }
                    match self
                        .agents
                        .submit_with(now, host, primitive, tid, service_mod)
                    {
                        Ok(Some(start)) => {
                            out.push(Emit::At(
                                now + start.service,
                                MgmtEvent::AgentDone {
                                    host,
                                    task: tid,
                                    primitive: start.primitive,
                                    service: start.service,
                                    epoch: self.agents.epoch(host),
                                },
                            ));
                        }
                        Ok(None) => {} // queued at the host
                        Err(e) => {
                            self.finish(now, tid, Some(e.to_string()), out);
                        }
                    }
                    return;
                }
                Step::Transfer {
                    src,
                    dst,
                    bytes,
                    label,
                } => {
                    let (xid, events) = self.transfers.start(now, src, dst, bytes);
                    self.transfer_owner
                        .insert(xid, TransferOwner { task: tid, label });
                    if let Some(t) = self.tasks.get_mut(tid) {
                        t.transfer_started = Some(now);
                    }
                    for ev in events {
                        out.push(Emit::At(
                            ev.at,
                            MgmtEvent::TransferTick {
                                datastore: ev.datastore,
                                epoch: ev.epoch,
                            },
                        ));
                    }
                    return;
                }
                Step::Acquire(scope) => {
                    if self.admission.try_acquire(&scope) {
                        self.tasks
                            .get_mut(tid)
                            .expect("task entry outlives its in-flight events")
                            .scope = Some(scope);
                        continue;
                    }
                    let t = self
                        .tasks
                        .get_mut(tid)
                        .expect("task entry outlives its in-flight events");
                    t.parked_at = Some(now);
                    self.admission.park(tid, scope);
                    return;
                }
                Step::Continue => continue,
                Step::Done => {
                    self.finish(now, tid, None, out);
                    return;
                }
                Step::FailRetryable(err) => {
                    self.on_phase_failure(now, tid, err, out);
                    return;
                }
                Step::Fail(err) => {
                    self.finish(now, tid, Some(err), out);
                    return;
                }
            }
        }
    }

    /// Completes `tid`, releases its scope, resumes parked tasks, and
    /// emits the report.
    fn finish(&mut self, now: SimTime, tid: TaskId, error: Option<String>, out: &mut Vec<Emit>) {
        let mut task = self.tasks.remove(tid).expect("finishing a live task");
        if error.is_some() && self.rollback_partial(&mut task) {
            task.rolled_back = true;
            self.stats.on_rollback();
        }
        let failed = error.is_some();
        let report = TaskReport {
            kind: task.op.kind.name(),
            tag: task.op.tag,
            submitted_at: task.submitted_at,
            completed_at: now,
            latency: now.since(task.submitted_at),
            cpu_secs: task.cpu_secs,
            db_secs: task.db_secs,
            agent_secs: task.agent_secs,
            data_secs: task.data_secs,
            queue_secs: task.queue_secs,
            admission_secs: task.admission_secs,
            produced_vm: task.produced_vm,
            target_vm: task.target_vm,
            placement: task.placement,
            error,
            retries: task.retries,
            aborted: task.aborted,
            rolled_back: task.rolled_back,
            breakdown: std::mem::take(&mut task.breakdown),
        };
        self.stats.on_finished(&report);
        let kind = report.kind;
        out.push(if failed {
            Emit::Failed(tid, report)
        } else {
            Emit::Done(tid, report)
        });
        if let Some(scope) = task.scope {
            let resumed = self.admission.release(&scope);
            for (rtid, rscope) in resumed {
                if let Some(t) = self.tasks.get_mut(rtid) {
                    t.scope = Some(rscope);
                    if let Some(parked) = t.parked_at.take() {
                        t.admission_secs += now.since(parked).as_secs_f64();
                    }
                }
                self.advance(now, rtid, out);
            }
        }
        debug_assert!(
            self.inv.check_invariants().is_ok(),
            "inventory invariants violated after {kind:?}"
        );
    }

    /// Tears down partial state left by a failed task: a produced VM (and
    /// its disks) and any scratch disk whose copy never finished. Returns
    /// whether anything was released. Runs on every failure path so a
    /// half-provisioned VM never outlives its failed task.
    fn rollback_partial(&mut self, task: &mut Task) -> bool {
        let mut any = false;
        if let Some(vm) = task.produced_vm.take() {
            if self.inv.vm(vm).is_some() {
                // Mirror plan_destroy: power off, detach disks, destroy.
                // Each step tolerates absence (the task may have failed at
                // any point in the provisioning program).
                let _ = self.inv.power_off(vm);
                let disks = self.inv.vm(vm).map(|v| v.disks.clone()).unwrap_or_default();
                for d in disks {
                    let _ = self.storage.detach(&mut self.inv, d);
                }
                let _ = self.inv.destroy_vm(vm);
                any = true;
            }
        }
        if let Some(d) = task.work_disk.take() {
            // Still set only while the disk is dangling: attach points
            // clear `work_disk`, so this cannot double-free.
            if self.storage.disk(d).is_some() {
                let _ = self.storage.detach(&mut self.inv, d);
                any = true;
            }
        }
        any
    }

    /// A phase failed for a (possibly transient) fault-related reason.
    /// With fault injection installed the stage is retried after an
    /// exponential backoff until the retry budget runs out; without it the
    /// failure is terminal.
    fn on_phase_failure(&mut self, now: SimTime, tid: TaskId, err: String, out: &mut Vec<Emit>) {
        let Some(max_retries) = self.faults.as_ref().map(|inj| inj.policy().max_retries) else {
            self.finish(now, tid, Some(err), out);
            return;
        };
        let Some(t) = self.tasks.get_mut(tid) else {
            return; // already finished (a crash raced with another failure)
        };
        t.pending_timeout = false;
        if t.retries >= max_retries {
            t.aborted = true;
            self.stats.on_abort();
            self.finish(now, tid, Some(err), out);
            return;
        }
        t.retries += 1;
        // plan_step pre-increments the stage counter, so stepping it back
        // makes the retry replay the failed stage — with freshly sampled
        // costs, which is the retry amplification of control-plane load
        // the availability experiment measures.
        t.stage -= 1;
        let attempt = t.retries;
        self.stats.on_retry();
        let backoff = self
            .faults
            .as_mut()
            .expect("checked above")
            .backoff(attempt);
        out.push(Emit::At(now + backoff, MgmtEvent::Retry { task: tid }));
    }

    /// Applies one injected fault at `now`. Host/datastore indices in the
    /// plan are resolved modulo the current topology; recovery events are
    /// scheduled here so every fault window closes itself.
    fn on_fault(&mut self, now: SimTime, kind: FaultKind, out: &mut Vec<Emit>) {
        if self.faults.is_none() {
            return;
        }
        match kind {
            FaultKind::HostCrash { host, down_for } => {
                if self.heartbeat_hosts.is_empty() {
                    return;
                }
                let hid = self.heartbeat_hosts[host % self.heartbeat_hosts.len()];
                if self.inv.host(hid).is_none()
                    || self
                        .faults
                        .as_ref()
                        .expect("gated on faults.is_some() by this match arm")
                        .host_down(hid)
                {
                    return; // removed or already down: nothing new fails
                }
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .mark_host_down(host, hid);
                self.stats.on_host_crash();
                out.push(Emit::At(
                    now + down_for,
                    MgmtEvent::Fault(FaultKind::HostRecover { host }),
                ));
                let report = self.agents.crash_host(now, hid).expect("registered agent");
                for (prim, tid) in report.interrupted.into_iter().chain(report.dropped) {
                    self.on_phase_failure(
                        now,
                        tid,
                        format!("host crashed during {}", prim.name()),
                        out,
                    );
                }
                // Inventory state is deliberately NOT flipped here: the
                // plane only learns of the crash through missed
                // heartbeats, so detection latency is emergent.
            }
            FaultKind::HostRecover { host } => {
                // Clear the down flag; reconnection happens when healthy
                // heartbeats resume.
                let _ = self
                    .faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .recover_host(host);
            }
            FaultKind::AgentSlowdown { factor, duration } => {
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .push_agent_slow(factor);
                out.push(Emit::At(
                    now + duration,
                    MgmtEvent::Fault(FaultKind::AgentSpeedRestore { factor }),
                ));
            }
            FaultKind::AgentSpeedRestore { factor } => {
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .pop_agent_slow(factor);
            }
            FaultKind::DbDegraded { factor, duration } => {
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .push_db_slow(factor);
                out.push(Emit::At(
                    now + duration,
                    MgmtEvent::Fault(FaultKind::DbRestore { factor }),
                ));
            }
            FaultKind::DbRestore { factor } => {
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .pop_db_slow(factor);
            }
            FaultKind::DatastoreOutage { ds, duration } => {
                if self.datastore_order.is_empty() {
                    return;
                }
                let did = self.datastore_order[ds % self.datastore_order.len()];
                if self
                    .faults
                    .as_ref()
                    .expect("gated on faults.is_some() by this match arm")
                    .ds_down(did)
                {
                    return;
                }
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .mark_ds_down(ds, did);
                out.push(Emit::At(
                    now + duration,
                    MgmtEvent::Fault(FaultKind::DatastoreRestore { ds }),
                ));
            }
            FaultKind::DatastoreRestore { ds } => {
                let _ = self
                    .faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .restore_ds(ds);
            }
            FaultKind::HeartbeatDrops { host, duration } => {
                if self.heartbeat_hosts.is_empty() {
                    return;
                }
                let hid = self.heartbeat_hosts[host % self.heartbeat_hosts.len()];
                if self
                    .faults
                    .as_ref()
                    .expect("gated on faults.is_some() by this match arm")
                    .hb_dropped(hid)
                {
                    return;
                }
                self.faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .mark_hb_dropped(host, hid);
                out.push(Emit::At(
                    now + duration,
                    MgmtEvent::Fault(FaultKind::HeartbeatRestore { host }),
                ));
            }
            FaultKind::HeartbeatRestore { host } => {
                let _ = self
                    .faults
                    .as_mut()
                    .expect("gated on faults.is_some() by this match arm")
                    .restore_hb(host);
            }
        }
    }

    /// Samples a cost distribution. An associated function (not a method)
    /// so call sites can borrow the distribution out of `self.cfg` while
    /// handing the rng out of `self.rng` — no per-sample `Dist` clone.
    fn sample_cost(dist: &cpsim_des::Dist, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(dist.sample(rng))
    }

    fn next_clone_name(&mut self) -> String {
        self.name_seq += 1;
        format!("vm-{:06}", self.name_seq)
    }

    /// The per-operation phase program. Called with the task's stage
    /// counter already advanced to the stage to plan.
    #[allow(clippy::too_many_lines)]
    fn plan_step(&mut self, now: SimTime, tid: TaskId, out: &mut Vec<Emit>) -> Step {
        let (kind, stage) = {
            let t = self.tasks.get_mut(tid).expect("live task");
            t.stage += 1;
            (t.op.kind.clone(), t.stage)
        };

        // Shared prelude for every operation.
        if stage == 1 {
            let d = Self::sample_cost(&self.cfg.cost.api_ingress, &mut self.rng);
            return Step::Cpu("api-ingress", d);
        }
        if stage == 2 {
            if self.cfg.db_batching {
                // Batching folds the task record into the first real write.
                return Step::Continue;
            }
            let d = Self::sample_cost(&self.cfg.cost.db_task_record, &mut self.rng);
            return Step::Db("task-record", d);
        }

        match kind {
            OpKind::CreateVm { spec } => self.plan_create(now, tid, stage, spec),
            OpKind::CloneVm { source, mode } => self.plan_clone(now, tid, stage, source, mode),
            OpKind::PowerOn { vm } => self.plan_power(tid, stage, vm, true),
            OpKind::PowerOff { vm } => self.plan_power(tid, stage, vm, false),
            OpKind::Reconfigure { vm } => {
                self.plan_simple_vm_op(tid, stage, vm, Primitive::ReconfigureVm)
            }
            OpKind::Snapshot { vm } => self.plan_snapshot(tid, stage, vm),
            OpKind::RemoveSnapshot { vm } => self.plan_remove_snapshot(tid, stage, vm),
            OpKind::DestroyVm { vm } => self.plan_destroy(tid, stage, vm),
            OpKind::MigrateVm { vm } => self.plan_migrate(tid, stage, vm),
            OpKind::RelocateVm { vm, dst } => self.plan_relocate(tid, stage, vm, dst),
            OpKind::SeedTemplate { template, dst } => self.plan_seed(tid, stage, template, dst),
            OpKind::AddHost(params) => {
                let crate::op::AddHostParams { spec, datastores } = *params;
                self.plan_add_host(now, tid, stage, spec, datastores, out)
            }
            OpKind::RescanDatastores { host } => self.plan_rescan(tid, stage, host),
        }
    }

    // ---- per-op programs --------------------------------------------------

    /// Commits a freshly-picked placement against the external gate, if
    /// one is installed. Returns `None` when the task may proceed and the
    /// retryable failure step when the authoritative store rejected the
    /// reservation (the gate refreshes the contended datastore's mirror
    /// before returning, so the retried placement scan picks elsewhere).
    fn gate_commit(
        &mut self,
        now: SimTime,
        host: HostId,
        ds: DatastoreId,
        mem_mb: u64,
        disk_gb: f64,
    ) -> Option<Step> {
        let g = self.gate.as_mut()?;
        match g.commit(now, &mut self.inv, host, ds, mem_mb, disk_gb) {
            GateDecision::Commit => {
                self.stats.on_placement_commit();
                None
            }
            GateDecision::Conflict(reason) => {
                self.stats.on_placement_conflict();
                Some(Step::FailRetryable(reason))
            }
        }
    }

    fn placement_step(&mut self) -> Step {
        let hosts = self.inv.counts().hosts;
        let base = Self::sample_cost(&self.cfg.cost.placement_base, &mut self.rng);
        let per_host =
            SimDuration::from_secs_f64(self.cfg.cost.placement_per_host_us * 1e-6 * hosts as f64);
        Step::Cpu("placement", base + per_host)
    }

    fn plan_create(&mut self, now: SimTime, tid: TaskId, stage: u32, spec: VmSpec) -> Step {
        match stage {
            3 => self.placement_step(),
            4 => {
                let Some((host, ds)) =
                    self.placer
                        .place(&self.inv, &self.residency, spec.disk_gb, spec.mem_mb, None)
                else {
                    return Step::Fail("placement failed: no capacity".into());
                };
                if let Some(step) = self.gate_commit(now, host, ds, spec.mem_mb, spec.disk_gb) {
                    return step;
                }
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((host, ds));
                Step::Acquire(Scope::global_only().with_host(host).with_datastore(ds))
            }
            5 => {
                let d = Self::sample_cost(&self.cfg.cost.db_insert, &mut self.rng);
                Step::Db("insert-vm", d)
            }
            6 => {
                let (host, ds) = self
                    .tasks
                    .get(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement
                    .expect("placement recorded by an earlier stage");
                if self.faults.as_ref().is_some_and(|i| i.ds_down(ds)) {
                    return Step::FailRetryable(format!("datastore {ds} unavailable"));
                }
                let name = self.next_clone_name();
                let vm = match self.inv.create_vm(name, spec, host, ds) {
                    Ok(vm) => vm,
                    Err(e) => return Step::Fail(e.to_string()),
                };
                let disk = match self.storage.create_base(&mut self.inv, ds, spec.disk_gb) {
                    Ok(d) => d,
                    Err(e) => {
                        let _ = self.inv.destroy_vm(vm);
                        return Step::Fail(e.to_string());
                    }
                };
                self.inv.vm_mut(vm).expect("just created").disks.push(disk);
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .produced_vm = Some(vm);
                Step::Continue
            }
            7 => Step::Agent(self.placed_host(tid), Primitive::CreateVmFiles),
            8 => Step::Agent(self.placed_host(tid), Primitive::RegisterVm),
            9 => {
                let d = Self::sample_cost(&self.cfg.cost.result_processing, &mut self.rng);
                Step::Cpu("result-processing", d)
            }
            10 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("finalize-records", d)
            }
            11 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_clone(
        &mut self,
        now: SimTime,
        tid: TaskId,
        stage: u32,
        source: VmId,
        mode: CloneMode,
    ) -> Step {
        match stage {
            3 => {
                if mode == CloneMode::Instant {
                    // No placement scan: the fork lands on the parent's
                    // host and datastore by construction.
                    let d = Self::sample_cost(&self.cfg.cost.placement_base, &mut self.rng);
                    return Step::Cpu("placement", d);
                }
                self.placement_step()
            }
            4 => {
                let src = match self.inv.vm(source) {
                    Some(v) => v,
                    None => return Step::Fail(format!("clone source {source} no longer exists")),
                };
                if mode == CloneMode::Instant {
                    let (host, ds) = (src.host, src.datastore);
                    self.tasks
                        .get_mut(tid)
                        .expect("task entry outlives its in-flight events")
                        .placement = Some((host, ds));
                    return Step::Acquire(
                        Scope::global_only()
                            .with_host(host)
                            .with_datastore(ds)
                            .with_vm_shared(source),
                    );
                }
                let spec = src.spec;
                let prefer = (mode == CloneMode::Linked && self.cfg.placement_prefers_resident)
                    .then_some(source);
                let disk_need = match mode {
                    CloneMode::Full => spec.disk_gb,
                    CloneMode::Linked => self.cfg.linked_delta_gb,
                    // cpsim-lint: allow(no-panic-hot-path, panic-reachability): the Instant arm returns at the top of this stage, so this match sees only Full/Linked
                    CloneMode::Instant => unreachable!("instant handled above"),
                };
                let mut placement =
                    self.placer
                        .place(&self.inv, &self.residency, disk_need, spec.mem_mb, prefer);
                if mode == CloneMode::Linked {
                    // If we landed on a non-resident datastore the shadow
                    // copy needs space for a full base as well.
                    if let Some((_, ds)) = placement {
                        if !self.residency.is_resident(source, ds) {
                            placement = self.placer.place(
                                &self.inv,
                                &self.residency,
                                spec.disk_gb + self.cfg.linked_delta_gb,
                                spec.mem_mb,
                                prefer,
                            );
                        }
                    }
                }
                let Some((host, ds)) = placement else {
                    return Step::Fail("placement failed: no capacity".into());
                };
                // What the commit reserves on `ds`: the full base for a
                // full clone, the delta for a resident linked clone, and
                // base + delta when a shadow copy must land first.
                let commit_gb = if mode == CloneMode::Full {
                    spec.disk_gb
                } else if self.residency.is_resident(source, ds) {
                    self.cfg.linked_delta_gb
                } else {
                    spec.disk_gb + self.cfg.linked_delta_gb
                };
                if let Some(step) = self.gate_commit(now, host, ds, spec.mem_mb, commit_gb) {
                    return step;
                }
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((host, ds));
                Step::Acquire(
                    Scope::global_only()
                        .with_host(host)
                        .with_datastore(ds)
                        .with_vm_shared(source),
                )
            }
            5 => {
                let src_host = match self.inv.vm(source) {
                    Some(v) => v.host,
                    None => return Step::Fail("clone source vanished".into()),
                };
                let prim = if mode == CloneMode::Instant {
                    Primitive::InstantFork
                } else {
                    Primitive::PrepareClone
                };
                Step::Agent(src_host, prim)
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.db_insert, &mut self.rng);
                Step::Db("insert-vm", d)
            }
            7 => {
                // Create the VM record and kick off data materialization.
                let (host, ds) = self
                    .tasks
                    .get(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement
                    .expect("placement recorded by an earlier stage");
                if self.faults.as_ref().is_some_and(|i| i.ds_down(ds)) {
                    return Step::FailRetryable(format!("datastore {ds} unavailable"));
                }
                let (spec, src_ds) = match self.inv.vm(source) {
                    Some(v) => (v.spec, v.datastore),
                    None => return Step::Fail("clone source vanished".into()),
                };
                let name = self.next_clone_name();
                let vm = match self.inv.create_vm(name, spec, host, ds) {
                    Ok(vm) => vm,
                    Err(e) => return Step::Fail(e.to_string()),
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .produced_vm = Some(vm);
                match mode {
                    CloneMode::Instant => {
                        let parent = match self.inv.vm(source).and_then(|v| v.disks.last().copied())
                        {
                            Some(d) => d,
                            None => return Step::Fail("instant-clone source has no disks".into()),
                        };
                        let delta = match self.storage.create_delta(
                            &mut self.inv,
                            parent,
                            self.cfg.linked_delta_gb,
                        ) {
                            Ok(d) => d,
                            Err(e) => return Step::Fail(e.to_string()),
                        };
                        self.inv
                            .vm_mut(vm)
                            .expect("vm stays in inventory while its task runs")
                            .disks
                            .push(delta);
                        Step::Continue
                    }
                    CloneMode::Full => {
                        let disk = match self.storage.create_base(&mut self.inv, ds, spec.disk_gb) {
                            Ok(d) => d,
                            Err(e) => return Step::Fail(e.to_string()),
                        };
                        self.tasks
                            .get_mut(tid)
                            .expect("task entry outlives its in-flight events")
                            .work_disk = Some(disk);
                        Step::Transfer {
                            src: src_ds,
                            dst: ds,
                            bytes: spec.disk_gb * GIB,
                            label: "clone-copy",
                        }
                    }
                    CloneMode::Linked => {
                        if self.residency.resident_disk(source, ds).is_some() {
                            Step::Transfer {
                                src: ds,
                                dst: ds,
                                bytes: self.cfg.linked_metadata_bytes,
                                label: "clone-metadata",
                            }
                        } else {
                            // Shadow copy: materialize a full base first.
                            let disk =
                                match self.storage.create_base(&mut self.inv, ds, spec.disk_gb) {
                                    Ok(d) => d,
                                    Err(e) => return Step::Fail(e.to_string()),
                                };
                            let t = self
                                .tasks
                                .get_mut(tid)
                                .expect("task entry outlives its in-flight events");
                            t.work_disk = Some(disk);
                            t.shadow_copy = true;
                            Step::Transfer {
                                src: src_ds,
                                dst: ds,
                                bytes: spec.disk_gb * GIB,
                                label: "shadow-copy",
                            }
                        }
                    }
                }
            }
            8 => {
                // Wire up disks now that data movement is done.
                let (_, ds) = self
                    .tasks
                    .get(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement
                    .expect("placement recorded by an earlier stage");
                let vm = self
                    .tasks
                    .get(tid)
                    .expect("task entry outlives its in-flight events")
                    .produced_vm
                    .expect("produced by an earlier stage of this task");
                match mode {
                    CloneMode::Instant => return Step::Continue,
                    CloneMode::Full => {
                        let disk = self
                            .tasks
                            .get_mut(tid)
                            .expect("task entry outlives its in-flight events")
                            .work_disk
                            .take()
                            .expect("produced by an earlier stage of this task");
                        self.inv
                            .vm_mut(vm)
                            .expect("vm stays in inventory while its task runs")
                            .disks
                            .push(disk);
                    }
                    CloneMode::Linked => {
                        let (shadow, shadow_disk) = {
                            let t = self
                                .tasks
                                .get(tid)
                                .expect("task entry outlives its in-flight events");
                            (t.shadow_copy, t.work_disk)
                        };
                        let parent = if shadow {
                            shadow_disk.expect("shadow created")
                        } else {
                            self.residency
                                .resident_disk(source, ds)
                                .expect("checked resident at stage 7")
                        };
                        let delta = match self.storage.create_delta(
                            &mut self.inv,
                            parent,
                            self.cfg.linked_delta_gb,
                        ) {
                            Ok(d) => d,
                            Err(e) => return Step::Fail(e.to_string()),
                        };
                        self.inv
                            .vm_mut(vm)
                            .expect("vm stays in inventory while its task runs")
                            .disks
                            .push(delta);
                        if shadow {
                            // Several clones may have raced to make the
                            // first copy on this datastore (the shadow-VM
                            // stampede of the real stack). The winner's
                            // copy becomes the resident replica; a loser's
                            // copy backs only its own clone and is
                            // collected when that clone dies.
                            if self.residency.resident_disk(source, ds).is_none() {
                                self.residency.seed(source, ds, parent);
                            } else if let Err(e) = self.storage.detach(&mut self.inv, parent) {
                                return Step::Fail(e.to_string());
                            }
                            self.tasks
                                .get_mut(tid)
                                .expect("task entry outlives its in-flight events")
                                .work_disk = None;
                        }
                    }
                }
                Step::Continue
            }
            9 => {
                if mode == CloneMode::Instant {
                    // The fork is complete at creation; no destination-side
                    // customization pass.
                    return Step::Continue;
                }
                Step::Agent(self.placed_host(tid), Primitive::FinalizeClone)
            }
            10 => Step::Agent(self.placed_host(tid), Primitive::RegisterVm),
            11 => {
                let d = Self::sample_cost(&self.cfg.cost.result_processing, &mut self.rng);
                Step::Cpu("result-processing", d)
            }
            12 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("finalize-records", d)
            }
            13 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_power(&mut self, tid: TaskId, stage: u32, vm: VmId, on: bool) -> Step {
        match stage {
            3 => {
                let host = match self.inv.vm(vm) {
                    Some(v) => v.host,
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((
                    host,
                    self.inv
                        .vm(vm)
                        .expect("vm stays in inventory while its task runs")
                        .datastore,
                ));
                Step::Acquire(Scope::global_only().with_host(host).with_vm(vm))
            }
            4 => Step::Agent(
                self.placed_host(tid),
                if on {
                    Primitive::PowerOnVm
                } else {
                    Primitive::PowerOffVm
                },
            ),
            5 => {
                let res = if on {
                    self.inv.power_on(vm)
                } else {
                    self.inv.power_off(vm)
                };
                match res {
                    Ok(()) => Step::Continue,
                    Err(e) => Step::Fail(e.to_string()),
                }
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("update-power-state", d)
            }
            7 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_simple_vm_op(
        &mut self,
        tid: TaskId,
        stage: u32,
        vm: VmId,
        primitive: Primitive,
    ) -> Step {
        match stage {
            3 => {
                let host = match self.inv.vm(vm) {
                    Some(v) => v.host,
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((
                    host,
                    self.inv
                        .vm(vm)
                        .expect("vm stays in inventory while its task runs")
                        .datastore,
                ));
                Step::Acquire(Scope::global_only().with_host(host).with_vm(vm))
            }
            4 => Step::Agent(self.placed_host(tid), primitive),
            5 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("update-config", d)
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_snapshot(&mut self, tid: TaskId, stage: u32, vm: VmId) -> Step {
        match stage {
            3 => {
                let host = match self.inv.vm(vm) {
                    Some(v) => v.host,
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((
                    host,
                    self.inv
                        .vm(vm)
                        .expect("vm stays in inventory while its task runs")
                        .datastore,
                ));
                Step::Acquire(Scope::global_only().with_host(host).with_vm(vm))
            }
            4 => Step::Agent(self.placed_host(tid), Primitive::CreateSnapshot),
            5 => {
                let disk = match self.inv.vm(vm).and_then(|v| v.disks.last().copied()) {
                    Some(d) => d,
                    None => return Step::Fail(format!("vm {vm} has no disks to snapshot")),
                };
                match self
                    .storage
                    .snapshot(&mut self.inv, disk, self.cfg.snapshot_delta_gb)
                {
                    Ok(new_top) => {
                        let v = self
                            .inv
                            .vm_mut(vm)
                            .expect("vm stays in inventory while its task runs");
                        *v.disks.last_mut().expect("non-empty") = new_top;
                        Step::Continue
                    }
                    Err(e) => Step::Fail(e.to_string()),
                }
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("update-snapshot", d)
            }
            7 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_remove_snapshot(&mut self, tid: TaskId, stage: u32, vm: VmId) -> Step {
        match stage {
            3 => {
                let host = match self.inv.vm(vm) {
                    Some(v) => v.host,
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((
                    host,
                    self.inv
                        .vm(vm)
                        .expect("vm stays in inventory while its task runs")
                        .datastore,
                ));
                Step::Acquire(Scope::global_only().with_host(host).with_vm(vm))
            }
            4 => Step::Agent(self.placed_host(tid), Primitive::RemoveSnapshot),
            5 => {
                let (disk, ds) = match self.inv.vm(vm) {
                    Some(v) => match v.disks.last().copied() {
                        Some(d) => (d, v.datastore),
                        None => return Step::Fail(format!("vm {vm} has no disks")),
                    },
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                match self.storage.consolidate(&mut self.inv, disk) {
                    Ok((merged_into, bytes)) => {
                        let v = self
                            .inv
                            .vm_mut(vm)
                            .expect("vm stays in inventory while its task runs");
                        *v.disks.last_mut().expect("non-empty") = merged_into;
                        Step::Transfer {
                            src: ds,
                            dst: ds,
                            bytes,
                            label: "snapshot-merge",
                        }
                    }
                    Err(e) => Step::Fail(e.to_string()),
                }
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("update-snapshot", d)
            }
            7 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_destroy(&mut self, tid: TaskId, stage: u32, vm: VmId) -> Step {
        match stage {
            3 => {
                let v = match self.inv.vm(vm) {
                    Some(v) => v,
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                if v.power == PowerState::On {
                    return Step::Fail(format!("vm {vm} is powered on"));
                }
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((v.host, v.datastore));
                Step::Acquire(Scope::global_only().with_host(v.host).with_vm(vm))
            }
            4 => Step::Agent(self.placed_host(tid), Primitive::UnregisterVm),
            5 => Step::Agent(self.placed_host(tid), Primitive::DeleteVmFiles),
            6 => {
                let disks = match self.inv.vm(vm) {
                    Some(v) => v.disks.clone(),
                    None => return Step::Fail(format!("vm {vm} vanished mid-destroy")),
                };
                for d in disks {
                    if let Err(e) = self.storage.detach(&mut self.inv, d) {
                        return Step::Fail(e.to_string());
                    }
                }
                if let Err(e) = self.inv.destroy_vm(vm) {
                    return Step::Fail(e.to_string());
                }
                Step::Continue
            }
            7 => {
                let d = Self::sample_cost(&self.cfg.cost.result_processing, &mut self.rng);
                Step::Cpu("result-processing", d)
            }
            8 => {
                let d = Self::sample_cost(&self.cfg.cost.db_delete, &mut self.rng);
                Step::Db("delete-records", d)
            }
            9 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_migrate(&mut self, tid: TaskId, stage: u32, vm: VmId) -> Step {
        match stage {
            3 => self.placement_step(),
            4 => {
                let (src_host, ds, mem) = match self.inv.vm(vm) {
                    Some(v) => (v.host, v.datastore, v.spec.mem_mb),
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                let Some(dst_host) = self.placer.pick_host(&self.inv, ds, mem, Some(src_host))
                else {
                    return Step::Fail("migration placement failed: no destination host".into());
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((dst_host, ds));
                Step::Acquire(
                    Scope::global_only()
                        .with_host(src_host)
                        .with_host2(dst_host)
                        .with_vm(vm),
                )
            }
            5 => {
                let src_host = match self.inv.vm(vm) {
                    Some(v) => v.host,
                    None => return Step::Fail("vm vanished".into()),
                };
                Step::Agent(src_host, Primitive::MigrateSource)
            }
            6 => Step::Agent(self.placed_host(tid), Primitive::MigrateDest),
            7 => {
                let dst = self.placed_host(tid);
                match self.inv.relocate_vm(vm, dst) {
                    Ok(()) => Step::Continue,
                    Err(e) => Step::Fail(e.to_string()),
                }
            }
            8 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("update-placement", d)
            }
            9 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_relocate(&mut self, tid: TaskId, stage: u32, vm: VmId, dst: DatastoreId) -> Step {
        match stage {
            3 => {
                let v = match self.inv.vm(vm) {
                    Some(v) => v,
                    None => return Step::Fail(format!("vm {vm} no longer exists")),
                };
                if v.datastore == dst {
                    return Step::Fail("relocate source and destination are the same".into());
                }
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = Some((v.host, dst));
                Step::Acquire(
                    Scope::global_only()
                        .with_host(v.host)
                        .with_datastore(dst)
                        .with_vm(vm),
                )
            }
            4 => {
                let (src_ds, total_gb) = match self.inv.vm(vm) {
                    Some(v) => {
                        let total: f64 = v
                            .disks
                            .iter()
                            .filter_map(|d| self.storage.disk(*d))
                            .map(|d| d.allocated_gb)
                            .sum();
                        (v.datastore, total)
                    }
                    None => return Step::Fail("vm vanished".into()),
                };
                if self.faults.as_ref().is_some_and(|i| i.ds_down(dst)) {
                    return Step::FailRetryable(format!("datastore {dst} unavailable"));
                }
                let new_disk = match self.storage.create_base(&mut self.inv, dst, total_gb) {
                    Ok(d) => d,
                    Err(e) => return Step::Fail(e.to_string()),
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .work_disk = Some(new_disk);
                Step::Transfer {
                    src: src_ds,
                    dst,
                    bytes: total_gb * GIB,
                    label: "relocate-copy",
                }
            }
            5 => {
                let new_disk = self
                    .tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .work_disk
                    .take()
                    .expect("produced by an earlier stage of this task");
                let old_disks = match self.inv.vm(vm) {
                    Some(v) => v.disks.clone(),
                    None => return Step::Fail("vm vanished".into()),
                };
                for d in old_disks {
                    if let Err(e) = self.storage.detach(&mut self.inv, d) {
                        return Step::Fail(e.to_string());
                    }
                }
                let v = self
                    .inv
                    .vm_mut(vm)
                    .expect("vm stays in inventory while its task runs");
                v.disks = vec![new_disk];
                v.datastore = dst;
                Step::Continue
            }
            6 => Step::Agent(self.placed_host(tid), Primitive::ReconfigureVm),
            7 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("update-placement", d)
            }
            8 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_seed(&mut self, tid: TaskId, stage: u32, template: VmId, dst: DatastoreId) -> Step {
        match stage {
            3 => {
                if self.residency.is_resident(template, dst) {
                    return Step::Fail(format!("template {template} already resident on {dst}"));
                }
                Step::Acquire(Scope::global_only().with_datastore(dst))
            }
            4 => {
                let (src_ds, gb) = match self.inv.vm(template) {
                    Some(v) => (v.datastore, v.spec.disk_gb),
                    None => return Step::Fail(format!("template {template} no longer exists")),
                };
                if self.faults.as_ref().is_some_and(|i| i.ds_down(dst)) {
                    return Step::FailRetryable(format!("datastore {dst} unavailable"));
                }
                let disk = match self.storage.create_base(&mut self.inv, dst, gb) {
                    Ok(d) => d,
                    Err(e) => return Step::Fail(e.to_string()),
                };
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .work_disk = Some(disk);
                Step::Transfer {
                    src: src_ds,
                    dst,
                    bytes: gb * GIB,
                    label: "seed-copy",
                }
            }
            5 => {
                let disk = self
                    .tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .work_disk
                    .take()
                    .expect("produced by an earlier stage of this task");
                self.residency.seed(template, dst, disk);
                Step::Continue
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.db_insert, &mut self.rng);
                Step::Db("insert-replica", d)
            }
            7 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_add_host(
        &mut self,
        now: SimTime,
        tid: TaskId,
        stage: u32,
        spec: HostSpec,
        datastores: Vec<DatastoreId>,
        out: &mut Vec<Emit>,
    ) -> Step {
        match stage {
            3 => {
                let d = Self::sample_cost(&self.cfg.cost.host_sync, &mut self.rng);
                Step::Cpu("host-sync", d)
            }
            4 => {
                let d = Self::sample_cost(&self.cfg.cost.db_insert, &mut self.rng);
                Step::Db("insert-host", d)
            }
            5 => {
                let host = self.inv.add_host(spec);
                for ds in &datastores {
                    if let Err(e) = self.inv.connect_host_datastore(host, *ds) {
                        return Step::Fail(e.to_string());
                    }
                }
                self.agents.add_host(host, self.cfg.agent_concurrency);
                let slot = self.heartbeat_hosts.len();
                self.heartbeat_hosts.push(host);
                if !self.cfg.heartbeat.is_disabled() {
                    out.push(Emit::At(
                        now + self.cfg.heartbeat.interval,
                        MgmtEvent::Heartbeat { slot },
                    ));
                }
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = datastores.first().map(|ds| (host, *ds));
                Step::Continue
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn plan_rescan(&mut self, tid: TaskId, stage: u32, host: HostId) -> Step {
        match stage {
            3 => {
                if self.inv.host(host).is_none() {
                    return Step::Fail(format!("host {host} no longer exists"));
                }
                let ds = self
                    .inv
                    .host(host)
                    .expect("host records persist for the whole run")
                    .datastores
                    .first()
                    .copied();
                self.tasks
                    .get_mut(tid)
                    .expect("task entry outlives its in-flight events")
                    .placement = ds.map(|d| (host, d));
                Step::Acquire(Scope::global_only().with_host(host))
            }
            4 => Step::Agent(host, Primitive::MountDatastore),
            5 => {
                let d = Self::sample_cost(&self.cfg.cost.db_update, &mut self.rng);
                Step::Db("update-storage", d)
            }
            6 => {
                let d = Self::sample_cost(&self.cfg.cost.finalize, &mut self.rng);
                Step::Cpu("finalize", d)
            }
            _ => Step::Done,
        }
    }

    fn placed_host(&self, tid: TaskId) -> HostId {
        self.tasks
            .get(tid)
            .expect("task entry outlives its in-flight events")
            .placement
            .expect("placement made before agent phases")
            .0
    }
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("tasks_in_flight", &self.tasks.len())
            .field("inventory", &self.inv.counts())
            .finish()
    }
}
