//! Task records: the lifecycle state and final report of one management
//! operation.

use cpsim_des::{SimDuration, SimTime};
use cpsim_inventory::{DatastoreId, DiskId, HostId, VmId};

use crate::admission::Scope;
use crate::op::Operation;

/// Which plane a phase's time belongs to, for the latency-split analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseClass {
    /// Management-server CPU work.
    Cpu,
    /// Inventory-database service.
    Db,
    /// Host-agent primitive execution.
    HostAgent,
    /// Bulk data movement.
    DataTransfer,
}

impl PhaseClass {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PhaseClass::Cpu => "cpu",
            PhaseClass::Db => "db",
            PhaseClass::HostAgent => "host-agent",
            PhaseClass::DataTransfer => "data-transfer",
        }
    }
}

/// In-flight state of a management operation.
#[derive(Clone, Debug)]
pub struct Task {
    /// The operation being executed.
    pub op: Operation,
    /// Current stage counter of the per-op phase program.
    pub stage: u32,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Admission scope currently held (empty until acquired).
    pub scope: Option<Scope>,
    /// When the task was parked by admission control, if waiting.
    pub parked_at: Option<SimTime>,
    /// Placement decision, once made.
    pub placement: Option<(HostId, DatastoreId)>,
    /// The VM this task produced (provisioning ops).
    pub produced_vm: Option<VmId>,
    /// The VM this task targets (power/reconfigure/snapshot/destroy/...).
    pub target_vm: Option<VmId>,
    /// Scratch: disk being produced by a copy in flight.
    pub work_disk: Option<DiskId>,
    /// Whether a linked clone had to make a shadow copy first.
    pub shadow_copy: bool,
    /// When the current data transfer started (for data-plane accounting).
    pub transfer_started: Option<SimTime>,
    /// Times a failed phase has been retried (fault recovery).
    pub retries: u32,
    /// The in-flight host-agent primitive was injected to hang; its
    /// completion at the phase timeout must be treated as a failure.
    pub pending_timeout: bool,
    /// The task exhausted its retry budget and gave up.
    pub aborted: bool,
    /// Partial state (VM record, scratch disk) was rolled back on failure.
    pub rolled_back: bool,
    /// Seconds of management CPU consumed.
    pub cpu_secs: f64,
    /// Seconds of database service consumed.
    pub db_secs: f64,
    /// Seconds of host-agent service consumed.
    pub agent_secs: f64,
    /// Seconds of data-transfer wall time.
    pub data_secs: f64,
    /// Seconds spent waiting in resource queues (CPU/DB/agent).
    pub queue_secs: f64,
    /// Seconds spent parked in admission control.
    pub admission_secs: f64,
    /// Per-(class, label) service-time breakdown.
    pub breakdown: Vec<(PhaseClass, &'static str, f64)>,
}

impl Task {
    /// Creates a fresh task for `op` submitted at `now`.
    pub fn new(op: Operation, now: SimTime) -> Self {
        Task {
            op,
            stage: 0,
            submitted_at: now,
            scope: None,
            parked_at: None,
            placement: None,
            produced_vm: None,
            target_vm: None,
            work_disk: None,
            shadow_copy: false,
            transfer_started: None,
            retries: 0,
            pending_timeout: false,
            aborted: false,
            rolled_back: false,
            cpu_secs: 0.0,
            db_secs: 0.0,
            agent_secs: 0.0,
            data_secs: 0.0,
            queue_secs: 0.0,
            admission_secs: 0.0,
            breakdown: Vec::with_capacity(16),
        }
    }

    /// Records `secs` of service under `class`/`label`.
    pub fn charge(&mut self, class: PhaseClass, label: &'static str, secs: f64) {
        match class {
            PhaseClass::Cpu => self.cpu_secs += secs,
            PhaseClass::Db => self.db_secs += secs,
            PhaseClass::HostAgent => self.agent_secs += secs,
            PhaseClass::DataTransfer => self.data_secs += secs,
        }
        self.breakdown.push((class, label, secs));
    }

    /// Control-plane seconds: CPU + DB + host-agent service.
    ///
    /// Host-agent time counts as control plane because it is serialized
    /// orchestration work, not bulk data movement — the split the paper's
    /// analysis uses.
    pub fn control_secs(&self) -> f64 {
        self.cpu_secs + self.db_secs + self.agent_secs
    }
}

/// Final report of a completed (or failed) task.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskReport {
    /// Operation name (`OpKind::name`).
    pub kind: &'static str,
    /// Submitter's correlation tag.
    pub tag: u64,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time.
    pub completed_at: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Management CPU seconds.
    pub cpu_secs: f64,
    /// Database seconds.
    pub db_secs: f64,
    /// Host-agent seconds.
    pub agent_secs: f64,
    /// Data-transfer wall seconds.
    pub data_secs: f64,
    /// Resource-queue wait seconds.
    pub queue_secs: f64,
    /// Admission-wait seconds.
    pub admission_secs: f64,
    /// VM produced, if any.
    pub produced_vm: Option<VmId>,
    /// VM targeted, if any.
    pub target_vm: Option<VmId>,
    /// Placement chosen, if any.
    pub placement: Option<(HostId, DatastoreId)>,
    /// Error message if the task failed.
    pub error: Option<String>,
    /// Times a failed phase was retried before the task finished.
    pub retries: u32,
    /// The task failed by exhausting its retry budget.
    pub aborted: bool,
    /// Partial state was rolled back when the task failed.
    pub rolled_back: bool,
    /// Per-(class, label) breakdown.
    pub breakdown: Vec<(PhaseClass, &'static str, f64)>,
}

impl TaskReport {
    /// Whether the task succeeded.
    pub fn is_success(&self) -> bool {
        self.error.is_none()
    }

    /// Control-plane seconds (CPU + DB + host agent).
    pub fn control_secs(&self) -> f64 {
        self.cpu_secs + self.db_secs + self.agent_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use cpsim_inventory::{EntityId, VmSpec};

    #[test]
    fn charge_accumulates_by_class() {
        let op = Operation::new(OpKind::CreateVm {
            spec: VmSpec::new(1, 1024, 10.0),
        });
        let mut t = Task::new(op, SimTime::ZERO);
        t.charge(PhaseClass::Cpu, "api-ingress", 0.02);
        t.charge(PhaseClass::Db, "insert", 0.06);
        t.charge(PhaseClass::HostAgent, "power-on", 2.8);
        t.charge(PhaseClass::DataTransfer, "copy", 100.0);
        assert_eq!(t.cpu_secs, 0.02);
        assert_eq!(t.db_secs, 0.06);
        assert_eq!(t.agent_secs, 2.8);
        assert_eq!(t.data_secs, 100.0);
        assert!((t.control_secs() - 2.88).abs() < 1e-12);
        assert_eq!(t.breakdown.len(), 4);
    }

    #[test]
    fn phase_class_names() {
        assert_eq!(PhaseClass::Cpu.name(), "cpu");
        assert_eq!(PhaseClass::DataTransfer.name(), "data-transfer");
    }

    #[test]
    fn report_success_flag() {
        let vm = VmId::from_parts(0, 1);
        let r = TaskReport {
            kind: "power-on",
            tag: 0,
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::from_secs(3),
            latency: SimDuration::from_secs(3),
            cpu_secs: 0.1,
            db_secs: 0.2,
            agent_secs: 2.0,
            data_secs: 0.0,
            queue_secs: 0.0,
            admission_secs: 0.0,
            produced_vm: Some(vm),
            target_vm: None,
            placement: None,
            error: None,
            retries: 0,
            aborted: false,
            rolled_back: false,
            breakdown: Vec::new(),
        };
        assert!(r.is_success());
        assert!((r.control_secs() - 2.3).abs() < 1e-12);
    }
}
