//! Control-plane configuration: resource sizes, admission limits, and the
//! control-cost model.

use cpsim_des::Dist;
use cpsim_hostagent::{HeartbeatSpec, HostCostModel};
use serde::{Deserialize, Serialize};

/// Concurrency caps enforced by admission control.
///
/// Defaults follow the published limits of the vCenter-era stack: 8
/// concurrent provisioning operations per host agent, 128 per datastore,
/// and 640 operations in flight at the management server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionLimits {
    /// Maximum operations in flight across the whole plane.
    pub global: u32,
    /// Maximum operations in flight touching one host.
    pub per_host: u32,
    /// Maximum operations in flight touching one datastore.
    pub per_datastore: u32,
}

impl AdmissionLimits {
    /// Effectively-unlimited admission (ablation configuration).
    pub fn unlimited() -> Self {
        AdmissionLimits {
            global: u32::MAX,
            per_host: u32::MAX,
            per_datastore: u32::MAX,
        }
    }
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits {
            global: 640,
            per_host: 8,
            per_datastore: 128,
        }
    }
}

/// Service-time distributions (seconds) for control-plane phases.
///
/// Calibrated so that, with the default resource sizes, one linked-clone
/// deployment chain (clone + fencing reconfigure) consumes ~120 ms of
/// management CPU and ~300 ms of database time. With a 4-connection pool
/// that puts the database ceiling at roughly 10 deployments/second — the
/// management plane saturates while the storage arrays sit idle, exactly
/// the regime the paper reports for bandwidth-conserving provisioning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlCostModel {
    /// API ingress: session validation, request parsing (CPU).
    pub api_ingress: Dist,
    /// Base placement computation (CPU); see `placement_per_host_us`.
    pub placement_base: Dist,
    /// Additional placement CPU per candidate host, microseconds.
    pub placement_per_host_us: f64,
    /// Task-record insert (DB).
    pub db_task_record: Dist,
    /// Entity insert, e.g. new VM record (DB).
    pub db_insert: Dist,
    /// Entity update (DB).
    pub db_update: Dist,
    /// Entity delete (DB).
    pub db_delete: Dist,
    /// Per-host-primitive result processing (CPU).
    pub result_processing: Dist,
    /// Task finalization: permissions, events, alarms (CPU).
    pub finalize: Dist,
    /// One-time host synchronization during add-host (CPU).
    pub host_sync: Dist,
}

impl Default for ControlCostModel {
    fn default() -> Self {
        let ln = |median: f64, sigma: f64| Dist::log_normal(median, sigma).expect("valid params");
        ControlCostModel {
            api_ingress: ln(0.020, 0.40),
            placement_base: ln(0.010, 0.30),
            placement_per_host_us: 200.0,
            db_task_record: ln(0.020, 0.30),
            db_insert: ln(0.150, 0.35),
            db_update: ln(0.060, 0.35),
            db_delete: ln(0.080, 0.35),
            result_processing: ln(0.012, 0.30),
            finalize: ln(0.015, 0.30),
            host_sync: ln(25.0, 0.30),
        }
    }
}

/// Full control-plane configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneConfig {
    /// Management-server CPU cores available for orchestration work.
    pub cpu_cores: u32,
    /// Inventory-database connection pool size.
    pub db_connections: u32,
    /// Admission limits.
    pub limits: AdmissionLimits,
    /// Control-phase cost model.
    pub cost: ControlCostModel,
    /// Host-primitive cost model.
    pub host_cost: HostCostModel,
    /// Heartbeat cadence and costs.
    pub heartbeat: HeartbeatSpec,
    /// Host-agent concurrency (simultaneous primitives per host).
    pub agent_concurrency: u32,
    /// Initial physical allocation of a linked-clone delta, GiB.
    pub linked_delta_gb: f64,
    /// Metadata bytes moved when creating a linked clone (near-zero data
    /// plane — the paper's "bandwidth-conserving" mechanism).
    pub linked_metadata_bytes: f64,
    /// Initial allocation of a snapshot delta, GiB.
    pub snapshot_delta_gb: f64,
    /// Number of management-server shards; operations are spread across
    /// shards, multiplying CPU and DB capacity (scale-out ablation,
    /// modeled as `shards`× larger resource pools).
    pub shards: u32,
    /// Whether DB writes of one task are batched into fewer, larger
    /// statements (ablation; reduces DB statements per op).
    pub db_batching: bool,
    /// Whether placement prefers datastores where the clone source is
    /// already resident. The era-accurate default is `false`: placement
    /// spreads by free space and linked clones shadow-copy on first use of
    /// a datastore — the behavior that makes proactive template seeding
    /// (cloud reconfiguration) valuable. Set `true` for the
    /// residency-aware placement ablation.
    pub placement_prefers_resident: bool,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            cpu_cores: 4,
            db_connections: 4,
            limits: AdmissionLimits::default(),
            cost: ControlCostModel::default(),
            host_cost: HostCostModel::default(),
            heartbeat: HeartbeatSpec::default(),
            agent_concurrency: 8,
            linked_delta_gb: 1.0,
            linked_metadata_bytes: 16.0 * 1024.0 * 1024.0,
            snapshot_delta_gb: 0.5,
            shards: 1,
            db_batching: false,
            placement_prefers_resident: false,
        }
    }
}

impl ControlPlaneConfig {
    /// Effective CPU servers after scale-out.
    pub fn effective_cores(&self) -> u32 {
        self.cpu_cores.saturating_mul(self.shards.max(1))
    }

    /// Effective DB connections after scale-out.
    pub fn effective_db_connections(&self) -> u32 {
        self.db_connections.saturating_mul(self.shards.max(1))
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpu_cores == 0 {
            return Err("cpu_cores must be positive".into());
        }
        if self.db_connections == 0 {
            return Err("db_connections must be positive".into());
        }
        if self.agent_concurrency == 0 {
            return Err("agent_concurrency must be positive".into());
        }
        if self.shards == 0 {
            return Err("shards must be positive".into());
        }
        if !(self.linked_delta_gb.is_finite() && self.linked_delta_gb >= 0.0) {
            return Err("linked_delta_gb must be finite and >= 0".into());
        }
        if !(self.linked_metadata_bytes.is_finite() && self.linked_metadata_bytes >= 0.0) {
            return Err("linked_metadata_bytes must be finite and >= 0".into());
        }
        if !(self.snapshot_delta_gb.is_finite() && self.snapshot_delta_gb >= 0.0) {
            return Err("snapshot_delta_gb must be finite and >= 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ControlPlaneConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_caught() {
        let c = ControlPlaneConfig {
            cpu_cores: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ControlPlaneConfig {
            linked_delta_gb: f64::NAN,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ControlPlaneConfig {
            shards: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn scale_out_multiplies_resources() {
        let c = ControlPlaneConfig {
            shards: 4,
            ..Default::default()
        };
        assert_eq!(c.effective_cores(), 16);
        assert_eq!(c.effective_db_connections(), 16);
    }

    #[test]
    fn unlimited_limits() {
        let l = AdmissionLimits::unlimited();
        assert_eq!(l.global, u32::MAX);
    }

    #[test]
    fn serde_round_trip() {
        let c = ControlPlaneConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: ControlPlaneConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn db_insert_dominates_update() {
        let c = ControlCostModel::default();
        assert!(c.db_insert.mean().unwrap() > c.db_update.mean().unwrap());
    }
}
