//! The management control plane — the subject of the reproduced paper.
//!
//! [`ControlPlane`] models a centralized management server (vCenter-style)
//! orchestrating a fleet of hosts and datastores:
//!
//! - every management [`Operation`] runs as a *phase program* that
//!   alternates between management-server CPU work, inventory-database
//!   statements, host-agent primitives, and bulk data transfers;
//! - CPU and DB are bounded multi-server queues, host agents have per-host
//!   concurrency caps, and datastores share copy bandwidth — so saturation
//!   emerges from the same resources that bound the real system;
//! - admission control enforces global / per-host / per-datastore
//!   concurrency limits and per-VM operation locks, parking excess tasks in
//!   a FIFO pending queue;
//! - host heartbeats impose background CPU + DB load that scales with
//!   inventory size.
//!
//! The plane is a deterministic state machine: callers feed it
//! [`MgmtEvent`]s with explicit timestamps and route the returned
//! [`Emit`]s — either follow-up events to schedule or task completions.
//! The `cpsim` facade crate wires it onto the DES kernel.
//!
//! # Example: one linked clone, end to end
//!
//! ```
//! use cpsim_des::{SimTime, Streams};
//! use cpsim_inventory::{DatastoreSpec, HostSpec, VmSpec};
//! use cpsim_mgmt::{CloneMode, ControlPlane, ControlPlaneConfig, Emit, MgmtEvent, OpKind};
//!
//! let mut plane = ControlPlane::new(ControlPlaneConfig::default(), Streams::new(7));
//! let ds = plane.add_datastore(DatastoreSpec::new("ds0", 4096.0, 200.0));
//! let host = plane.add_host(HostSpec::new("esx0", 24_000, 131_072));
//! plane.connect(host, ds).unwrap();
//! let template = plane
//!     .install_template("tmpl", VmSpec::new(2, 4096, 40.0), host, ds)
//!     .unwrap();
//!
//! // Drive to completion by hand (the cpsim crate does this on the DES).
//! let mut pending: Vec<Emit> = Vec::new();
//! plane.submit(
//!     SimTime::ZERO,
//!     OpKind::CloneVm { source: template, mode: CloneMode::Linked },
//!     &mut pending,
//! );
//! let mut done = 0;
//! while let Some(emit) = pending.pop() {
//!     match emit {
//!         Emit::At(t, ev) => pending.extend(plane.handle_collect(t, ev)),
//!         Emit::Done(_, report) => {
//!             done += 1;
//!             assert!(report.latency.as_secs_f64() > 0.0);
//!         }
//!         Emit::Failed(_, r) => panic!("unexpected failure: {:?}", r.error),
//!     }
//! }
//! assert_eq!(done, 1);
//! assert_eq!(plane.inventory().counts().vms, 2); // template + clone
//! ```

pub mod admission;
pub mod config;
pub mod gate;
pub mod op;
pub mod placement;
pub mod plane;
pub mod recovery;
pub mod stats;
pub mod task;

pub use admission::{AdmissionControl, Scope};
pub use config::{AdmissionLimits, ControlCostModel, ControlPlaneConfig};
pub use cpsim_faults::{FaultKind, RecoveryPolicy};
pub use gate::{GateDecision, PlacementGate};
pub use op::{AddHostParams, CloneMode, OpKind, Operation};
pub use placement::{PlacementPolicy, Placer};
pub use plane::{ControlPlane, Emit, MgmtEvent};
pub use recovery::FaultInjector;
pub use stats::MgmtStats;
pub use task::{PhaseClass, Task, TaskReport};
