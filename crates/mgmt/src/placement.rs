//! The placement engine: chooses a host and datastore for provisioning and
//! migration targets.
//!
//! Placement is a control-plane cost center: the real system scans the
//! inventory to score candidates, so our *simulated* CPU charge grows
//! linearly with host count (see `ControlCostModel::placement_per_host_us`).
//! The wall-clock cost of deciding, however, is sublinear: the inventory
//! maintains candidate indexes (datastores by free space, hosts by load)
//! so a decision is a bounded walk from the best candidate rather than a
//! full scan. The policy itself is deliberately simple and deterministic,
//! and the indexed path is property-tested against the straightforward
//! scan (`place_reference`) it replaced.

use cpsim_inventory::{DatastoreId, HostId, Inventory, VmId};
use cpsim_storage::TemplateResidency;
use serde::{Deserialize, Serialize};

/// Placement policies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Least memory-utilized host; most-free-space datastore, preferring
    /// datastores where the clone source is resident (linked clones avoid
    /// shadow copies there).
    #[default]
    LeastLoaded,
    /// Rotate across hosts (used by ablations to remove load awareness).
    RoundRobin,
}

/// Stateful placement engine.
#[derive(Clone, Debug, Default)]
pub struct Placer {
    policy: PlacementPolicy,
    round_robin_cursor: usize,
}

impl Placer {
    /// Creates a placer with `policy`.
    pub fn new(policy: PlacementPolicy) -> Self {
        Placer {
            policy,
            round_robin_cursor: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Chooses `(host, datastore)` for a new VM needing `disk_gb` of space
    /// and `mem_mb` of memory headroom.
    ///
    /// `prefer_resident`: when provisioning a linked clone of a template,
    /// datastores already holding the template's base are preferred.
    ///
    /// Returns `None` when no (connected host, datastore-with-space) pair
    /// exists.
    pub fn place(
        &mut self,
        inv: &Inventory,
        residency: &TemplateResidency,
        disk_gb: f64,
        mem_mb: u64,
        prefer_resident: Option<VmId>,
    ) -> Option<(HostId, DatastoreId)> {
        // Resident pass: a template lives on a handful of datastores at
        // most, so sorting its residency list is cheap. Order matches the
        // index: most free space first, lower id on ties.
        if let Some(t) = prefer_resident {
            let mut resident: Vec<(DatastoreId, f64)> = residency
                .locations(t)
                .filter_map(|ds_id| {
                    let ds = inv.datastore(ds_id)?;
                    (ds.free_gb() >= disk_gb && !ds.hosts.is_empty()).then(|| (ds_id, ds.free_gb()))
                })
                .collect();
            resident.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (ds, _) in resident {
                if let Some(host) = self.pick_host(inv, ds, mem_mb, None) {
                    return Some((host, ds));
                }
            }
        }
        // General pass: walk datastores most-free-first straight off the
        // index; once one is too small, all remaining ones are too. A
        // resident datastore that failed the host pick above is skipped —
        // retrying it cannot succeed.
        for (ds, free) in inv.datastores_by_free() {
            if free < disk_gb {
                break;
            }
            if matches!(prefer_resident, Some(t) if residency.is_resident(t, ds)) {
                continue;
            }
            if let Some(host) = self.pick_host(inv, ds, mem_mb, None) {
                return Some((host, ds));
            }
        }
        None
    }

    /// Chooses a migration destination for a VM on `exclude` needing
    /// `mem_mb`, reachable from `ds`.
    pub fn pick_host(
        &mut self,
        inv: &Inventory,
        ds: DatastoreId,
        mem_mb: u64,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let eligible = |h: HostId| {
            Some(h) != exclude
                && inv
                    .host(h)
                    .map(|host| host.accepts_placements() && host.mem_free_mb() >= mem_mb)
                    .unwrap_or(false)
        };
        match self.policy {
            // The index iterates hosts in (memory pressure, registered-VM
            // count, id) order — the first eligible one is the least
            // loaded. The VM-count tiebreak matters: without it, a fleet
            // of powered-off VMs would all pile onto the lowest host id.
            PlacementPolicy::LeastLoaded => inv.hosts_by_load(ds).find(|&h| eligible(h)),
            // Round-robin depends on the datastore's connection order, not
            // load order, so it scans the connection list directly.
            PlacementPolicy::RoundRobin => {
                let candidates: Vec<HostId> = inv
                    .datastore(ds)?
                    .hosts
                    .iter()
                    .copied()
                    .filter(|&h| eligible(h))
                    .collect();
                if candidates.is_empty() {
                    return None;
                }
                let pick = candidates[self.round_robin_cursor % candidates.len()];
                self.round_robin_cursor = self.round_robin_cursor.wrapping_add(1);
                Some(pick)
            }
        }
    }

    /// Placement CPU cost in seconds for an inventory of `hosts` hosts.
    pub fn cost_secs(base_secs: f64, per_host_us: f64, hosts: usize) -> f64 {
        base_secs + per_host_us * 1e-6 * hosts as f64
    }
}

#[cfg(test)]
impl Placer {
    /// The pre-index placement algorithm: a full scan over every
    /// datastore, kept as the reference oracle the indexed path is
    /// property-tested against.
    pub fn place_reference(
        &mut self,
        inv: &Inventory,
        residency: &TemplateResidency,
        disk_gb: f64,
        mem_mb: u64,
        prefer_resident: Option<VmId>,
    ) -> Option<(HostId, DatastoreId)> {
        // Candidate datastores with space, split into resident-preferred
        // and the rest.
        let mut resident: Vec<(DatastoreId, f64)> = Vec::new();
        let mut others: Vec<(DatastoreId, f64)> = Vec::new();
        for (ds_id, ds) in inv.datastores() {
            if ds.free_gb() < disk_gb || ds.hosts.is_empty() {
                continue;
            }
            let bucket = match prefer_resident {
                Some(t) if residency.is_resident(t, ds_id) => &mut resident,
                _ => &mut others,
            };
            bucket.push((ds_id, ds.free_gb()));
        }
        // Try resident datastores first, then any; a resident datastore
        // might have no eligible host, so fall through in preference
        // order (most free space, lower id on ties).
        for list in [&mut resident, &mut others] {
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for &(ds, _) in list.iter() {
                if let Some(host) = self.pick_host_reference(inv, ds, mem_mb, None) {
                    return Some((host, ds));
                }
            }
        }
        None
    }

    /// The pre-index host pick: collect-then-scan over the datastore's
    /// connection list.
    pub fn pick_host_reference(
        &mut self,
        inv: &Inventory,
        ds: DatastoreId,
        mem_mb: u64,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let candidates: Vec<HostId> = inv
            .datastore(ds)?
            .hosts
            .iter()
            .copied()
            .filter(|h| Some(*h) != exclude)
            .filter(|h| {
                inv.host(*h)
                    .map(|host| host.accepts_placements() && host.mem_free_mb() >= mem_mb)
                    .unwrap_or(false)
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            PlacementPolicy::LeastLoaded => candidates.into_iter().min_by(|a, b| {
                let (ha, hb) = (
                    inv.host(*a).expect("filtered"),
                    inv.host(*b).expect("filtered"),
                );
                ha.mem_utilization()
                    .total_cmp(&hb.mem_utilization())
                    .then_with(|| ha.vms.len().cmp(&hb.vms.len()))
                    .then_with(|| a.cmp(b))
            }),
            PlacementPolicy::RoundRobin => {
                let pick = candidates[self.round_robin_cursor % candidates.len()];
                self.round_robin_cursor = self.round_robin_cursor.wrapping_add(1);
                Some(pick)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::{DatastoreSpec, EntityId, HostSpec, VmSpec};

    fn dc(hosts: usize, datastores: usize) -> (Inventory, Vec<HostId>, Vec<DatastoreId>) {
        let mut inv = Inventory::new();
        let ds_ids: Vec<_> = (0..datastores)
            .map(|i| inv.add_datastore(DatastoreSpec::new(format!("ds{i}"), 1000.0, 100.0)))
            .collect();
        let host_ids: Vec<_> = (0..hosts)
            .map(|i| inv.add_host(HostSpec::new(format!("h{i}"), 20_000, 65_536)))
            .collect();
        for &h in &host_ids {
            for &d in &ds_ids {
                inv.connect_host_datastore(h, d).unwrap();
            }
        }
        (inv, host_ids, ds_ids)
    }

    #[test]
    fn least_loaded_prefers_idle_host() {
        let (mut inv, hosts, ds) = dc(3, 1);
        // Load host 0 and 1.
        for &h in &hosts[..2] {
            let vm = inv
                .create_vm("l", VmSpec::new(4, 32_768, 10.0), h, ds[0])
                .unwrap();
            inv.power_on(vm).unwrap();
        }
        let mut p = Placer::new(PlacementPolicy::LeastLoaded);
        let (host, _) = p
            .place(&inv, &TemplateResidency::new(), 10.0, 1024, None)
            .unwrap();
        assert_eq!(host, hosts[2]);
    }

    #[test]
    fn prefers_resident_datastore_for_linked_clones() {
        let (mut inv, hosts, ds) = dc(2, 3);
        let template = inv
            .create_vm("tmpl", VmSpec::new(1, 1024, 40.0), hosts[0], ds[0])
            .unwrap();
        // Make ds[2] hold a seeded copy; ds[1] has more free space but is
        // not resident.
        inv.adjust_datastore_usage(ds[2], 500.0).unwrap();
        let mut residency = TemplateResidency::new();
        let seeded_disk = cpsim_inventory::DiskId::from_parts(0, 1);
        residency.seed(template, ds[2], seeded_disk);
        let mut p = Placer::new(PlacementPolicy::LeastLoaded);
        let (_, chosen) = p
            .place(&inv, &residency, 10.0, 1024, Some(template))
            .unwrap();
        assert_eq!(chosen, ds[2], "resident datastore wins despite less space");
        // Without the preference, the emptier datastore wins.
        let (_, chosen) = p.place(&inv, &residency, 10.0, 1024, None).unwrap();
        assert_ne!(chosen, ds[2]);
    }

    #[test]
    fn no_space_returns_none() {
        let (mut inv, _hosts, ds) = dc(1, 1);
        inv.adjust_datastore_usage(ds[0], 999.0).unwrap();
        let mut p = Placer::default();
        assert!(p
            .place(&inv, &TemplateResidency::new(), 10.0, 1024, None)
            .is_none());
    }

    #[test]
    fn no_memory_returns_none() {
        let (mut inv, hosts, ds) = dc(1, 1);
        let vm = inv
            .create_vm("big", VmSpec::new(8, 65_000, 10.0), hosts[0], ds[0])
            .unwrap();
        inv.power_on(vm).unwrap();
        let mut p = Placer::default();
        assert!(p
            .place(&inv, &TemplateResidency::new(), 10.0, 10_000, None)
            .is_none());
    }

    #[test]
    fn round_robin_rotates() {
        let (inv, hosts, ds) = dc(3, 1);
        let mut p = Placer::new(PlacementPolicy::RoundRobin);
        let picks: Vec<_> = (0..3)
            .map(|_| p.pick_host(&inv, ds[0], 1024, None).unwrap())
            .collect();
        assert_eq!(picks, hosts);
    }

    #[test]
    fn exclude_skips_source_host() {
        let (inv, hosts, ds) = dc(2, 1);
        let mut p = Placer::default();
        let pick = p.pick_host(&inv, ds[0], 1024, Some(hosts[0])).unwrap();
        assert_eq!(pick, hosts[1]);
        // Excluding the only host yields none.
        let (inv1, hosts1, ds1) = dc(1, 1);
        assert!(p.pick_host(&inv1, ds1[0], 1024, Some(hosts1[0])).is_none());
    }

    #[test]
    fn cost_scales_with_hosts() {
        let c64 = Placer::cost_secs(0.010, 200.0, 64);
        let c1024 = Placer::cost_secs(0.010, 200.0, 1024);
        assert!((c64 - 0.0228).abs() < 1e-9);
        assert!(c1024 > 4.0 * c64);
    }

    mod equivalence {
        //! The indexed placement path must decide exactly what the full
        //! scan it replaced decides, across random inventories, residency
        //! maps, and capacity churn.

        use super::*;
        use cpsim_inventory::DiskId;
        use proptest::prelude::*;

        #[derive(Clone, Debug)]
        enum Churn {
            AddHost {
                mem_gb: u8,
            },
            AddDatastore {
                cap: u8,
            },
            Connect {
                h: usize,
                d: usize,
            },
            CreateVm {
                h: usize,
                d: usize,
                mem_gb: u8,
                disk: u8,
            },
            PowerOn {
                v: usize,
            },
            PowerOff {
                v: usize,
            },
            Destroy {
                v: usize,
            },
            AdjustDs {
                d: usize,
                delta: i8,
            },
            SeedResidency {
                v: usize,
                d: usize,
            },
        }

        fn churn_strategy() -> impl Strategy<Value = Churn> {
            prop_oneof![
                (1u8..64).prop_map(|mem_gb| Churn::AddHost { mem_gb }),
                (1u8..100).prop_map(|cap| Churn::AddDatastore { cap }),
                ((0usize..8), (0usize..8)).prop_map(|(h, d)| Churn::Connect { h, d }),
                ((0usize..8), (0usize..8), (1u8..32), (1u8..40))
                    .prop_map(|(h, d, mem_gb, disk)| Churn::CreateVm { h, d, mem_gb, disk }),
                (0usize..32).prop_map(|v| Churn::PowerOn { v }),
                (0usize..32).prop_map(|v| Churn::PowerOff { v }),
                (0usize..32).prop_map(|v| Churn::Destroy { v }),
                ((0usize..8), (-50i8..50)).prop_map(|(d, delta)| Churn::AdjustDs { d, delta }),
                ((0usize..32), (0usize..8)).prop_map(|(v, d)| Churn::SeedResidency { v, d }),
            ]
        }

        fn query_strategy() -> impl Strategy<Value = (u8, u8, usize)> {
            // (disk_gb, mem_gb, prefer-resident pick: 0 = none, else vm
            // index + 1)
            ((1u8..50), (1u8..48), (0usize..16))
        }

        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 48,
                .. ProptestConfig::default()
            })]

            #[test]
            fn indexed_place_matches_reference_scan(
                ops in proptest::collection::vec(churn_strategy(), 1..100),
                queries in proptest::collection::vec(query_strategy(), 1..24),
            ) {
                let mut inv = Inventory::new();
                let mut residency = TemplateResidency::new();
                let mut hosts: Vec<HostId> = Vec::new();
                let mut dss: Vec<DatastoreId> = Vec::new();
                let mut vms: Vec<VmId> = Vec::new();
                let mut seeded = 0u32;
                for op in ops {
                    match op {
                        Churn::AddHost { mem_gb } => {
                            hosts.push(inv.add_host(HostSpec::new(
                                format!("h{}", hosts.len()),
                                8_000,
                                u64::from(mem_gb) * 1024,
                            )));
                        }
                        Churn::AddDatastore { cap } => {
                            dss.push(inv.add_datastore(DatastoreSpec::new(
                                format!("ds{}", dss.len()),
                                f64::from(cap) * 10.0,
                                50.0,
                            )));
                        }
                        Churn::Connect { h, d } => {
                            if let (Some(&h), Some(&d)) = (hosts.get(h), dss.get(d)) {
                                let _ = inv.connect_host_datastore(h, d);
                            }
                        }
                        Churn::CreateVm { h, d, mem_gb, disk } => {
                            if let (Some(&h), Some(&d)) = (hosts.get(h), dss.get(d)) {
                                if let Ok(vm) = inv.create_vm(
                                    format!("vm{}", vms.len()),
                                    VmSpec::new(2, u64::from(mem_gb) * 1024, f64::from(disk)),
                                    h,
                                    d,
                                ) {
                                    vms.push(vm);
                                }
                            }
                        }
                        Churn::PowerOn { v } => {
                            if let Some(&vm) = vms.get(v) {
                                let _ = inv.power_on(vm);
                            }
                        }
                        Churn::PowerOff { v } => {
                            if let Some(&vm) = vms.get(v) {
                                let _ = inv.power_off(vm);
                            }
                        }
                        Churn::Destroy { v } => {
                            if let Some(&vm) = vms.get(v) {
                                let _ = inv.destroy_vm(vm);
                            }
                        }
                        Churn::AdjustDs { d, delta } => {
                            if let Some(&d) = dss.get(d) {
                                let _ = inv.adjust_datastore_usage(d, f64::from(delta));
                            }
                        }
                        Churn::SeedResidency { v, d } => {
                            if let (Some(&vm), Some(&d)) = (vms.get(v), dss.get(d)) {
                                seeded += 1;
                                residency.seed(vm, d, DiskId::from_parts(seeded, 1));
                            }
                        }
                    }
                }
                inv.check_invariants().expect("index in sync after churn");

                for policy in [PlacementPolicy::LeastLoaded, PlacementPolicy::RoundRobin] {
                    // Separate placers so round-robin cursors advance
                    // independently; equal decisions keep them in lockstep.
                    let mut indexed = Placer::new(policy);
                    let mut reference = Placer::new(policy);
                    for &(disk, mem_gb, prefer) in &queries {
                        let template = match prefer {
                            0 => None,
                            i => vms.get(i - 1).copied(),
                        };
                        let disk_gb = f64::from(disk);
                        let mem_mb = u64::from(mem_gb) * 1024;
                        let got =
                            indexed.place(&inv, &residency, disk_gb, mem_mb, template);
                        let want = reference
                            .place_reference(&inv, &residency, disk_gb, mem_mb, template);
                        prop_assert_eq!(
                            got, want,
                            "policy {:?}, disk {} mem {} template {:?}",
                            policy, disk_gb, mem_mb, template
                        );
                    }
                }
            }
        }
    }
}
