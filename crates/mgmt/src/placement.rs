//! The placement engine: chooses a host and datastore for provisioning and
//! migration targets.
//!
//! Placement is a control-plane cost center: the real system scans the
//! inventory to score candidates, so our CPU charge grows linearly with
//! host count (see `ControlCostModel::placement_per_host_us`). The policy
//! itself is deliberately simple and deterministic.

use cpsim_inventory::{DatastoreId, HostId, Inventory, VmId};
use cpsim_storage::TemplateResidency;
use serde::{Deserialize, Serialize};

/// Placement policies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Least memory-utilized host; most-free-space datastore, preferring
    /// datastores where the clone source is resident (linked clones avoid
    /// shadow copies there).
    #[default]
    LeastLoaded,
    /// Rotate across hosts (used by ablations to remove load awareness).
    RoundRobin,
}

/// Stateful placement engine.
#[derive(Clone, Debug, Default)]
pub struct Placer {
    policy: PlacementPolicy,
    round_robin_cursor: usize,
}

impl Placer {
    /// Creates a placer with `policy`.
    pub fn new(policy: PlacementPolicy) -> Self {
        Placer {
            policy,
            round_robin_cursor: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Chooses `(host, datastore)` for a new VM needing `disk_gb` of space
    /// and `mem_mb` of memory headroom.
    ///
    /// `prefer_resident`: when provisioning a linked clone of a template,
    /// datastores already holding the template's base are preferred.
    ///
    /// Returns `None` when no (connected host, datastore-with-space) pair
    /// exists.
    pub fn place(
        &mut self,
        inv: &Inventory,
        residency: &TemplateResidency,
        disk_gb: f64,
        mem_mb: u64,
        prefer_resident: Option<VmId>,
    ) -> Option<(HostId, DatastoreId)> {
        // Candidate datastores with space, split into resident-preferred
        // and the rest.
        let mut resident: Vec<(DatastoreId, f64)> = Vec::new();
        let mut others: Vec<(DatastoreId, f64)> = Vec::new();
        for (ds_id, ds) in inv.datastores() {
            if ds.free_gb() < disk_gb || ds.hosts.is_empty() {
                continue;
            }
            let bucket = match prefer_resident {
                Some(t) if residency.is_resident(t, ds_id) => &mut resident,
                _ => &mut others,
            };
            bucket.push((ds_id, ds.free_gb()));
        }
        let pick_ds = |list: &[(DatastoreId, f64)]| -> Option<DatastoreId> {
            list.iter()
                .max_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("free space is finite")
                        .then_with(|| b.0.cmp(&a.0)) // lower id wins ties
                })
                .map(|(id, _)| *id)
        };
        // Try resident datastores first, then any; a resident datastore
        // might have no eligible host, so fall through.
        for ds_candidates in [&resident, &others] {
            let mut list = ds_candidates.clone();
            while !list.is_empty() {
                let ds = pick_ds(&list).expect("non-empty");
                if let Some(host) = self.pick_host(inv, ds, mem_mb, None) {
                    return Some((host, ds));
                }
                list.retain(|(id, _)| *id != ds);
            }
        }
        None
    }

    /// Chooses a migration destination for a VM on `exclude` needing
    /// `mem_mb`, reachable from `ds`.
    pub fn pick_host(
        &mut self,
        inv: &Inventory,
        ds: DatastoreId,
        mem_mb: u64,
        exclude: Option<HostId>,
    ) -> Option<HostId> {
        let candidates: Vec<HostId> = inv
            .datastore(ds)?
            .hosts
            .iter()
            .copied()
            .filter(|h| Some(*h) != exclude)
            .filter(|h| {
                inv.host(*h)
                    .map(|host| host.accepts_placements() && host.mem_free_mb() >= mem_mb)
                    .unwrap_or(false)
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.policy {
            PlacementPolicy::LeastLoaded => candidates.into_iter().min_by(|a, b| {
                let (ha, hb) = (
                    inv.host(*a).expect("filtered"),
                    inv.host(*b).expect("filtered"),
                );
                // Memory pressure first; among equally-loaded hosts,
                // spread by registered-VM count (without this, a fleet of
                // powered-off VMs would all pile onto the lowest host id).
                ha.mem_utilization()
                    .partial_cmp(&hb.mem_utilization())
                    .expect("utilization is finite")
                    .then_with(|| ha.vms.len().cmp(&hb.vms.len()))
                    .then_with(|| a.cmp(b))
            }),
            PlacementPolicy::RoundRobin => {
                let pick = candidates[self.round_robin_cursor % candidates.len()];
                self.round_robin_cursor = self.round_robin_cursor.wrapping_add(1);
                Some(pick)
            }
        }
    }

    /// Placement CPU cost in seconds for an inventory of `hosts` hosts.
    pub fn cost_secs(base_secs: f64, per_host_us: f64, hosts: usize) -> f64 {
        base_secs + per_host_us * 1e-6 * hosts as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::{DatastoreSpec, EntityId, HostSpec, VmSpec};

    fn dc(hosts: usize, datastores: usize) -> (Inventory, Vec<HostId>, Vec<DatastoreId>) {
        let mut inv = Inventory::new();
        let ds_ids: Vec<_> = (0..datastores)
            .map(|i| inv.add_datastore(DatastoreSpec::new(format!("ds{i}"), 1000.0, 100.0)))
            .collect();
        let host_ids: Vec<_> = (0..hosts)
            .map(|i| inv.add_host(HostSpec::new(format!("h{i}"), 20_000, 65_536)))
            .collect();
        for &h in &host_ids {
            for &d in &ds_ids {
                inv.connect_host_datastore(h, d).unwrap();
            }
        }
        (inv, host_ids, ds_ids)
    }

    #[test]
    fn least_loaded_prefers_idle_host() {
        let (mut inv, hosts, ds) = dc(3, 1);
        // Load host 0 and 1.
        for &h in &hosts[..2] {
            let vm = inv
                .create_vm("l", VmSpec::new(4, 32_768, 10.0), h, ds[0])
                .unwrap();
            inv.power_on(vm).unwrap();
        }
        let mut p = Placer::new(PlacementPolicy::LeastLoaded);
        let (host, _) = p
            .place(&inv, &TemplateResidency::new(), 10.0, 1024, None)
            .unwrap();
        assert_eq!(host, hosts[2]);
    }

    #[test]
    fn prefers_resident_datastore_for_linked_clones() {
        let (mut inv, hosts, ds) = dc(2, 3);
        let template = inv
            .create_vm("tmpl", VmSpec::new(1, 1024, 40.0), hosts[0], ds[0])
            .unwrap();
        // Make ds[2] hold a seeded copy; ds[1] has more free space but is
        // not resident.
        inv.adjust_datastore_usage(ds[2], 500.0).unwrap();
        let mut residency = TemplateResidency::new();
        let seeded_disk = cpsim_inventory::DiskId::from_parts(0, 1);
        residency.seed(template, ds[2], seeded_disk);
        let mut p = Placer::new(PlacementPolicy::LeastLoaded);
        let (_, chosen) = p
            .place(&inv, &residency, 10.0, 1024, Some(template))
            .unwrap();
        assert_eq!(chosen, ds[2], "resident datastore wins despite less space");
        // Without the preference, the emptier datastore wins.
        let (_, chosen) = p.place(&inv, &residency, 10.0, 1024, None).unwrap();
        assert_ne!(chosen, ds[2]);
    }

    #[test]
    fn no_space_returns_none() {
        let (mut inv, _hosts, ds) = dc(1, 1);
        inv.adjust_datastore_usage(ds[0], 999.0).unwrap();
        let mut p = Placer::default();
        assert!(p
            .place(&inv, &TemplateResidency::new(), 10.0, 1024, None)
            .is_none());
    }

    #[test]
    fn no_memory_returns_none() {
        let (mut inv, hosts, ds) = dc(1, 1);
        let vm = inv
            .create_vm("big", VmSpec::new(8, 65_000, 10.0), hosts[0], ds[0])
            .unwrap();
        inv.power_on(vm).unwrap();
        let mut p = Placer::default();
        assert!(p
            .place(&inv, &TemplateResidency::new(), 10.0, 10_000, None)
            .is_none());
    }

    #[test]
    fn round_robin_rotates() {
        let (inv, hosts, ds) = dc(3, 1);
        let mut p = Placer::new(PlacementPolicy::RoundRobin);
        let picks: Vec<_> = (0..3)
            .map(|_| p.pick_host(&inv, ds[0], 1024, None).unwrap())
            .collect();
        assert_eq!(picks, hosts);
    }

    #[test]
    fn exclude_skips_source_host() {
        let (inv, hosts, ds) = dc(2, 1);
        let mut p = Placer::default();
        let pick = p.pick_host(&inv, ds[0], 1024, Some(hosts[0])).unwrap();
        assert_eq!(pick, hosts[1]);
        // Excluding the only host yields none.
        let (inv1, hosts1, ds1) = dc(1, 1);
        assert!(p.pick_host(&inv1, ds1[0], 1024, Some(hosts1[0])).is_none());
    }

    #[test]
    fn cost_scales_with_hosts() {
        let c64 = Placer::cost_secs(0.010, 200.0, 64);
        let c1024 = Placer::cost_secs(0.010, 200.0, 1024);
        assert!((c64 - 0.0228).abs() < 1e-9);
        assert!(c1024 > 4.0 * c64);
    }
}
