//! Management operations: the vocabulary of work the control plane
//! executes.

use cpsim_inventory::{DatastoreId, HostId, HostSpec, VmId, VmSpec};
use serde::{Deserialize, Serialize};

/// How a clone materializes its disks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CloneMode {
    /// Copy every byte of the source disk (bandwidth-bound).
    Full,
    /// Create a copy-on-write delta over the source's base disk
    /// (control-plane-bound; requires the base to be resident on the
    /// destination datastore, else a shadow copy is made first).
    Linked,
    /// Fork the source in place on its own host and datastore: no data
    /// movement at all and the cheapest host-side work, but zero
    /// placement freedom — every clone lands on the parent's host.
    Instant,
}

impl CloneMode {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CloneMode::Full => "full",
            CloneMode::Linked => "linked",
            CloneMode::Instant => "instant",
        }
    }
}

/// A management operation submitted to the control plane.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// Create a new VM from scratch.
    CreateVm {
        /// Shape of the VM.
        spec: VmSpec,
    },
    /// Clone `source` into a new VM.
    CloneVm {
        /// The VM or template to clone.
        source: VmId,
        /// Full copy or linked clone.
        mode: CloneMode,
    },
    /// Power a VM on.
    PowerOn {
        /// Target VM.
        vm: VmId,
    },
    /// Power a VM off.
    PowerOff {
        /// Target VM.
        vm: VmId,
    },
    /// Change a VM's configuration (vNIC / fencing / memory).
    Reconfigure {
        /// Target VM.
        vm: VmId,
    },
    /// Take a snapshot of a VM.
    Snapshot {
        /// Target VM.
        vm: VmId,
    },
    /// Remove the most recent snapshot (consolidate the delta).
    RemoveSnapshot {
        /// Target VM.
        vm: VmId,
    },
    /// Destroy a powered-off VM and release its storage.
    DestroyVm {
        /// Target VM.
        vm: VmId,
    },
    /// Live-migrate a VM to another host (placement chooses which).
    MigrateVm {
        /// Target VM.
        vm: VmId,
    },
    /// Storage-migrate a VM's disks to `dst`.
    RelocateVm {
        /// Target VM.
        vm: VmId,
        /// Destination datastore.
        dst: DatastoreId,
    },
    /// Copy a template's base disk onto `dst` so linked clones can be
    /// created there locally (cloud reconfiguration building block).
    SeedTemplate {
        /// The template to seed.
        template: VmId,
        /// Destination datastore.
        dst: DatastoreId,
    },
    /// Add a host to the inventory (agent install + initial sync).
    ///
    /// The payload is boxed: add-host is the rarest operation and its
    /// inline form (a 40-byte `HostSpec` plus a datastore list) would set
    /// the size of *every* queued management event — pure memcpy weight on
    /// the kernel hot path (see `cpsim_des::MAX_EVENT_BYTES`).
    AddHost(Box<AddHostParams>),
    /// Rescan storage on a host after datastore changes.
    RescanDatastores {
        /// Target host.
        host: HostId,
    },
}

/// Payload of [`OpKind::AddHost`], boxed to keep the event union small.
#[derive(Clone, Debug, PartialEq)]
pub struct AddHostParams {
    /// The new host's declared capacity.
    pub spec: HostSpec,
    /// Datastores to connect it to.
    pub datastores: Vec<DatastoreId>,
}

impl OpKind {
    /// Builds an [`OpKind::AddHost`], boxing the parameters.
    pub fn add_host(spec: HostSpec, datastores: Vec<DatastoreId>) -> Self {
        OpKind::AddHost(Box::new(AddHostParams { spec, datastores }))
    }

    /// A stable lowercase name for stats and traces.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::CreateVm { .. } => "create-vm",
            OpKind::CloneVm {
                mode: CloneMode::Full,
                ..
            } => "clone-full",
            OpKind::CloneVm {
                mode: CloneMode::Linked,
                ..
            } => "clone-linked",
            OpKind::CloneVm {
                mode: CloneMode::Instant,
                ..
            } => "clone-instant",
            OpKind::PowerOn { .. } => "power-on",
            OpKind::PowerOff { .. } => "power-off",
            OpKind::Reconfigure { .. } => "reconfigure",
            OpKind::Snapshot { .. } => "snapshot",
            OpKind::RemoveSnapshot { .. } => "remove-snapshot",
            OpKind::DestroyVm { .. } => "destroy-vm",
            OpKind::MigrateVm { .. } => "migrate-vm",
            OpKind::RelocateVm { .. } => "relocate-vm",
            OpKind::SeedTemplate { .. } => "seed-template",
            OpKind::AddHost(..) => "add-host",
            OpKind::RescanDatastores { .. } => "rescan-datastores",
        }
    }

    /// Whether this operation creates a VM (provisioning).
    pub fn is_provisioning(&self) -> bool {
        matches!(self, OpKind::CreateVm { .. } | OpKind::CloneVm { .. })
    }
}

/// An operation plus bookkeeping the submitter may attach.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// What to do.
    pub kind: OpKind,
    /// Opaque correlation tag the submitter can use to route completions
    /// (the cloud layer stores its workflow id here).
    pub tag: u64,
}

impl Operation {
    /// Wraps `kind` with a zero tag.
    pub fn new(kind: OpKind) -> Self {
        Operation { kind, tag: 0 }
    }

    /// Wraps `kind` with a correlation tag.
    pub fn tagged(kind: OpKind, tag: u64) -> Self {
        Operation { kind, tag }
    }
}

impl From<OpKind> for Operation {
    fn from(kind: OpKind) -> Self {
        Operation::new(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::EntityId;

    #[test]
    fn names_distinguish_clone_modes() {
        let vm = VmId::from_parts(0, 1);
        let full = OpKind::CloneVm {
            source: vm,
            mode: CloneMode::Full,
        };
        let linked = OpKind::CloneVm {
            source: vm,
            mode: CloneMode::Linked,
        };
        assert_eq!(full.name(), "clone-full");
        assert_eq!(linked.name(), "clone-linked");
        assert!(full.is_provisioning());
        assert!(!OpKind::PowerOn { vm }.is_provisioning());
    }

    #[test]
    fn operation_from_kind() {
        let vm = VmId::from_parts(0, 1);
        let op: Operation = OpKind::PowerOn { vm }.into();
        assert_eq!(op.tag, 0);
        let tagged = Operation::tagged(OpKind::PowerOff { vm }, 42);
        assert_eq!(tagged.tag, 42);
    }
}
