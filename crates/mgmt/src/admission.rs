//! Admission control: global / per-host / per-datastore concurrency limits
//! and per-VM operation locks, with a FIFO pending queue.
//!
//! The pending queue is event-driven: each parked task records the first
//! resource that blocked it, and a release only re-offers the tasks whose
//! recorded blocker was actually freed. This is exact with respect to the
//! naive "rescan everything in FIFO order" drain because acquisitions never
//! free capacity — a task whose recorded blocker has not been released since
//! it was recorded still cannot be admitted. Re-offered tasks are processed
//! in arrival order merged across blockers, so the greedy FIFO admission
//! semantics (and therefore every simulation trace) are unchanged; only the
//! per-release cost drops from O(pending) to O(affected).

use std::collections::{BTreeMap, BTreeSet};

use cpsim_des::FastMap;

use cpsim_des::SlotPool;
use cpsim_inventory::{DatastoreId, HostId, TaskId, VmId};

use crate::config::AdmissionLimits;

/// The resources an operation must hold while executing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scope {
    /// Host whose agent the operation occupies.
    pub host: Option<HostId>,
    /// Second host (migration destination).
    pub host2: Option<HostId>,
    /// Datastore the operation provisions onto / copies into.
    pub datastore: Option<DatastoreId>,
    /// VMs that must be exclusively locked for the duration.
    pub vms: Vec<VmId>,
    /// VMs locked in shared mode (e.g. clone sources: many concurrent
    /// clones may read one template, but none while an exclusive op runs).
    pub vms_shared: Vec<VmId>,
}

impl Scope {
    /// A scope touching nothing but the global limit.
    pub fn global_only() -> Self {
        Scope::default()
    }

    /// Builder: sets the host.
    pub fn with_host(mut self, host: HostId) -> Self {
        self.host = Some(host);
        self
    }

    /// Builder: sets the second host.
    pub fn with_host2(mut self, host: HostId) -> Self {
        self.host2 = Some(host);
        self
    }

    /// Builder: sets the datastore.
    pub fn with_datastore(mut self, ds: DatastoreId) -> Self {
        self.datastore = Some(ds);
        self
    }

    /// Builder: adds an exclusive VM lock.
    pub fn with_vm(mut self, vm: VmId) -> Self {
        self.vms.push(vm);
        self
    }

    /// Builder: adds a shared VM lock.
    pub fn with_vm_shared(mut self, vm: VmId) -> Self {
        self.vms_shared.push(vm);
        self
    }
}

/// State of one VM's operation lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VmLock {
    Exclusive,
    Shared(u32),
}

/// One concrete resource a parked task is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Blocker {
    Global,
    Host(HostId),
    Datastore(DatastoreId),
    Vm(VmId),
}

/// Admission control state.
#[derive(Debug)]
pub struct AdmissionControl {
    limits: AdmissionLimits,
    global: SlotPool,
    /// The three capacity tables are keyed lookups on the acquire/release
    /// hot path and are never iterated, so hash ordering cannot leak into
    /// event order. The pending-queue structures below stay ordered: FIFO
    /// offer order is observable.
    // cpsim-lint: allow(no-unordered-iteration): keyed get/insert/remove only; iteration order is never observed
    per_host: FastMap<HostId, SlotPool>,
    per_ds: FastMap<DatastoreId, SlotPool>,
    vm_locks: FastMap<VmId, VmLock>,
    /// Parked tasks keyed by arrival sequence; ascending key order is the
    /// FIFO offer order. Each entry remembers the blocker it waits on.
    pending: BTreeMap<u64, (TaskId, Scope, Blocker)>,
    /// Reverse index: blocker -> arrival sequences of the tasks parked on it.
    blocked_on: BTreeMap<Blocker, BTreeSet<u64>>,
    /// Resources released since the last drain (dirty set).
    freed: BTreeSet<Blocker>,
    next_seq: u64,
    parked_total: u64,
    peak_pending: usize,
}

impl AdmissionControl {
    /// Creates admission control with the given limits.
    pub fn new(limits: AdmissionLimits) -> Self {
        AdmissionControl {
            limits,
            global: SlotPool::new(limits.global),
            per_host: FastMap::default(),
            per_ds: FastMap::default(),
            vm_locks: FastMap::default(),
            pending: BTreeMap::new(),
            blocked_on: BTreeMap::new(),
            freed: BTreeSet::new(),
            next_seq: 0,
            parked_total: 0,
            peak_pending: 0,
        }
    }

    /// Attempts to acquire everything in `scope` atomically (all or
    /// nothing). On failure the caller should [`park`](Self::park).
    pub fn try_acquire(&mut self, scope: &Scope) -> bool {
        if self.first_blocker(scope).is_some() {
            return false;
        }
        assert!(self.global.try_acquire(), "first_blocker said yes");
        for host in scope.host.iter().chain(scope.host2.iter()) {
            let ok = self
                .per_host
                .entry(*host)
                .or_insert_with(|| SlotPool::new(self.limits.per_host))
                .try_acquire();
            assert!(ok, "first_blocker said yes");
        }
        if let Some(ds) = scope.datastore {
            let ok = self
                .per_ds
                .entry(ds)
                .or_insert_with(|| SlotPool::new(self.limits.per_datastore))
                .try_acquire();
            assert!(ok, "first_blocker said yes");
        }
        for vm in &scope.vms {
            let prev = self.vm_locks.insert(*vm, VmLock::Exclusive);
            assert!(prev.is_none(), "first_blocker said yes");
        }
        for vm in &scope.vms_shared {
            let lock = self.vm_locks.entry(*vm).or_insert(VmLock::Shared(0));
            assert!(!matches!(lock, VmLock::Exclusive), "first_blocker said yes");
            if let VmLock::Shared(n) = lock {
                *n += 1;
            }
        }
        true
    }

    /// Parks a task whose scope could not be acquired; it will be offered
    /// again by [`release`](Self::release) once its blocker frees up.
    pub fn park(&mut self, task: TaskId, scope: Scope) {
        let blocker = match self.first_blocker(&scope) {
            Some(b) => b,
            None => {
                // Defensive: a task parked while admissible must still be
                // offered at the next drain, so mark its blocker dirty.
                self.freed.insert(Blocker::Global);
                Blocker::Global
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.blocked_on.entry(blocker).or_default().insert(seq);
        self.pending.insert(seq, (task, scope, blocker));
        self.parked_total += 1;
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }

    /// Releases `scope` and re-offers parked tasks in FIFO order,
    /// returning those whose scopes were acquired now (with the scope each
    /// now holds).
    pub fn release(&mut self, scope: &Scope) -> Vec<(TaskId, Scope)> {
        self.release_only(scope);
        self.drain_pending()
    }

    /// Releases `scope` without draining (used when the releasing task
    /// immediately acquires a new scope). The freed resources stay marked
    /// dirty until the next drain.
    pub fn release_only(&mut self, scope: &Scope) {
        self.global.release();
        self.freed.insert(Blocker::Global);
        for host in scope.host.iter().chain(scope.host2.iter()) {
            self.per_host
                .get_mut(host)
                .expect("releasing unheld host slot")
                .release();
            self.freed.insert(Blocker::Host(*host));
        }
        if let Some(ds) = scope.datastore {
            self.per_ds
                .get_mut(&ds)
                .expect("releasing unheld datastore slot")
                .release();
            self.freed.insert(Blocker::Datastore(ds));
        }
        for vm in &scope.vms {
            let removed = self.vm_locks.remove(vm);
            assert_eq!(
                removed,
                Some(VmLock::Exclusive),
                "releasing unheld exclusive vm lock"
            );
            self.freed.insert(Blocker::Vm(*vm));
        }
        for vm in &scope.vms_shared {
            match self.vm_locks.get_mut(vm) {
                Some(VmLock::Shared(n)) if *n > 1 => *n -= 1,
                Some(VmLock::Shared(_)) => {
                    self.vm_locks.remove(vm);
                }
                // cpsim-lint: allow(no-panic-hot-path, panic-reachability): a double-release means the lock table is already corrupt; aborting beats silently leaking capacity
                other => panic!("releasing unheld shared vm lock: {other:?}"),
            }
            self.freed.insert(Blocker::Vm(*vm));
        }
    }

    /// Re-offers the parked tasks whose recorded blocker was freed since
    /// the last drain, in FIFO order; returns the admitted ones with the
    /// scope each now holds. Tasks whose blocker was not freed cannot be
    /// admitted (acquisitions only consume capacity) and are not touched.
    ///
    /// The freed buckets are consumed through a lazy k-way merge in arrival
    /// order (cross-blocker FIFO matters: admissions consume shared
    /// resources). The moment a freed resource is exhausted again — usually
    /// after the first admission takes it back — every remaining waiter in
    /// its bucket must fail, so the whole bucket is skipped untouched. The
    /// drain therefore costs O(admitted + re-recorded), not O(bucket).
    pub fn drain_pending(&mut self) -> Vec<(TaskId, Scope)> {
        let mut admitted = Vec::new();
        if self.pending.is_empty() {
            self.freed.clear();
            return admitted;
        }
        if self.freed.is_empty() {
            return admitted;
        }
        let freed = std::mem::take(&mut self.freed);
        // One cursor per freed blocker with waiters: the arrival sequence of
        // the next waiter to offer from that bucket. Each pending task lives
        // in exactly one bucket, so the merge visits no task twice.
        let mut cursors: Vec<(u64, Blocker)> = Vec::with_capacity(freed.len());
        for b in freed {
            if let Some(&seq) = self.blocked_on.get(&b).and_then(|s| s.iter().next()) {
                cursors.push((seq, b));
            }
        }
        while let Some(i) = cursors
            .iter()
            .enumerate()
            .min_by_key(|(_, &(seq, _))| seq)
            .map(|(i, _)| i)
        {
            let (seq, blocker) = cursors[i];
            if !self.blocker_available(blocker) {
                // Zero free capacity: every waiter in this bucket needs at
                // least one unit, so none can be admitted. They keep their
                // recorded blocker and will be re-offered when it frees.
                cursors.swap_remove(i);
                continue;
            }
            let (_, scope, _) = self.pending.get(&seq).expect("blocked_on out of sync");
            match self.first_blocker(scope) {
                None => {
                    let (task, scope, _) = self.pending.remove(&seq).expect("just looked up");
                    Self::unindex(&mut self.blocked_on, blocker, seq);
                    let ok = self.try_acquire(&scope);
                    debug_assert!(ok, "first_blocker said admissible");
                    admitted.push((task, scope));
                }
                Some(new_blocker) => {
                    if new_blocker != blocker {
                        // The freed resource has room but a deeper one is
                        // exhausted; wait on that one instead so its release
                        // (not this one's) re-offers the task.
                        self.move_blocker(seq, blocker, new_blocker);
                    }
                }
            }
            // Advance this cursor past the visited task (it was admitted,
            // re-recorded elsewhere, or legitimately left in place).
            match self
                .blocked_on
                .get(&blocker)
                .and_then(|s| s.range(seq + 1..).next())
            {
                Some(&next) => cursors[i].0 = next,
                None => {
                    cursors.swap_remove(i);
                }
            }
        }
        admitted
    }

    /// Number of tasks currently parked.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Largest pending-queue length observed.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Total park events (admission backpressure).
    pub fn parked_total(&self) -> u64 {
        self.parked_total
    }

    /// Operations currently holding the global limit.
    pub fn in_flight(&self) -> u32 {
        self.global.in_use()
    }

    /// Whether `vm` is currently locked by any operation.
    pub fn is_vm_locked(&self, vm: VmId) -> bool {
        self.vm_locks.contains_key(&vm)
    }

    /// Number of VMs currently holding any lock (exclusive or shared).
    /// Zero once all work has drained — locks must never leak, even
    /// through retry/abort/rollback paths.
    pub fn vm_locks_held(&self) -> usize {
        self.vm_locks.len()
    }

    fn unindex(blocked_on: &mut BTreeMap<Blocker, BTreeSet<u64>>, blocker: Blocker, seq: u64) {
        if let Some(set) = blocked_on.get_mut(&blocker) {
            set.remove(&seq);
            if set.is_empty() {
                blocked_on.remove(&blocker);
            }
        }
    }

    fn move_blocker(&mut self, seq: u64, from: Blocker, to: Blocker) {
        Self::unindex(&mut self.blocked_on, from, seq);
        self.blocked_on.entry(to).or_default().insert(seq);
        if let Some(entry) = self.pending.get_mut(&seq) {
            entry.2 = to;
        }
    }

    /// Whether `b` has any capacity at all — i.e. whether *some* waiter
    /// could conceivably pass it. A `false` answer lets the drain skip the
    /// blocker's whole bucket: every waiter there needs at least one unit.
    fn blocker_available(&self, b: Blocker) -> bool {
        match b {
            Blocker::Global => self.global.has_capacity(),
            Blocker::Host(h) => self
                .per_host
                .get(&h)
                .is_none_or(|p| p.in_use() < self.limits.per_host),
            Blocker::Datastore(d) => self
                .per_ds
                .get(&d)
                .is_none_or(|p| p.in_use() < self.limits.per_datastore),
            // A shared lock still admits shared waiters, so only an
            // exclusive lock makes the bucket hopeless.
            Blocker::Vm(v) => !matches!(self.vm_locks.get(&v), Some(VmLock::Exclusive)),
        }
    }

    fn host_has_room(&self, host: HostId, need: u32) -> bool {
        let used = self.per_host.get(&host).map_or(0, |p| p.in_use());
        used + need <= self.limits.per_host
    }

    /// The first exhausted resource `scope` needs, or `None` if the whole
    /// scope can be acquired right now. Checks the dimensions in the same
    /// order the acquisition path consumes them; any exhausted required
    /// resource is a sound blocker to wait on.
    fn first_blocker(&self, scope: &Scope) -> Option<Blocker> {
        if !self.global.has_capacity() {
            return Some(Blocker::Global);
        }
        // Two hosts in one scope need two distinct slots (or two from the
        // same pool when equal).
        match (scope.host, scope.host2) {
            (Some(a), Some(b)) if a == b => {
                if !self.host_has_room(a, 2) {
                    return Some(Blocker::Host(a));
                }
            }
            (a, b) => {
                for host in a.iter().chain(b.iter()) {
                    if !self.host_has_room(*host, 1) {
                        return Some(Blocker::Host(*host));
                    }
                }
            }
        }
        if let Some(ds) = scope.datastore {
            let used = self.per_ds.get(&ds).map_or(0, |p| p.in_use());
            if used + 1 > self.limits.per_datastore {
                return Some(Blocker::Datastore(ds));
            }
        }
        for vm in &scope.vms {
            if self.vm_locks.contains_key(vm) {
                return Some(Blocker::Vm(*vm));
            }
        }
        for vm in &scope.vms_shared {
            if matches!(self.vm_locks.get(vm), Some(VmLock::Exclusive)) || scope.vms.contains(vm) {
                return Some(Blocker::Vm(*vm));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::EntityId;

    fn ids() -> (HostId, DatastoreId, VmId, TaskId, TaskId) {
        (
            HostId::from_parts(0, 1),
            DatastoreId::from_parts(0, 1),
            VmId::from_parts(0, 1),
            TaskId::from_parts(0, 1),
            TaskId::from_parts(1, 1),
        )
    }

    fn small_limits() -> AdmissionLimits {
        AdmissionLimits {
            global: 4,
            per_host: 2,
            per_datastore: 1,
        }
    }

    #[test]
    fn acquires_and_releases_all_dimensions() {
        let (h, ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        let scope = Scope::global_only()
            .with_host(h)
            .with_datastore(ds)
            .with_vm(vm);
        assert!(ac.try_acquire(&scope));
        assert_eq!(ac.in_flight(), 1);
        assert!(ac.is_vm_locked(vm));
        assert_eq!(ac.vm_locks_held(), 1);
        ac.release(&scope);
        assert_eq!(ac.in_flight(), 0);
        assert!(!ac.is_vm_locked(vm));
        assert_eq!(ac.vm_locks_held(), 0);
    }

    #[test]
    fn per_datastore_limit_blocks_second_op() {
        let (h, ds, _vm, t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        let scope = Scope::global_only().with_host(h).with_datastore(ds);
        assert!(ac.try_acquire(&scope));
        assert!(!ac.try_acquire(&scope), "per-datastore limit is 1");
        ac.park(t1, scope.clone());
        assert_eq!(ac.pending_len(), 1);
        let admitted = ac.release(&scope);
        assert_eq!(admitted, vec![(t1, scope.clone())]);
        assert_eq!(ac.pending_len(), 0);
        assert_eq!(ac.parked_total(), 1);
    }

    #[test]
    fn vm_lock_is_exclusive() {
        let (_h, _ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        let a = Scope::global_only().with_vm(vm);
        assert!(ac.try_acquire(&a));
        assert!(!ac.try_acquire(&a));
        ac.release(&a);
        assert!(ac.try_acquire(&a));
    }

    #[test]
    fn all_or_nothing_acquisition() {
        let (h, ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        // Lock the VM via a different scope.
        let lock = Scope::global_only().with_vm(vm);
        assert!(ac.try_acquire(&lock));
        // A compound scope that would fit except for the VM lock must not
        // consume host/ds slots.
        let compound = Scope::global_only()
            .with_host(h)
            .with_datastore(ds)
            .with_vm(vm);
        assert!(!ac.try_acquire(&compound));
        // Host and datastore are untouched: a sibling scope still fits.
        let sibling = Scope::global_only().with_host(h).with_datastore(ds);
        assert!(ac.try_acquire(&sibling));
    }

    #[test]
    fn migration_scope_needs_two_host_slots() {
        let (h, _ds, _vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 1,
            per_datastore: 10,
        });
        // Same host twice (degenerate migration): needs 2 slots but limit 1.
        let degenerate = Scope::global_only().with_host(h).with_host2(h);
        assert!(!ac.try_acquire(&degenerate));
        // Distinct hosts each take one slot.
        let h2 = HostId::from_parts(1, 1);
        let scope = Scope::global_only().with_host(h).with_host2(h2);
        assert!(ac.try_acquire(&scope));
        ac.release(&scope);
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let (h, ds, _vm, t1, t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 10,
            per_datastore: 1,
        });
        let scope = Scope::global_only().with_host(h).with_datastore(ds);
        assert!(ac.try_acquire(&scope));
        ac.park(t1, scope.clone());
        ac.park(t2, scope.clone());
        // Releasing one slot admits exactly the first parked task.
        let admitted = ac.release(&scope);
        assert_eq!(admitted, vec![(t1, scope.clone())]);
        assert_eq!(ac.pending_len(), 1);
        assert_eq!(ac.peak_pending(), 2);
    }

    #[test]
    fn drain_merges_fifo_order_across_blockers() {
        // t1 (arrived first) parks on host B, t2 parks on host A, and both
        // also need the last slot of a shared datastore. Releasing both
        // hosts in one drain must admit t1, not t2 — even though host A
        // sorts before host B in blocker order, arrival order wins.
        let ha = HostId::from_parts(0, 1);
        let hb = HostId::from_parts(1, 1);
        let d = DatastoreId::from_parts(0, 1);
        let (t1, t2) = (TaskId::from_parts(0, 1), TaskId::from_parts(1, 1));
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 1,
            per_datastore: 2,
        });
        let holder_a = Scope::global_only().with_host(ha);
        let holder_b = Scope::global_only().with_host(hb);
        let ds_filler = Scope::global_only().with_datastore(d);
        assert!(ac.try_acquire(&holder_a));
        assert!(ac.try_acquire(&holder_b));
        assert!(ac.try_acquire(&ds_filler));
        let want_b = Scope::global_only().with_host(hb).with_datastore(d);
        let want_a = Scope::global_only().with_host(ha).with_datastore(d);
        ac.park(t1, want_b.clone()); // blocked on host B
        ac.park(t2, want_a.clone()); // blocked on host A
                                     // Free both hosts; only one datastore slot remains, so only one of
                                     // the two waiters can go — it must be t1.
        ac.release_only(&holder_a);
        let admitted = ac.release(&holder_b);
        assert_eq!(admitted, vec![(t1, want_b)]);
        assert_eq!(ac.pending_len(), 1);
    }

    #[test]
    fn parked_task_re_records_deeper_blocker() {
        // A task blocked on a host gets rechecked when the host frees but
        // then waits on the datastore; freeing the datastore admits it.
        let (h, ds, _vm, t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 1,
            per_datastore: 1,
        });
        let host_holder = Scope::global_only().with_host(h);
        let ds_holder = Scope::global_only().with_datastore(ds);
        assert!(ac.try_acquire(&host_holder));
        assert!(ac.try_acquire(&ds_holder));
        let want = Scope::global_only().with_host(h).with_datastore(ds);
        assert!(!ac.try_acquire(&want));
        ac.park(t1, want.clone());
        // Freeing the host is not enough: the datastore still blocks.
        assert!(ac.release(&host_holder).is_empty());
        assert_eq!(ac.pending_len(), 1);
        // Freeing the datastore now admits the waiter.
        let admitted = ac.release(&ds_holder);
        assert_eq!(admitted, vec![(t1, want)]);
        assert_eq!(ac.pending_len(), 0);
    }

    #[test]
    fn global_exhaustion_reparks_waiters_on_global() {
        // While the global pool is exhausted, freed per-resource waiters
        // re-park on the global blocker and are admitted once a global
        // slot opens.
        let (h, _ds, _vm, t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 3,
            per_host: 1,
            per_datastore: 8,
        });
        let host_holder = Scope::global_only().with_host(h);
        let filler = Scope::global_only();
        assert!(ac.try_acquire(&host_holder));
        assert!(ac.try_acquire(&filler));
        // Global still has room, so the waiter records the host blocker.
        let want = Scope::global_only().with_host(h);
        ac.park(t1, want.clone());
        // Free the host while simultaneously exhausting the global pool:
        // release the host holder, then consume two global slots before
        // draining.
        ac.release_only(&host_holder);
        assert!(ac.try_acquire(&filler));
        assert!(ac.try_acquire(&filler));
        assert!(ac.drain_pending().is_empty(), "global pool is exhausted");
        // A plain global release now admits the waiter.
        let admitted = ac.release(&filler);
        assert_eq!(admitted, vec![(t1, want)]);
    }

    #[test]
    fn shared_locks_allow_concurrent_clones_but_block_exclusive() {
        let (_h, _ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 10,
            per_datastore: 10,
        });
        let reader = Scope::global_only().with_vm_shared(vm);
        // Many concurrent shared holders.
        assert!(ac.try_acquire(&reader));
        assert!(ac.try_acquire(&reader));
        assert!(ac.try_acquire(&reader));
        assert!(ac.is_vm_locked(vm));
        // An exclusive op must wait for all readers.
        let writer = Scope::global_only().with_vm(vm);
        assert!(!ac.try_acquire(&writer));
        ac.release_only(&reader);
        ac.release_only(&reader);
        assert!(!ac.try_acquire(&writer), "one reader still holds");
        ac.release_only(&reader);
        assert!(ac.try_acquire(&writer));
        // And readers must wait for the writer.
        assert!(!ac.try_acquire(&reader));
        ac.release_only(&writer);
        assert!(ac.try_acquire(&reader));
        ac.release_only(&reader);
        assert!(!ac.is_vm_locked(vm));
    }

    #[test]
    fn mixed_scope_cannot_hold_same_vm_shared_and_exclusive() {
        let (_h, _ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 10,
            per_datastore: 10,
        });
        let weird = Scope::global_only().with_vm(vm).with_vm_shared(vm);
        assert!(!ac.try_acquire(&weird), "self-conflicting scope rejected");
    }

    #[test]
    fn global_limit_applies_to_scopeless_ops() {
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 1,
            per_host: 8,
            per_datastore: 8,
        });
        assert!(ac.try_acquire(&Scope::global_only()));
        assert!(!ac.try_acquire(&Scope::global_only()));
    }
}
