//! Admission control: global / per-host / per-datastore concurrency limits
//! and per-VM operation locks, with a FIFO pending queue.

use std::collections::{BTreeMap, VecDeque};

use cpsim_des::SlotPool;
use cpsim_inventory::{DatastoreId, HostId, TaskId, VmId};

use crate::config::AdmissionLimits;

/// The resources an operation must hold while executing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Scope {
    /// Host whose agent the operation occupies.
    pub host: Option<HostId>,
    /// Second host (migration destination).
    pub host2: Option<HostId>,
    /// Datastore the operation provisions onto / copies into.
    pub datastore: Option<DatastoreId>,
    /// VMs that must be exclusively locked for the duration.
    pub vms: Vec<VmId>,
    /// VMs locked in shared mode (e.g. clone sources: many concurrent
    /// clones may read one template, but none while an exclusive op runs).
    pub vms_shared: Vec<VmId>,
}

impl Scope {
    /// A scope touching nothing but the global limit.
    pub fn global_only() -> Self {
        Scope::default()
    }

    /// Builder: sets the host.
    pub fn with_host(mut self, host: HostId) -> Self {
        self.host = Some(host);
        self
    }

    /// Builder: sets the second host.
    pub fn with_host2(mut self, host: HostId) -> Self {
        self.host2 = Some(host);
        self
    }

    /// Builder: sets the datastore.
    pub fn with_datastore(mut self, ds: DatastoreId) -> Self {
        self.datastore = Some(ds);
        self
    }

    /// Builder: adds an exclusive VM lock.
    pub fn with_vm(mut self, vm: VmId) -> Self {
        self.vms.push(vm);
        self
    }

    /// Builder: adds a shared VM lock.
    pub fn with_vm_shared(mut self, vm: VmId) -> Self {
        self.vms_shared.push(vm);
        self
    }
}

/// State of one VM's operation lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VmLock {
    Exclusive,
    Shared(u32),
}

/// Admission control state.
#[derive(Debug)]
pub struct AdmissionControl {
    limits: AdmissionLimits,
    global: SlotPool,
    per_host: BTreeMap<HostId, SlotPool>,
    per_ds: BTreeMap<DatastoreId, SlotPool>,
    vm_locks: BTreeMap<VmId, VmLock>,
    pending: VecDeque<(TaskId, Scope)>,
    parked_total: u64,
    peak_pending: usize,
}

impl AdmissionControl {
    /// Creates admission control with the given limits.
    pub fn new(limits: AdmissionLimits) -> Self {
        AdmissionControl {
            limits,
            global: SlotPool::new(limits.global),
            per_host: BTreeMap::new(),
            per_ds: BTreeMap::new(),
            vm_locks: BTreeMap::new(),
            pending: VecDeque::new(),
            parked_total: 0,
            peak_pending: 0,
        }
    }

    /// Attempts to acquire everything in `scope` atomically (all or
    /// nothing). On failure the caller should [`park`](Self::park).
    pub fn try_acquire(&mut self, scope: &Scope) -> bool {
        if !self.can_acquire(scope) {
            return false;
        }
        assert!(self.global.try_acquire(), "can_acquire said yes");
        for host in scope.host.iter().chain(scope.host2.iter()) {
            let ok = self
                .per_host
                .entry(*host)
                .or_insert_with(|| SlotPool::new(self.limits.per_host))
                .try_acquire();
            assert!(ok, "can_acquire said yes");
        }
        if let Some(ds) = scope.datastore {
            let ok = self
                .per_ds
                .entry(ds)
                .or_insert_with(|| SlotPool::new(self.limits.per_datastore))
                .try_acquire();
            assert!(ok, "can_acquire said yes");
        }
        for vm in &scope.vms {
            let prev = self.vm_locks.insert(*vm, VmLock::Exclusive);
            assert!(prev.is_none(), "can_acquire said yes");
        }
        for vm in &scope.vms_shared {
            match self.vm_locks.get_mut(vm) {
                None => {
                    self.vm_locks.insert(*vm, VmLock::Shared(1));
                }
                Some(VmLock::Shared(n)) => *n += 1,
                Some(VmLock::Exclusive) => unreachable!("can_acquire said yes"),
            }
        }
        true
    }

    /// Parks a task whose scope could not be acquired; it will be offered
    /// again by [`release`](Self::release).
    pub fn park(&mut self, task: TaskId, scope: Scope) {
        self.parked_total += 1;
        self.pending.push_back((task, scope));
        self.peak_pending = self.peak_pending.max(self.pending.len());
    }

    /// Releases `scope` and re-offers parked tasks in FIFO order,
    /// returning those whose scopes were acquired now (with the scope each
    /// now holds).
    pub fn release(&mut self, scope: &Scope) -> Vec<(TaskId, Scope)> {
        self.release_only(scope);
        self.drain_pending()
    }

    /// Releases `scope` without draining (used when the releasing task
    /// immediately acquires a new scope).
    pub fn release_only(&mut self, scope: &Scope) {
        self.global.release();
        for host in scope.host.iter().chain(scope.host2.iter()) {
            self.per_host
                .get_mut(host)
                .expect("releasing unheld host slot")
                .release();
        }
        if let Some(ds) = scope.datastore {
            self.per_ds
                .get_mut(&ds)
                .expect("releasing unheld datastore slot")
                .release();
        }
        for vm in &scope.vms {
            let removed = self.vm_locks.remove(vm);
            assert_eq!(
                removed,
                Some(VmLock::Exclusive),
                "releasing unheld exclusive vm lock"
            );
        }
        for vm in &scope.vms_shared {
            match self.vm_locks.get_mut(vm) {
                Some(VmLock::Shared(n)) if *n > 1 => *n -= 1,
                Some(VmLock::Shared(_)) => {
                    self.vm_locks.remove(vm);
                }
                other => panic!("releasing unheld shared vm lock: {other:?}"),
            }
        }
    }

    /// Re-offers parked tasks in FIFO order; returns the admitted ones
    /// with the scope each now holds.
    pub fn drain_pending(&mut self) -> Vec<(TaskId, Scope)> {
        let mut admitted = Vec::new();
        let mut still_parked = VecDeque::new();
        while let Some((task, scope)) = self.pending.pop_front() {
            if self.try_acquire(&scope) {
                admitted.push((task, scope));
            } else {
                still_parked.push_back((task, scope));
            }
        }
        self.pending = still_parked;
        admitted
    }

    /// Number of tasks currently parked.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Largest pending-queue length observed.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Total park events (admission backpressure).
    pub fn parked_total(&self) -> u64 {
        self.parked_total
    }

    /// Operations currently holding the global limit.
    pub fn in_flight(&self) -> u32 {
        self.global.in_use()
    }

    /// Whether `vm` is currently locked by any operation.
    pub fn is_vm_locked(&self, vm: VmId) -> bool {
        self.vm_locks.contains_key(&vm)
    }

    /// Number of VMs currently holding any lock (exclusive or shared).
    /// Zero once all work has drained — locks must never leak, even
    /// through retry/abort/rollback paths.
    pub fn vm_locks_held(&self) -> usize {
        self.vm_locks.len()
    }

    fn can_acquire(&self, scope: &Scope) -> bool {
        if !self.global.has_capacity() {
            return false;
        }
        // Two hosts in one scope need two distinct slots (or two from the
        // same pool when equal).
        let mut host_needs: BTreeMap<HostId, u32> = BTreeMap::new();
        for host in scope.host.iter().chain(scope.host2.iter()) {
            *host_needs.entry(*host).or_default() += 1;
        }
        for (host, need) in &host_needs {
            let used = self.per_host.get(host).map_or(0, |p| p.in_use());
            if used + need > self.limits.per_host {
                return false;
            }
        }
        if let Some(ds) = scope.datastore {
            let used = self.per_ds.get(&ds).map_or(0, |p| p.in_use());
            if used + 1 > self.limits.per_datastore {
                return false;
            }
        }
        if !scope.vms.iter().all(|vm| !self.vm_locks.contains_key(vm)) {
            return false;
        }
        scope.vms_shared.iter().all(|vm| {
            !matches!(self.vm_locks.get(vm), Some(VmLock::Exclusive)) && !scope.vms.contains(vm)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::EntityId;

    fn ids() -> (HostId, DatastoreId, VmId, TaskId, TaskId) {
        (
            HostId::from_parts(0, 1),
            DatastoreId::from_parts(0, 1),
            VmId::from_parts(0, 1),
            TaskId::from_parts(0, 1),
            TaskId::from_parts(1, 1),
        )
    }

    fn small_limits() -> AdmissionLimits {
        AdmissionLimits {
            global: 4,
            per_host: 2,
            per_datastore: 1,
        }
    }

    #[test]
    fn acquires_and_releases_all_dimensions() {
        let (h, ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        let scope = Scope::global_only()
            .with_host(h)
            .with_datastore(ds)
            .with_vm(vm);
        assert!(ac.try_acquire(&scope));
        assert_eq!(ac.in_flight(), 1);
        assert!(ac.is_vm_locked(vm));
        assert_eq!(ac.vm_locks_held(), 1);
        ac.release(&scope);
        assert_eq!(ac.in_flight(), 0);
        assert!(!ac.is_vm_locked(vm));
        assert_eq!(ac.vm_locks_held(), 0);
    }

    #[test]
    fn per_datastore_limit_blocks_second_op() {
        let (h, ds, _vm, t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        let scope = Scope::global_only().with_host(h).with_datastore(ds);
        assert!(ac.try_acquire(&scope));
        assert!(!ac.try_acquire(&scope), "per-datastore limit is 1");
        ac.park(t1, scope.clone());
        assert_eq!(ac.pending_len(), 1);
        let admitted = ac.release(&scope);
        assert_eq!(admitted, vec![(t1, scope.clone())]);
        assert_eq!(ac.pending_len(), 0);
        assert_eq!(ac.parked_total(), 1);
    }

    #[test]
    fn vm_lock_is_exclusive() {
        let (_h, _ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        let a = Scope::global_only().with_vm(vm);
        assert!(ac.try_acquire(&a));
        assert!(!ac.try_acquire(&a));
        ac.release(&a);
        assert!(ac.try_acquire(&a));
    }

    #[test]
    fn all_or_nothing_acquisition() {
        let (h, ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(small_limits());
        // Lock the VM via a different scope.
        let lock = Scope::global_only().with_vm(vm);
        assert!(ac.try_acquire(&lock));
        // A compound scope that would fit except for the VM lock must not
        // consume host/ds slots.
        let compound = Scope::global_only()
            .with_host(h)
            .with_datastore(ds)
            .with_vm(vm);
        assert!(!ac.try_acquire(&compound));
        // Host and datastore are untouched: a sibling scope still fits.
        let sibling = Scope::global_only().with_host(h).with_datastore(ds);
        assert!(ac.try_acquire(&sibling));
    }

    #[test]
    fn migration_scope_needs_two_host_slots() {
        let (h, _ds, _vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 1,
            per_datastore: 10,
        });
        // Same host twice (degenerate migration): needs 2 slots but limit 1.
        let degenerate = Scope::global_only().with_host(h).with_host2(h);
        assert!(!ac.try_acquire(&degenerate));
        // Distinct hosts each take one slot.
        let h2 = HostId::from_parts(1, 1);
        let scope = Scope::global_only().with_host(h).with_host2(h2);
        assert!(ac.try_acquire(&scope));
        ac.release(&scope);
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let (h, ds, _vm, t1, t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 10,
            per_datastore: 1,
        });
        let scope = Scope::global_only().with_host(h).with_datastore(ds);
        assert!(ac.try_acquire(&scope));
        ac.park(t1, scope.clone());
        ac.park(t2, scope.clone());
        // Releasing one slot admits exactly the first parked task.
        let admitted = ac.release(&scope);
        assert_eq!(admitted, vec![(t1, scope.clone())]);
        assert_eq!(ac.pending_len(), 1);
        assert_eq!(ac.peak_pending(), 2);
    }

    #[test]
    fn shared_locks_allow_concurrent_clones_but_block_exclusive() {
        let (_h, _ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 10,
            per_datastore: 10,
        });
        let reader = Scope::global_only().with_vm_shared(vm);
        // Many concurrent shared holders.
        assert!(ac.try_acquire(&reader));
        assert!(ac.try_acquire(&reader));
        assert!(ac.try_acquire(&reader));
        assert!(ac.is_vm_locked(vm));
        // An exclusive op must wait for all readers.
        let writer = Scope::global_only().with_vm(vm);
        assert!(!ac.try_acquire(&writer));
        ac.release_only(&reader);
        ac.release_only(&reader);
        assert!(!ac.try_acquire(&writer), "one reader still holds");
        ac.release_only(&reader);
        assert!(ac.try_acquire(&writer));
        // And readers must wait for the writer.
        assert!(!ac.try_acquire(&reader));
        ac.release_only(&writer);
        assert!(ac.try_acquire(&reader));
        ac.release_only(&reader);
        assert!(!ac.is_vm_locked(vm));
    }

    #[test]
    fn mixed_scope_cannot_hold_same_vm_shared_and_exclusive() {
        let (_h, _ds, vm, _t1, _t2) = ids();
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 10,
            per_host: 10,
            per_datastore: 10,
        });
        let weird = Scope::global_only().with_vm(vm).with_vm_shared(vm);
        assert!(!ac.try_acquire(&weird), "self-conflicting scope rejected");
    }

    #[test]
    fn global_limit_applies_to_scopeless_ops() {
        let mut ac = AdmissionControl::new(AdmissionLimits {
            global: 1,
            per_host: 8,
            per_datastore: 8,
        });
        assert!(ac.try_acquire(&Scope::global_only()));
        assert!(!ac.try_acquire(&Scope::global_only()));
    }
}
