//! Fault-injection state tracked by the control plane: which hosts and
//! datastores are currently impaired, active slowdown windows, heartbeat
//! miss counters, and the deterministic RNG used for timeout draws and
//! retry-backoff jitter.
//!
//! The [`FaultInjector`] is pure bookkeeping — the [`ControlPlane`]
//! consults it at each decision point (agent submission, heartbeat,
//! datastore-touching phases) and mutates it when fault events fire. When
//! no injector is installed the plane takes none of those branches and
//! draws none of this randomness, which is what makes fault-free runs
//! bit-identical to builds without a fault plan.
//!
//! [`ControlPlane`]: crate::plane::ControlPlane

use std::collections::{BTreeMap, BTreeSet};

use cpsim_des::{SimDuration, SimRng};
use cpsim_faults::RecoveryPolicy;
use cpsim_inventory::{DatastoreId, HostId};
use rand::Rng;

/// Live fault state plus the recovery policy the plane applies.
#[derive(Debug)]
pub struct FaultInjector {
    policy: RecoveryPolicy,
    timeout_prob: f64,
    rng: SimRng,
    /// Hosts currently crashed (agent dead, heartbeats silent).
    down_hosts: BTreeSet<HostId>,
    /// Hosts whose heartbeats are dropped by the network (host itself up).
    hb_dropped: BTreeSet<HostId>,
    /// Datastores currently refusing new work.
    ds_down: BTreeSet<DatastoreId>,
    /// Active agent-slowdown factors; effective scale is their product.
    agent_slow: Vec<f64>,
    /// Active DB-degradation factors; effective scale is their product.
    db_slow: Vec<f64>,
    /// Consecutive heartbeat misses per host.
    hb_misses: BTreeMap<HostId, u32>,
    /// Hosts the plane has declared down (inventory marked Disconnected).
    declared_down: BTreeSet<HostId>,
    /// Fault-plan host index -> hosts awaiting a HostRecover with that
    /// index, in crash order. Restore events carry the plan index, not the
    /// entity id, so the binding made at crash time must be remembered
    /// (the index↔id mapping can shift if hosts are added mid-run).
    crash_bindings: BTreeMap<usize, Vec<HostId>>,
    /// Same binding for heartbeat-drop windows.
    hb_bindings: BTreeMap<usize, Vec<HostId>>,
    /// Same binding for datastore outages.
    ds_bindings: BTreeMap<usize, Vec<DatastoreId>>,
}

impl FaultInjector {
    /// Creates an injector with no active faults.
    pub fn new(policy: RecoveryPolicy, timeout_prob: f64, rng: SimRng) -> Self {
        FaultInjector {
            policy,
            timeout_prob,
            rng,
            down_hosts: BTreeSet::new(),
            hb_dropped: BTreeSet::new(),
            ds_down: BTreeSet::new(),
            agent_slow: Vec::new(),
            db_slow: Vec::new(),
            hb_misses: BTreeMap::new(),
            declared_down: BTreeSet::new(),
            crash_bindings: BTreeMap::new(),
            hb_bindings: BTreeMap::new(),
            ds_bindings: BTreeMap::new(),
        }
    }

    /// The recovery policy in force.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    // ---- host crashes ----------------------------------------------------

    /// Whether `host` is currently crashed.
    pub fn host_down(&self, host: HostId) -> bool {
        self.down_hosts.contains(&host)
    }

    /// Marks `host` crashed, remembering the plan index that targeted it.
    pub fn mark_host_down(&mut self, idx: usize, host: HostId) {
        self.down_hosts.insert(host);
        self.crash_bindings.entry(idx).or_default().push(host);
    }

    /// Resolves a HostRecover carrying plan index `idx` to the host bound
    /// at crash time, clearing its down flag.
    pub fn recover_host(&mut self, idx: usize) -> Option<HostId> {
        let host = pop_binding(&mut self.crash_bindings, idx)?;
        self.down_hosts.remove(&host);
        Some(host)
    }

    // ---- heartbeat drops -------------------------------------------------

    /// Whether `host`'s heartbeats are currently dropped.
    pub fn hb_dropped(&self, host: HostId) -> bool {
        self.hb_dropped.contains(&host)
    }

    /// Starts a heartbeat-drop window on `host`.
    pub fn mark_hb_dropped(&mut self, idx: usize, host: HostId) {
        self.hb_dropped.insert(host);
        self.hb_bindings.entry(idx).or_default().push(host);
    }

    /// Ends the heartbeat-drop window bound to plan index `idx`.
    pub fn restore_hb(&mut self, idx: usize) -> Option<HostId> {
        let host = pop_binding(&mut self.hb_bindings, idx)?;
        self.hb_dropped.remove(&host);
        Some(host)
    }

    // ---- datastore outages -----------------------------------------------

    /// Whether `ds` is currently refusing new work.
    pub fn ds_down(&self, ds: DatastoreId) -> bool {
        self.ds_down.contains(&ds)
    }

    /// Starts an outage on `ds`.
    pub fn mark_ds_down(&mut self, idx: usize, ds: DatastoreId) {
        self.ds_down.insert(ds);
        self.ds_bindings.entry(idx).or_default().push(ds);
    }

    /// Ends the outage bound to plan index `idx`.
    pub fn restore_ds(&mut self, idx: usize) -> Option<DatastoreId> {
        let ds = pop_binding(&mut self.ds_bindings, idx)?;
        self.ds_down.remove(&ds);
        Some(ds)
    }

    // ---- slowdown windows ------------------------------------------------

    /// Opens an agent-slowdown window.
    pub fn push_agent_slow(&mut self, factor: f64) {
        self.agent_slow.push(factor);
    }

    /// Closes one agent-slowdown window with this factor.
    pub fn pop_agent_slow(&mut self, factor: f64) {
        if let Some(pos) = self.agent_slow.iter().position(|f| *f == factor) {
            self.agent_slow.swap_remove(pos);
        }
    }

    /// Effective agent service-time multiplier (1.0 when no window active).
    pub fn agent_scale(&self) -> f64 {
        self.agent_slow.iter().product()
    }

    /// Opens a DB-degradation window.
    pub fn push_db_slow(&mut self, factor: f64) {
        self.db_slow.push(factor);
    }

    /// Closes one DB-degradation window with this factor.
    pub fn pop_db_slow(&mut self, factor: f64) {
        if let Some(pos) = self.db_slow.iter().position(|f| *f == factor) {
            self.db_slow.swap_remove(pos);
        }
    }

    /// Effective DB service-time multiplier (1.0 when no window active).
    pub fn db_scale(&self) -> f64 {
        self.db_slow.iter().product()
    }

    // ---- heartbeat-miss detection ----------------------------------------

    /// Records a missed heartbeat; returns the consecutive-miss count.
    pub fn record_miss(&mut self, host: HostId) -> u32 {
        let n = self.hb_misses.entry(host).or_insert(0);
        *n += 1;
        *n
    }

    /// A healthy heartbeat arrived: resets the miss counter.
    pub fn reset_misses(&mut self, host: HostId) {
        self.hb_misses.remove(&host);
    }

    /// Whether the plane has declared `host` down.
    pub fn is_declared_down(&self, host: HostId) -> bool {
        self.declared_down.contains(&host)
    }

    /// Records that the plane declared `host` down.
    pub fn declare_down(&mut self, host: HostId) {
        self.declared_down.insert(host);
    }

    /// Records that the plane reconnected `host`.
    pub fn clear_declared(&mut self, host: HostId) {
        self.declared_down.remove(&host);
    }

    // ---- randomness ------------------------------------------------------

    /// Draws whether the next host-agent primitive hangs to the timeout.
    pub fn draw_timeout(&mut self) -> bool {
        self.timeout_prob > 0.0 && self.rng.gen::<f64>() < self.timeout_prob
    }

    /// The backoff before retry number `attempt` (policy + jitter draw).
    pub fn backoff(&mut self, attempt: u32) -> SimDuration {
        self.policy.backoff(attempt, &mut self.rng)
    }
}

fn pop_binding<T: Copy>(bindings: &mut BTreeMap<usize, Vec<T>>, idx: usize) -> Option<T> {
    let list = bindings.get_mut(&idx)?;
    let first = if list.is_empty() {
        None
    } else {
        Some(list.remove(0))
    };
    if list.is_empty() {
        bindings.remove(&idx);
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_des::Streams;
    use cpsim_inventory::EntityId;

    fn injector(timeout_prob: f64) -> FaultInjector {
        FaultInjector::new(
            RecoveryPolicy::default(),
            timeout_prob,
            Streams::new(11).rng(Streams::FAULTS),
        )
    }

    #[test]
    fn crash_bindings_resolve_in_order() {
        let mut inj = injector(0.0);
        let h1 = HostId::from_parts(0, 1);
        let h2 = HostId::from_parts(1, 1);
        inj.mark_host_down(3, h1);
        inj.mark_host_down(3, h2);
        assert!(inj.host_down(h1) && inj.host_down(h2));
        assert_eq!(inj.recover_host(3), Some(h1));
        assert!(!inj.host_down(h1));
        assert!(inj.host_down(h2));
        assert_eq!(inj.recover_host(3), Some(h2));
        assert_eq!(inj.recover_host(3), None);
    }

    #[test]
    fn slowdown_windows_compose_as_products() {
        let mut inj = injector(0.0);
        assert_eq!(inj.agent_scale(), 1.0);
        inj.push_agent_slow(2.0);
        inj.push_agent_slow(3.0);
        assert_eq!(inj.agent_scale(), 6.0);
        inj.pop_agent_slow(2.0);
        assert_eq!(inj.agent_scale(), 3.0);
        inj.pop_agent_slow(3.0);
        assert_eq!(inj.agent_scale(), 1.0);
        // Popping a factor that is not active is a no-op.
        inj.pop_agent_slow(9.0);
        assert_eq!(inj.agent_scale(), 1.0);
    }

    #[test]
    fn miss_counter_counts_and_resets() {
        let mut inj = injector(0.0);
        let h = HostId::from_parts(0, 1);
        assert_eq!(inj.record_miss(h), 1);
        assert_eq!(inj.record_miss(h), 2);
        inj.reset_misses(h);
        assert_eq!(inj.record_miss(h), 1);
    }

    #[test]
    fn timeout_draws_respect_probability_bounds() {
        let mut never = injector(0.0);
        assert!((0..100).all(|_| !never.draw_timeout()));
        let mut always = injector(1.0);
        assert!((0..100).all(|_| always.draw_timeout()));
    }
}
