//! External placement gate: the hook a federation layer installs so a
//! shard's locally-computed placements are validated against an
//! authoritative shared commitment ledger at the moment of commit.
//!
//! A single-plane simulation never installs a gate and pays nothing; the
//! plane's behavior is bit-for-bit identical with `gate == None`. With a
//! gate installed, the placement stage of every provisioning program
//! ([`OpKind::CreateVm`] and non-instant [`OpKind::CloneVm`]) calls
//! [`PlacementGate::commit`] *after* the local [`Placer`] picks a
//! `(host, datastore)` pair and *before* the task acquires admission
//! slots. The gate holds the authoritative view; the plane's own
//! [`Inventory`] is a possibly-stale mirror refreshed on a configurable
//! period via [`PlacementGate::sync`].
//!
//! On [`GateDecision::Conflict`] the plane treats the placement like any
//! other transient phase failure: the task retries the placement stage
//! with bounded backoff through the `cpsim-faults` recovery machinery
//! (the gate is expected to refresh the mirror for the contended
//! datastore before returning, so the retry picks somewhere else).
//!
//! [`OpKind::CreateVm`]: crate::OpKind::CreateVm
//! [`OpKind::CloneVm`]: crate::OpKind::CloneVm
//! [`Placer`]: crate::Placer

use cpsim_des::SimTime;
use cpsim_inventory::{DatastoreId, HostId, Inventory};

/// Outcome of an external placement commit attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GateDecision {
    /// The authoritative store accepted the reservation; the task may
    /// proceed to materialize the VM on the chosen placement.
    Commit,
    /// The reservation lost a race against another shard's commit: the
    /// capacity the stale local view promised is no longer there. The
    /// task retries placement with backoff.
    Conflict(String),
}

/// An authoritative placement ledger consulted at commit time.
///
/// Both methods receive the shard's own [`Inventory`] mutably so the
/// implementation can fold authoritative usage back into the mirror
/// (e.g. on a periodic refresh, or eagerly for a datastore that just
/// conflicted), and the current simulation time so a concurrent
/// implementation can order shared-store accesses in virtual-time order
/// across shards. Implementations must be deterministic: no wall-clock
/// reads and no randomness outside the simulation's seeded streams.
///
/// The `Send` supertrait exists for the conservative parallel runner in
/// `cpsim-federation`: shards (and therefore their installed gates) move
/// onto worker threads for the duration of a run.
pub trait PlacementGate: Send {
    /// Attempts to commit `mem_mb` + `disk_gb` on `(host, ds)` against
    /// the authoritative view. Called once per placement stage; a retry
    /// after a conflict calls it again with the freshly-picked pair.
    fn commit(
        &mut self,
        now: SimTime,
        inv: &mut Inventory,
        host: HostId,
        ds: DatastoreId,
        mem_mb: u64,
        disk_gb: f64,
    ) -> GateDecision;

    /// Refreshes the shard's mirrored free-capacity view from the
    /// authoritative store (the staleness-window tick).
    fn sync(&mut self, now: SimTime, inv: &mut Inventory);
}
