//! Control-plane statistics: per-operation latency distributions with the
//! control/data split, and phase-level cost accounting.

use cpsim_des::FastMap;

use cpsim_metrics::Histogram;

use crate::task::TaskReport;

/// Latency and cost distributions for one operation kind.
#[derive(Clone, Debug, Default)]
pub struct KindStats {
    /// Completed tasks.
    pub completed: u64,
    /// Failed tasks.
    pub failed: u64,
    /// Phase retries across all tasks of this kind.
    pub retries: u64,
    /// Tasks that exhausted their retry budget.
    pub aborted: u64,
    /// Tasks whose partial state was rolled back on failure.
    pub rolled_back: u64,
    /// End-to-end latency, seconds.
    pub latency: Histogram,
    /// Management CPU seconds per task.
    pub cpu: Histogram,
    /// Database seconds per task.
    pub db: Histogram,
    /// Host-agent seconds per task.
    pub agent: Histogram,
    /// Data-transfer wall seconds per task.
    pub data: Histogram,
    /// Resource-queue wait seconds per task.
    pub queue: Histogram,
    /// Admission wait seconds per task.
    pub admission: Histogram,
}

/// Aggregated control-plane statistics.
#[derive(Clone, Debug, Default)]
pub struct MgmtStats {
    submitted: u64,
    /// Per-kind stats, kept sorted by kind name: the dozen-odd kinds make
    /// a binary-searched vector cheaper than a tree on the per-task
    /// record path, and iteration order stays deterministic for free.
    by_kind: Vec<(&'static str, KindStats)>,
    /// Sum of service seconds by (kind, class, label) — the data behind
    /// the per-phase cost-breakdown table. Accumulated in a hash map (one
    /// probe per breakdown row beats a string-tuple tree comparison at
    /// every node); [`phase_totals`](Self::phase_totals) sorts on access,
    /// and per-key accumulation order is chronological either way, so the
    /// emitted totals are bit-identical to the ordered-map ones.
    // cpsim-lint: allow(no-unordered-iteration): accessor sorts before exposing; per-key += is order-independent
    phase_totals: FastMap<(&'static str, &'static str, &'static str), (f64, u64)>,
    // Fault-injection counters (all zero in fault-free runs).
    retries: u64,
    aborts: u64,
    rollbacks: u64,
    agent_timeouts: u64,
    host_crashes: u64,
    hosts_declared_down: u64,
    resyncs: u64,
    // Federation counters (all zero without an external placement gate).
    placement_commits: u64,
    placement_conflicts: u64,
    placement_syncs: u64,
}

impl MgmtStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        MgmtStats::default()
    }

    /// Notes a submission of `kind`.
    pub fn on_submitted(&mut self, _kind: &'static str) {
        self.submitted += 1;
    }

    /// The entry for `kind`, inserted at its sorted position if new.
    fn kind_entry<'a>(
        by_kind: &'a mut Vec<(&'static str, KindStats)>,
        kind: &'static str,
    ) -> &'a mut KindStats {
        let i = match by_kind.binary_search_by_key(&kind, |(k, _)| *k) {
            Ok(i) => i,
            Err(i) => {
                by_kind.insert(i, (kind, KindStats::default()));
                i
            }
        };
        &mut by_kind[i].1
    }

    /// Records a finished task's report.
    pub fn on_finished(&mut self, report: &TaskReport) {
        let ks = Self::kind_entry(&mut self.by_kind, report.kind);
        if report.is_success() {
            ks.completed += 1;
        } else {
            ks.failed += 1;
        }
        ks.retries += u64::from(report.retries);
        ks.aborted += u64::from(report.aborted);
        ks.rolled_back += u64::from(report.rolled_back);
        ks.latency.record(report.latency.as_secs_f64());
        ks.cpu.record(report.cpu_secs);
        ks.db.record(report.db_secs);
        ks.agent.record(report.agent_secs);
        ks.data.record(report.data_secs);
        ks.queue.record(report.queue_secs);
        ks.admission.record(report.admission_secs);
        for (class, label, secs) in &report.breakdown {
            let entry = self
                .phase_totals
                .entry((report.kind, class.name(), label))
                .or_insert((0.0, 0));
            entry.0 += secs;
            entry.1 += 1;
        }
    }

    /// Notes one phase retry.
    pub fn on_retry(&mut self) {
        self.retries += 1;
    }

    /// Notes one task abort (retry budget exhausted).
    pub fn on_abort(&mut self) {
        self.aborts += 1;
    }

    /// Notes one partial-state rollback.
    pub fn on_rollback(&mut self) {
        self.rollbacks += 1;
    }

    /// Notes one injected host-agent hang that ran into the phase timeout.
    pub fn on_agent_timeout(&mut self) {
        self.agent_timeouts += 1;
    }

    /// Notes one host crash taking effect.
    pub fn on_host_crash(&mut self) {
        self.host_crashes += 1;
    }

    /// Notes a host declared down after consecutive heartbeat misses.
    pub fn on_host_declared_down(&mut self) {
        self.hosts_declared_down += 1;
    }

    /// Notes one inventory resync (host declared down or reconnected).
    pub fn on_resync(&mut self) {
        self.resyncs += 1;
    }

    /// Notes one placement accepted by the external placement gate.
    pub fn on_placement_commit(&mut self) {
        self.placement_commits += 1;
    }

    /// Notes one placement rejected by the external placement gate
    /// (stale-view conflict).
    pub fn on_placement_conflict(&mut self) {
        self.placement_conflicts += 1;
    }

    /// Notes one refresh of the mirrored placement view.
    pub fn on_placement_sync(&mut self) {
        self.placement_syncs += 1;
    }

    /// Total phase retries.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Total task aborts (retry budget exhausted).
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Total partial-state rollbacks.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Total injected agent hangs that hit the phase timeout.
    pub fn agent_timeouts(&self) -> u64 {
        self.agent_timeouts
    }

    /// Total host crashes that took effect.
    pub fn host_crashes(&self) -> u64 {
        self.host_crashes
    }

    /// Total times a host was declared down via heartbeat misses.
    pub fn hosts_declared_down(&self) -> u64 {
        self.hosts_declared_down
    }

    /// Total inventory resyncs triggered by fault detection/recovery.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Total placements accepted by the external placement gate.
    pub fn placement_commits(&self) -> u64 {
        self.placement_commits
    }

    /// Total placements rejected by the external placement gate.
    pub fn placement_conflicts(&self) -> u64 {
        self.placement_conflicts
    }

    /// Total refreshes of the mirrored placement view.
    pub fn placement_syncs(&self) -> u64 {
        self.placement_syncs
    }

    /// Total submissions.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total completions across kinds.
    pub fn completed(&self) -> u64 {
        self.by_kind.iter().map(|(_, k)| k.completed).sum()
    }

    /// Total failures across kinds.
    pub fn failed(&self) -> u64 {
        self.by_kind.iter().map(|(_, k)| k.failed).sum()
    }

    /// Stats for one kind, if any tasks of it finished.
    pub fn kind(&self, kind: &str) -> Option<&KindStats> {
        self.by_kind
            .binary_search_by_key(&kind, |(k, _)| *k)
            .ok()
            .map(|i| &self.by_kind[i].1)
    }

    /// Iterates kinds in deterministic order.
    pub fn kinds(&self) -> impl Iterator<Item = (&'static str, &KindStats)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates `(kind, class, label) -> (total_secs, count)` phase totals
    /// in deterministic order (sorted by key, exactly as the previous
    /// ordered-map representation iterated).
    pub fn phase_totals(
        &self,
    ) -> impl Iterator<Item = (&'static str, &'static str, &'static str, f64, u64)> + '_ {
        let mut rows: Vec<_> = self
            .phase_totals
            .iter()
            .map(|(&(k, c, l), &(s, n))| (k, c, l, s, n))
            .collect();
        rows.sort_unstable_by_key(|&(k, c, l, _, _)| (k, c, l));
        rows.into_iter()
    }

    /// Merges another stats object (for multi-run aggregation).
    pub fn merge(&mut self, other: &MgmtStats) {
        self.submitted += other.submitted;
        for &(kind, ref ks) in &other.by_kind {
            let mine = Self::kind_entry(&mut self.by_kind, kind);
            mine.completed += ks.completed;
            mine.failed += ks.failed;
            mine.retries += ks.retries;
            mine.aborted += ks.aborted;
            mine.rolled_back += ks.rolled_back;
            mine.latency.merge(&ks.latency);
            mine.cpu.merge(&ks.cpu);
            mine.db.merge(&ks.db);
            mine.agent.merge(&ks.agent);
            mine.data.merge(&ks.data);
            mine.queue.merge(&ks.queue);
            mine.admission.merge(&ks.admission);
        }
        for (key, (s, n)) in &other.phase_totals {
            let entry = self.phase_totals.entry(*key).or_insert((0.0, 0));
            entry.0 += s;
            entry.1 += n;
        }
        self.retries += other.retries;
        self.aborts += other.aborts;
        self.rollbacks += other.rollbacks;
        self.agent_timeouts += other.agent_timeouts;
        self.host_crashes += other.host_crashes;
        self.hosts_declared_down += other.hosts_declared_down;
        self.resyncs += other.resyncs;
        self.placement_commits += other.placement_commits;
        self.placement_conflicts += other.placement_conflicts;
        self.placement_syncs += other.placement_syncs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::PhaseClass;
    use cpsim_des::{SimDuration, SimTime};

    fn report(kind: &'static str, latency: f64, data: f64) -> TaskReport {
        TaskReport {
            kind,
            tag: 0,
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::ZERO + SimDuration::from_secs_f64(latency),
            latency: SimDuration::from_secs_f64(latency),
            cpu_secs: 0.1,
            db_secs: 0.2,
            agent_secs: 1.0,
            data_secs: data,
            queue_secs: 0.0,
            admission_secs: 0.0,
            produced_vm: None,
            target_vm: None,
            placement: None,
            error: None,
            retries: 0,
            aborted: false,
            rolled_back: false,
            breakdown: vec![(PhaseClass::Cpu, "api-ingress", 0.1)],
        }
    }

    #[test]
    fn records_by_kind() {
        let mut s = MgmtStats::new();
        s.on_submitted("clone-full");
        s.on_submitted("clone-linked");
        s.on_finished(&report("clone-full", 120.0, 100.0));
        s.on_finished(&report("clone-linked", 8.0, 0.0));
        assert_eq!(s.submitted(), 2);
        assert_eq!(s.completed(), 2);
        assert_eq!(s.failed(), 0);
        let full = s.kind("clone-full").unwrap();
        assert_eq!(full.completed, 1);
        assert!((full.latency.mean() - 120.0).abs() < 1e-9);
        assert!(s.kind("power-on").is_none());
    }

    #[test]
    fn failures_counted_separately() {
        let mut s = MgmtStats::new();
        let mut r = report("power-on", 2.0, 0.0);
        r.error = Some("insufficient memory".into());
        s.on_finished(&r);
        assert_eq!(s.failed(), 1);
        assert_eq!(s.completed(), 0);
    }

    #[test]
    fn phase_totals_accumulate() {
        let mut s = MgmtStats::new();
        s.on_finished(&report("clone-full", 120.0, 100.0));
        s.on_finished(&report("clone-full", 130.0, 110.0));
        let rows: Vec<_> = s.phase_totals().collect();
        assert_eq!(rows.len(), 1);
        let (kind, class, label, secs, count) = rows[0];
        assert_eq!((kind, class, label), ("clone-full", "cpu", "api-ingress"));
        assert!((secs - 0.2).abs() < 1e-12);
        assert_eq!(count, 2);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = MgmtStats::new();
        a.on_submitted("x");
        a.on_finished(&report("clone-full", 100.0, 90.0));
        let mut b = MgmtStats::new();
        b.on_submitted("x");
        b.on_finished(&report("clone-full", 200.0, 180.0));
        a.merge(&b);
        assert_eq!(a.submitted(), 2);
        assert_eq!(a.kind("clone-full").unwrap().latency.count(), 2);
        let (_, _, _, secs, n) = a.phase_totals().next().unwrap();
        assert!((secs - 0.2).abs() < 1e-12);
        assert_eq!(n, 2);
    }
}
