//! Deterministic fault-injection plans for the control plane.
//!
//! The paper's management stack ran against real datacenters where hosts
//! crash, agents hang, the inventory database slows down under pressure,
//! and datastores drop offline. This crate describes those disturbances as
//! **typed, seed-reproducible schedules** that the simulator replays:
//!
//! - a [`FaultPlan`] combines *fixed events* (a specific fault at a
//!   specific time) with *rate-driven processes* (Poisson streams of a
//!   fault template over the plan horizon);
//! - [`FaultPlan::materialize`] expands the processes into concrete
//!   [`FaultEvent`]s using the workspace's dedicated fault RNG stream
//!   ([`Streams::FAULTS`]), so the same master seed always produces the
//!   same fault timeline — and faults never perturb the draws of any other
//!   stochastic component;
//! - a [`RecoveryPolicy`] describes how the management plane reacts:
//!   per-phase timeouts, bounded retries with exponential backoff and
//!   deterministic jitter, and heartbeat-miss host-down detection.
//!
//! An empty plan injects nothing and draws nothing: simulations built with
//! [`FaultPlan::empty`] are bit-identical to simulations built without a
//! plan at all.

use cpsim_des::{SimDuration, SimRng, SimTime, Streams};
use rand::Rng;

/// One kind of injected fault (or its paired recovery).
///
/// Hosts and datastores are addressed by **creation index** (the order the
/// scenario created them), not by entity id: plans are written before the
/// topology is materialized. The control plane resolves indices modulo the
/// live entity count, so a plan is portable across topology sizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The host dies: its agent queue is lost, in-flight primitives are
    /// interrupted, and heartbeats stop until recovery.
    HostCrash {
        /// Host creation index.
        host: usize,
        /// How long the host stays down.
        down_for: SimDuration,
    },
    /// The host comes back (scheduled internally by the plane when it
    /// processes the matching [`FaultKind::HostCrash`]).
    HostRecover {
        /// Host creation index.
        host: usize,
    },
    /// All host agents run slow: sampled primitive service times are
    /// multiplied by `factor` while the window is active.
    AgentSlowdown {
        /// Service-time multiplier (> 1 slows agents down).
        factor: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// Ends one matching [`FaultKind::AgentSlowdown`] window (internal).
    AgentSpeedRestore {
        /// The factor of the window being closed.
        factor: f64,
    },
    /// Degraded database service: statement service times are multiplied
    /// by `factor` while the window is active (a stalled or overloaded
    /// inventory DB).
    DbDegraded {
        /// Service-time multiplier (> 1 slows the DB down).
        factor: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// Ends one matching [`FaultKind::DbDegraded`] window (internal).
    DbRestore {
        /// The factor of the window being closed.
        factor: f64,
    },
    /// The datastore rejects new work (provisioning phases that would
    /// touch it fail and are retried) for the window.
    DatastoreOutage {
        /// Datastore creation index.
        ds: usize,
        /// Outage length.
        duration: SimDuration,
    },
    /// Ends a [`FaultKind::DatastoreOutage`] (internal).
    DatastoreRestore {
        /// Datastore creation index.
        ds: usize,
    },
    /// The host is up but its heartbeats are lost (a management-network
    /// partition): the plane may falsely declare the host down.
    HeartbeatDrops {
        /// Host creation index.
        host: usize,
        /// Window length.
        duration: SimDuration,
    },
    /// Ends a [`FaultKind::HeartbeatDrops`] window (internal).
    HeartbeatRestore {
        /// Host creation index.
        host: usize,
    },
}

impl FaultKind {
    /// Short stable name, for counters and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::HostCrash { .. } => "host-crash",
            FaultKind::HostRecover { .. } => "host-recover",
            FaultKind::AgentSlowdown { .. } => "agent-slowdown",
            FaultKind::AgentSpeedRestore { .. } => "agent-speed-restore",
            FaultKind::DbDegraded { .. } => "db-degraded",
            FaultKind::DbRestore { .. } => "db-restore",
            FaultKind::DatastoreOutage { .. } => "datastore-outage",
            FaultKind::DatastoreRestore { .. } => "datastore-restore",
            FaultKind::HeartbeatDrops { .. } => "heartbeat-drops",
            FaultKind::HeartbeatRestore { .. } => "heartbeat-restore",
        }
    }
}

/// A concrete fault scheduled at a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A Poisson stream of one fault template over the plan horizon.
///
/// Host-targeted templates rotate their target: the `i`-th arrival hits
/// creation index `host + i`, spreading a crash storm across the fleet
/// instead of hammering one machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProcess {
    /// Mean arrivals per simulated hour.
    pub rate_per_hour: f64,
    /// The fault injected at each arrival.
    pub template: FaultKind,
}

/// How the control plane recovers from injected faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// How long the plane waits on an unresponsive host-agent primitive
    /// before declaring a phase timeout.
    pub agent_timeout: SimDuration,
    /// Retry budget per task: after this many retries the task aborts and
    /// rolls back.
    pub max_retries: u32,
    /// First retry backoff.
    pub backoff_base: SimDuration,
    /// Multiplier applied per additional retry.
    pub backoff_factor: f64,
    /// Backoff ceiling (before jitter).
    pub backoff_max: SimDuration,
    /// Uniform jitter added on top of the backoff, as a fraction of it
    /// (drawn from the deterministic fault RNG stream).
    pub jitter_frac: f64,
    /// Consecutive heartbeat misses before the plane declares a host down
    /// and starts an inventory resync.
    pub heartbeat_miss_threshold: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            agent_timeout: SimDuration::from_secs(120),
            max_retries: 3,
            backoff_base: SimDuration::from_secs(2),
            backoff_factor: 2.0,
            backoff_max: SimDuration::from_secs(60),
            jitter_frac: 0.1,
            heartbeat_miss_threshold: 3,
        }
    }
}

impl RecoveryPolicy {
    /// The backoff before retry number `attempt` (1-based): exponential
    /// growth capped at [`backoff_max`](Self::backoff_max), plus
    /// deterministic jitter drawn from `rng`.
    pub fn backoff(&self, attempt: u32, rng: &mut SimRng) -> SimDuration {
        let n = attempt.max(1) - 1;
        let raw = self.backoff_base.as_secs_f64() * self.backoff_factor.powi(n as i32);
        let capped = raw.min(self.backoff_max.as_secs_f64());
        let jitter = if self.jitter_frac > 0.0 {
            capped * self.jitter_frac * rng.gen::<f64>()
        } else {
            0.0
        };
        SimDuration::from_secs_f64(capped + jitter)
    }
}

/// A complete, reproducible fault schedule plus the recovery policy the
/// plane should apply.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Horizon over which rate-driven processes are materialized.
    pub horizon: SimDuration,
    /// Fixed events (injected verbatim).
    pub events: Vec<FaultEvent>,
    /// Rate-driven processes (expanded by [`materialize`](Self::materialize)).
    pub processes: Vec<FaultProcess>,
    /// Probability that any one host-agent primitive hangs until the
    /// phase timeout (drawn per submission from the fault RNG stream).
    pub agent_timeout_prob: f64,
    /// Recovery behavior.
    pub recovery: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::empty()
    }
}

impl FaultPlan {
    /// A plan that injects nothing (and draws nothing): bit-identical to
    /// running without a plan.
    pub fn empty() -> Self {
        FaultPlan {
            horizon: SimDuration::ZERO,
            events: Vec::new(),
            processes: Vec::new(),
            agent_timeout_prob: 0.0,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// An empty plan with a materialization horizon.
    pub fn new(horizon: SimDuration) -> Self {
        FaultPlan {
            horizon,
            ..FaultPlan::empty()
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.processes.is_empty() && self.agent_timeout_prob == 0.0
    }

    /// Adds a fixed event.
    pub fn with_event(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Adds a rate-driven process.
    pub fn with_process(mut self, rate_per_hour: f64, template: FaultKind) -> Self {
        self.processes.push(FaultProcess {
            rate_per_hour,
            template,
        });
        self
    }

    /// Sets the per-primitive agent hang probability.
    pub fn with_agent_timeout_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.agent_timeout_prob = p;
        self
    }

    /// Replaces the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Convenience: a host-crash storm at `rate_per_hour` (each crash
    /// keeps its host down for `down_for`, targets rotate across hosts)
    /// over `horizon`.
    pub fn host_crashes(rate_per_hour: f64, down_for: SimDuration, horizon: SimDuration) -> Self {
        FaultPlan::new(horizon)
            .with_process(rate_per_hour, FaultKind::HostCrash { host: 0, down_for })
    }

    /// Expands the plan into a concrete, time-sorted event list.
    ///
    /// Each process draws its Poisson arrivals from its own substream of
    /// the [`Streams::FAULTS`] family, so plans compose: adding a process
    /// never changes the timeline of the others, and the same `streams`
    /// always yields the same schedule. Empty plans draw nothing.
    pub fn materialize(&self, streams: &Streams) -> Vec<FaultEvent> {
        let mut out: Vec<FaultEvent> = self.events.clone();
        for (pi, proc_) in self.processes.iter().enumerate() {
            if proc_.rate_per_hour <= 0.0 || self.horizon.is_zero() {
                continue;
            }
            let mut rng = streams.rng(Streams::FAULTS + pi as u64);
            let rate_per_sec = proc_.rate_per_hour / 3_600.0;
            let mut t = 0.0_f64;
            let end = self.horizon.as_secs_f64();
            let mut arrival = 0usize;
            loop {
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / rate_per_sec;
                if t >= end {
                    break;
                }
                out.push(FaultEvent {
                    at: SimTime::ZERO + SimDuration::from_secs_f64(t),
                    kind: rotate_target(proc_.template, arrival),
                });
                arrival += 1;
            }
        }
        out.sort_by_key(|e| e.at);
        out
    }
}

/// Rotates host-targeted templates across arrivals so a storm spreads
/// over the fleet.
fn rotate_target(template: FaultKind, arrival: usize) -> FaultKind {
    match template {
        FaultKind::HostCrash { host, down_for } => FaultKind::HostCrash {
            host: host + arrival,
            down_for,
        },
        FaultKind::HeartbeatDrops { host, duration } => FaultKind::HeartbeatDrops {
            host: host + arrival,
            duration,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_materializes_to_nothing() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert!(plan.materialize(&Streams::new(7)).is_empty());
    }

    #[test]
    fn materialization_is_seed_deterministic() {
        let plan =
            FaultPlan::host_crashes(4.0, SimDuration::from_mins(10), SimDuration::from_hours(6))
                .with_process(
                    2.0,
                    FaultKind::DbDegraded {
                        factor: 3.0,
                        duration: SimDuration::from_mins(5),
                    },
                );
        let a = plan.materialize(&Streams::new(42));
        let b = plan.materialize(&Streams::new(42));
        let c = plan.materialize(&Streams::new(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
        assert!(a.iter().all(|e| e.at < SimTime::ZERO + plan.horizon));
    }

    #[test]
    fn adding_a_process_does_not_shift_existing_ones() {
        let base =
            FaultPlan::host_crashes(3.0, SimDuration::from_mins(10), SimDuration::from_hours(4));
        let extended = base.clone().with_process(
            5.0,
            FaultKind::AgentSlowdown {
                factor: 2.0,
                duration: SimDuration::from_mins(2),
            },
        );
        let streams = Streams::new(9);
        let crashes_alone: Vec<FaultEvent> = base.materialize(&streams);
        let crashes_in_extended: Vec<FaultEvent> = extended
            .materialize(&streams)
            .into_iter()
            .filter(|e| matches!(e.kind, FaultKind::HostCrash { .. }))
            .collect();
        assert_eq!(crashes_alone, crashes_in_extended);
    }

    #[test]
    fn crash_storm_rotates_hosts() {
        let plan =
            FaultPlan::host_crashes(30.0, SimDuration::from_mins(5), SimDuration::from_hours(2));
        let events = plan.materialize(&Streams::new(1));
        let hosts: Vec<usize> = events
            .iter()
            .map(|e| match e.kind {
                FaultKind::HostCrash { host, .. } => host,
                _ => unreachable!(),
            })
            .collect();
        assert!(hosts.len() > 5);
        assert_eq!(hosts, (0..hosts.len()).collect::<Vec<_>>());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RecoveryPolicy {
            jitter_frac: 0.0,
            ..RecoveryPolicy::default()
        };
        let mut rng = Streams::new(0).rng(Streams::FAULTS);
        let b1 = p.backoff(1, &mut rng);
        let b2 = p.backoff(2, &mut rng);
        let b3 = p.backoff(3, &mut rng);
        let b9 = p.backoff(9, &mut rng);
        assert_eq!(b1, SimDuration::from_secs(2));
        assert_eq!(b2, SimDuration::from_secs(4));
        assert_eq!(b3, SimDuration::from_secs(8));
        assert_eq!(b9, p.backoff_max, "capped");
    }

    #[test]
    fn backoff_jitter_is_deterministic() {
        let p = RecoveryPolicy::default();
        let streams = Streams::new(5);
        let mut r1 = streams.rng(Streams::FAULTS);
        let mut r2 = streams.rng(Streams::FAULTS);
        assert_eq!(p.backoff(2, &mut r1), p.backoff(2, &mut r2));
        let base = RecoveryPolicy {
            jitter_frac: 0.0,
            ..p
        }
        .backoff(2, &mut r1);
        let jittered = p.backoff(2, &mut r2);
        assert!(jittered >= base, "jitter only adds");
    }

    #[test]
    fn fault_kind_names_are_stable() {
        assert_eq!(
            FaultKind::HostCrash {
                host: 0,
                down_for: SimDuration::ZERO
            }
            .name(),
            "host-crash"
        );
        assert_eq!(
            FaultKind::DbDegraded {
                factor: 2.0,
                duration: SimDuration::ZERO
            }
            .name(),
            "db-degraded"
        );
    }
}
