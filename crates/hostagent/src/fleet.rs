//! The [`AgentFleet`]: one bounded-concurrency agent per host.

use cpsim_des::FastMap;
use std::fmt;

use cpsim_des::{FifoQueue, SimDuration, SimRng, SimTime};
use cpsim_inventory::HostId;

use crate::cost::{HostCostModel, Primitive};

/// Errors raised by the agent fleet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostAgentError {
    /// No agent registered for this host.
    UnknownHost(HostId),
    /// The host still has queued or running primitives.
    HostBusy(HostId),
}

impl fmt::Display for HostAgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostAgentError::UnknownHost(id) => write!(f, "no agent for host {id}"),
            HostAgentError::HostBusy(id) => write!(f, "host {id} has outstanding primitives"),
        }
    }
}

impl std::error::Error for HostAgentError {}

/// Fault-injection adjustments applied to one submitted primitive.
///
/// The default (`scale == 1.0`, no forced time) reproduces the fault-free
/// behavior exactly: the sampled service time is used untouched, with no
/// extra arithmetic or RNG draws.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceMod {
    /// Multiplier on the sampled service time (agent-slowdown windows).
    pub scale: f64,
    /// If set, the primitive takes exactly this long instead of a sampled
    /// time — used to model a hung agent that runs into the management
    /// plane's phase timeout.
    pub force: Option<SimDuration>,
}

impl Default for ServiceMod {
    fn default() -> Self {
        ServiceMod {
            scale: 1.0,
            force: None,
        }
    }
}

/// A primitive that just entered service on some host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AgentStart<J> {
    /// The caller's job token.
    pub job: J,
    /// The primitive now in service.
    pub primitive: Primitive,
    /// Sampled service time; the caller schedules the completion event
    /// this far in the future.
    pub service: SimDuration,
    /// Time spent queued at the host before starting.
    pub waited: SimDuration,
}

/// What was lost when a host crashed: see [`AgentFleet::crash_host`].
#[derive(Clone, Debug, PartialEq)]
pub struct CrashReport<J> {
    /// Primitives that were in service when the host died.
    pub interrupted: Vec<(Primitive, J)>,
    /// Primitives still waiting in the agent queue.
    pub dropped: Vec<(Primitive, J)>,
}

/// One host's agent: its bounded-concurrency queue plus the jobs
/// currently in service (the FIFO queue hands payloads back to the
/// caller at service start and does not retain them, so crashes need
/// this list to know what they interrupt).
struct HostAgent<J> {
    queue: FifoQueue<(Primitive, J, ServiceMod)>,
    in_service: Vec<(Primitive, J)>,
}

/// Per-host agents with bounded concurrency and FIFO overflow queues.
///
/// Both maps are keyed lookups on the submit/complete hot path; the only
/// iteration ([`served`](Self::served)) sums an integer counter, so hash
/// ordering cannot leak into event order.
// cpsim-lint: allow(no-unordered-iteration): served() sums u64 counters; order never observed
pub struct AgentFleet<J> {
    agents: FastMap<HostId, HostAgent<J>>,
    /// Crash generation per host. Bumped on every crash so the control
    /// plane can discard completion events scheduled before the crash.
    /// Kept outside [`HostAgent`]: an epoch outlives host removal, so a
    /// re-added host keeps counting from its last crash.
    epochs: FastMap<HostId, u64>,
    cost: HostCostModel,
    rng: SimRng,
}

impl<J: Copy + PartialEq> AgentFleet<J> {
    /// Creates a fleet with the given cost model and service-time RNG.
    pub fn new(cost: HostCostModel, rng: SimRng) -> Self {
        AgentFleet {
            agents: FastMap::default(),
            epochs: FastMap::default(),
            cost,
            rng,
        }
    }

    /// Registers an agent for `host` executing at most `concurrency`
    /// primitives at once. Replaces any prior agent for the host.
    ///
    /// # Panics
    ///
    /// Panics if `concurrency` is zero.
    pub fn add_host(&mut self, host: HostId, concurrency: u32) {
        self.agents.insert(
            host,
            HostAgent {
                queue: FifoQueue::new(concurrency),
                in_service: Vec::new(),
            },
        );
    }

    /// Deregisters `host`'s agent.
    ///
    /// # Errors
    ///
    /// Fails if the host is unknown or still has work outstanding.
    pub fn remove_host(&mut self, host: HostId) -> Result<(), HostAgentError> {
        let agent = self
            .agents
            .get(&host)
            .ok_or(HostAgentError::UnknownHost(host))?;
        if agent.queue.in_service() > 0 || agent.queue.queue_len() > 0 {
            return Err(HostAgentError::HostBusy(host));
        }
        self.agents.remove(&host);
        Ok(())
    }

    /// Whether `host` has an agent.
    pub fn has_host(&self, host: HostId) -> bool {
        self.agents.contains_key(&host)
    }

    /// Submits `primitive` to `host`'s agent. Returns `Ok(Some)` if it
    /// starts service immediately, `Ok(None)` if it queued.
    pub fn submit(
        &mut self,
        now: SimTime,
        host: HostId,
        primitive: Primitive,
        job: J,
    ) -> Result<Option<AgentStart<J>>, HostAgentError> {
        self.submit_with(now, host, primitive, job, ServiceMod::default())
    }

    /// [`submit`](Self::submit) with fault-injection adjustments attached
    /// to the primitive.
    pub fn submit_with(
        &mut self,
        now: SimTime,
        host: HostId,
        primitive: Primitive,
        job: J,
        service_mod: ServiceMod,
    ) -> Result<Option<AgentStart<J>>, HostAgentError> {
        let agent = self
            .agents
            .get_mut(&host)
            .ok_or(HostAgentError::UnknownHost(host))?;
        let started = agent
            .queue
            .arrive(now, (primitive, job, service_mod))
            .map(|adm| Self::to_start(adm, &self.cost, &mut self.rng));
        if let Some(s) = &started {
            agent.in_service.push((s.primitive, s.job));
        }
        Ok(started)
    }

    /// Reports that `finished` completed its primitive on `host`; returns
    /// the next queued primitive entering service, if any.
    ///
    /// # Errors
    ///
    /// Fails if the host is unknown.
    ///
    /// # Panics
    ///
    /// Panics if `finished` was not in service on the host (an
    /// orchestration bug — or a completion event that survived a crash,
    /// which the caller must filter out via [`epoch`](Self::epoch)).
    pub fn complete(
        &mut self,
        now: SimTime,
        host: HostId,
        finished: J,
    ) -> Result<Option<AgentStart<J>>, HostAgentError> {
        let agent = self
            .agents
            .get_mut(&host)
            .ok_or(HostAgentError::UnknownHost(host))?;
        let pos = agent
            .in_service
            .iter()
            .position(|(_, j)| *j == finished)
            .expect("complete() for a job not in service");
        agent.in_service.swap_remove(pos);
        let started = agent
            .queue
            .complete(now)
            .map(|adm| Self::to_start(adm, &self.cost, &mut self.rng));
        if let Some(s) = &started {
            agent.in_service.push((s.primitive, s.job));
        }
        Ok(started)
    }

    /// Kills `host`'s agent mid-flight: in-service primitives are
    /// interrupted, queued primitives are dropped, and the host's crash
    /// epoch is bumped so stale completion events can be recognized. The
    /// agent itself stays registered (the host will reboot).
    ///
    /// # Errors
    ///
    /// Fails if the host is unknown.
    pub fn crash_host(
        &mut self,
        now: SimTime,
        host: HostId,
    ) -> Result<CrashReport<J>, HostAgentError> {
        let agent = self
            .agents
            .get_mut(&host)
            .ok_or(HostAgentError::UnknownHost(host))?;
        let dropped = agent
            .queue
            .fail_all(now)
            .into_iter()
            .map(|(p, j, _)| (p, j))
            .collect();
        let interrupted = std::mem::take(&mut agent.in_service);
        *self.epochs.entry(host).or_insert(0) += 1;
        Ok(CrashReport {
            interrupted,
            dropped,
        })
    }

    /// The crash epoch of `host` (0 if it has never crashed). Completion
    /// events carrying an older epoch refer to work lost in a crash.
    pub fn epoch(&self, host: HostId) -> u64 {
        self.epochs.get(&host).copied().unwrap_or(0)
    }

    /// Primitives currently in service on `host`.
    pub fn in_service(&self, host: HostId) -> u32 {
        self.agents.get(&host).map_or(0, |a| a.queue.in_service())
    }

    /// Primitives queued at `host`.
    pub fn queue_len(&self, host: HostId) -> usize {
        self.agents.get(&host).map_or(0, |a| a.queue.queue_len())
    }

    /// Mean busy fraction of `host`'s agent through `now`.
    pub fn utilization(&self, host: HostId, now: SimTime) -> f64 {
        self.agents
            .get(&host)
            .map_or(0.0, |a| a.queue.utilization(now))
    }

    /// Total primitives that have entered service across all hosts.
    pub fn served(&self) -> u64 {
        self.agents.values().map(|a| a.queue.served()).sum()
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &HostCostModel {
        &self.cost
    }

    fn to_start(
        adm: cpsim_des::resource::fifo::Admitted<(Primitive, J, ServiceMod)>,
        cost: &HostCostModel,
        rng: &mut SimRng,
    ) -> AgentStart<J> {
        let (primitive, job, service_mod) = adm.job;
        let service = match service_mod.force {
            Some(forced) => forced,
            None => {
                let sampled = cost.service_dist(primitive).sample(rng);
                if service_mod.scale != 1.0 {
                    SimDuration::from_secs_f64(sampled * service_mod.scale)
                } else {
                    SimDuration::from_secs_f64(sampled)
                }
            }
        };
        AgentStart {
            job,
            primitive,
            service,
            waited: adm.waited,
        }
    }
}

impl<J> fmt::Debug for AgentFleet<J> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AgentFleet")
            .field("hosts", &self.agents.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_des::{Dist, Streams};
    use cpsim_inventory::EntityId;

    fn fleet() -> (AgentFleet<u32>, HostId) {
        let mut cost = HostCostModel::default();
        // Deterministic costs for exact assertions.
        cost.set(Primitive::PowerOnVm, Dist::constant(2.0).unwrap());
        cost.set(Primitive::RegisterVm, Dist::constant(1.0).unwrap());
        let mut f = AgentFleet::new(cost, Streams::new(5).rng(0));
        let h = HostId::from_parts(0, 1);
        f.add_host(h, 2);
        (f, h)
    }

    #[test]
    fn starts_immediately_until_concurrency_cap() {
        let (mut f, h) = fleet();
        let s1 = f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 1).unwrap();
        let s2 = f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 2).unwrap();
        let s3 = f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 3).unwrap();
        assert!(s1.is_some() && s2.is_some());
        assert!(s3.is_none(), "third op queues behind concurrency 2");
        assert_eq!(f.in_service(h), 2);
        assert_eq!(f.queue_len(h), 1);
        assert_eq!(s1.unwrap().service, SimDuration::from_secs(2));
    }

    #[test]
    fn completion_starts_next_queued() {
        let (mut f, h) = fleet();
        f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 1).unwrap();
        f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 2).unwrap();
        f.submit(SimTime::ZERO, h, Primitive::RegisterVm, 3)
            .unwrap();
        let next = f.complete(SimTime::from_secs(2), h, 1).unwrap().unwrap();
        assert_eq!(next.job, 3);
        assert_eq!(next.primitive, Primitive::RegisterVm);
        assert_eq!(next.waited, SimDuration::from_secs(2));
        assert_eq!(next.service, SimDuration::from_secs(1));
    }

    #[test]
    fn hosts_are_independent() {
        let (mut f, h1) = fleet();
        let h2 = HostId::from_parts(1, 1);
        f.add_host(h2, 1);
        f.submit(SimTime::ZERO, h1, Primitive::PowerOnVm, 1)
            .unwrap();
        let s = f
            .submit(SimTime::ZERO, h2, Primitive::PowerOnVm, 2)
            .unwrap();
        assert!(s.is_some(), "h2 idle even though h1 busy");
        assert_eq!(f.served(), 2);
    }

    #[test]
    fn unknown_host_errors() {
        let (mut f, _) = fleet();
        let ghost = HostId::from_parts(9, 1);
        assert_eq!(
            f.submit(SimTime::ZERO, ghost, Primitive::PowerOnVm, 1),
            Err(HostAgentError::UnknownHost(ghost))
        );
        assert_eq!(
            f.complete(SimTime::ZERO, ghost, 1),
            Err(HostAgentError::UnknownHost(ghost))
        );
        assert_eq!(
            f.crash_host(SimTime::ZERO, ghost),
            Err(HostAgentError::UnknownHost(ghost))
        );
    }

    #[test]
    fn remove_host_requires_idle() {
        let (mut f, h) = fleet();
        f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 1).unwrap();
        assert_eq!(f.remove_host(h), Err(HostAgentError::HostBusy(h)));
        f.complete(SimTime::from_secs(2), h, 1).unwrap();
        f.remove_host(h).unwrap();
        assert!(!f.has_host(h));
    }

    #[test]
    fn utilization_reflects_busy_time() {
        let (mut f, h) = fleet();
        f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 1).unwrap();
        f.complete(SimTime::from_secs(2), h, 1).unwrap();
        // one of two slots busy for 2 s out of 4 s => 0.25
        assert!((f.utilization(h, SimTime::from_secs(4)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn service_mod_scales_and_forces() {
        let (mut f, h) = fleet();
        let slow = f
            .submit_with(
                SimTime::ZERO,
                h,
                Primitive::PowerOnVm,
                1,
                ServiceMod {
                    scale: 3.0,
                    force: None,
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(slow.service, SimDuration::from_secs(6), "2 s × 3");
        let hung = f
            .submit_with(
                SimTime::ZERO,
                h,
                Primitive::PowerOnVm,
                2,
                ServiceMod {
                    scale: 1.0,
                    force: Some(SimDuration::from_secs(120)),
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(hung.service, SimDuration::from_secs(120));
    }

    #[test]
    fn crash_reports_interrupted_and_dropped_and_bumps_epoch() {
        let (mut f, h) = fleet();
        f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 1).unwrap();
        f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 2).unwrap();
        f.submit(SimTime::ZERO, h, Primitive::RegisterVm, 3)
            .unwrap();
        assert_eq!(f.epoch(h), 0);
        let report = f.crash_host(SimTime::from_secs(1), h).unwrap();
        assert_eq!(
            report.interrupted,
            vec![(Primitive::PowerOnVm, 1), (Primitive::PowerOnVm, 2)]
        );
        assert_eq!(report.dropped, vec![(Primitive::RegisterVm, 3)]);
        assert_eq!(f.epoch(h), 1);
        assert_eq!(f.in_service(h), 0);
        assert_eq!(f.queue_len(h), 0);
        // Rebooted host accepts new work immediately.
        let s = f
            .submit(SimTime::from_secs(2), h, Primitive::PowerOnVm, 4)
            .unwrap();
        assert!(s.is_some());
    }

    #[test]
    #[should_panic(expected = "not in service")]
    fn stale_completion_panics() {
        let (mut f, h) = fleet();
        f.submit(SimTime::ZERO, h, Primitive::PowerOnVm, 1).unwrap();
        f.crash_host(SimTime::ZERO, h).unwrap();
        // Completion event from before the crash: job 1 is gone.
        let _ = f.complete(SimTime::from_secs(2), h, 1);
    }
}
