//! Heartbeat / property-update traffic from hosts to the management
//! server.
//!
//! Every connected host periodically pushes state updates that the
//! management server must process (CPU time) and persist (database time).
//! This background load scales with inventory size and competes with
//! foreground operations for the same control-plane resources — one of the
//! design pressures the paper highlights for large clouds.

use cpsim_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Heartbeat cadence and per-beat control-plane costs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatSpec {
    /// Interval between beats from one host.
    pub interval: SimDuration,
    /// Management-server CPU consumed per beat.
    pub mgmt_cpu: SimDuration,
    /// Database service time consumed per beat.
    pub db_time: SimDuration,
}

impl HeartbeatSpec {
    /// Spec with no cost and an effectively-infinite interval (heartbeats
    /// disabled).
    pub fn disabled() -> Self {
        HeartbeatSpec {
            interval: SimDuration::MAX,
            mgmt_cpu: SimDuration::ZERO,
            db_time: SimDuration::ZERO,
        }
    }

    /// Whether beats are effectively disabled.
    pub fn is_disabled(&self) -> bool {
        self.interval == SimDuration::MAX
    }

    /// First beat for host number `index`: staggered across the interval
    /// so a large fleet does not beat in lockstep.
    pub fn first_beat(&self, index: usize) -> SimTime {
        if self.is_disabled() {
            return SimTime::MAX;
        }
        let interval = self.interval.as_micros().max(1);
        let offset = (index as u64).wrapping_mul(interval / 16 + 1) % interval;
        SimTime::ZERO + SimDuration::from_micros(offset)
    }

    /// Aggregate control-plane demand (CPU + DB busy-seconds per second)
    /// imposed by `hosts` hosts.
    pub fn load_per_sec(&self, hosts: usize) -> f64 {
        if self.is_disabled() {
            return 0.0;
        }
        let per_beat = self.mgmt_cpu.as_secs_f64() + self.db_time.as_secs_f64();
        hosts as f64 * per_beat / self.interval.as_secs_f64()
    }
}

impl Default for HeartbeatSpec {
    /// 20 s cadence, 3 ms CPU + 2 ms DB per beat: the magnitudes reported
    /// for per-host synchronization traffic in the authors' prior work.
    fn default() -> Self {
        HeartbeatSpec {
            interval: SimDuration::from_secs(20),
            mgmt_cpu: SimDuration::from_millis(3),
            db_time: SimDuration::from_millis(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_load_scales_linearly() {
        let hb = HeartbeatSpec::default();
        let one = hb.load_per_sec(1);
        let thousand = hb.load_per_sec(1000);
        assert!((thousand - 1000.0 * one).abs() < 1e-12);
        // 5 ms per 20 s per host = 0.25 ms/s
        assert!((one - 0.00025).abs() < 1e-9);
    }

    #[test]
    fn disabled_spec_is_inert() {
        let hb = HeartbeatSpec::disabled();
        assert!(hb.is_disabled());
        assert_eq!(hb.load_per_sec(100), 0.0);
        assert_eq!(hb.first_beat(3), SimTime::MAX);
    }

    #[test]
    fn first_beats_are_staggered_within_interval() {
        let hb = HeartbeatSpec::default();
        let beats: Vec<SimTime> = (0..64).map(|i| hb.first_beat(i)).collect();
        for &b in &beats {
            assert!(b < SimTime::ZERO + hb.interval);
        }
        // Not all identical.
        assert!(beats.iter().any(|b| *b != beats[0]));
    }

    #[test]
    fn serde_round_trip() {
        let hb = HeartbeatSpec::default();
        let json = serde_json::to_string(&hb).unwrap();
        let back: HeartbeatSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(hb, back);
    }
}
