//! The host-agent model: per-host execution of primitive operations with
//! bounded concurrency, plus the periodic heartbeat/property-update traffic
//! every host imposes on the management server.
//!
//! A management operation (clone, power-on, ...) decomposes into one or
//! more host-side [`Primitive`]s. Each host runs an agent (`hostd` in the
//! original stack) that executes at most `concurrency` primitives at once;
//! excess work queues FIFO at the host. Primitive service times come from a
//! serializable [`HostCostModel`].
//!
//! ```
//! use cpsim_des::{SimTime, Streams};
//! use cpsim_hostagent::{AgentFleet, HostCostModel, Primitive};
//! use cpsim_inventory::{HostSpec, Inventory};
//!
//! let mut inv = Inventory::new();
//! let host = inv.add_host(HostSpec::new("esx0", 20_000, 65_536));
//!
//! let mut fleet: AgentFleet<u32> =
//!     AgentFleet::new(HostCostModel::default(), Streams::new(1).rng(0));
//! fleet.add_host(host, 2);
//!
//! let started = fleet.submit(SimTime::ZERO, host, Primitive::PowerOnVm, 7).unwrap();
//! let start = started.expect("agent idle: starts immediately");
//! assert_eq!(start.job, 7);
//! assert!(start.service.as_secs_f64() > 0.0);
//! ```

pub mod cost;
pub mod fleet;
pub mod heartbeat;

pub use cost::{HostCostModel, Primitive};
pub use fleet::{AgentFleet, AgentStart, CrashReport, HostAgentError, ServiceMod};
pub use heartbeat::HeartbeatSpec;
