//! Host-side primitives and their service-time model.

use cpsim_des::Dist;
use serde::{Deserialize, Serialize};

/// A host-side primitive operation executed by the agent.
///
/// These are the units the management plane dispatches to hosts; each
/// management operation expands into one or more primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Primitive {
    /// Create the VM's home directory and descriptor files.
    CreateVmFiles,
    /// Register a VM with the host.
    RegisterVm,
    /// Unregister a VM from the host.
    UnregisterVm,
    /// Power a VM on (through to the task-visible "powered on" point).
    PowerOnVm,
    /// Power a VM off (guest shutdown handshake included).
    PowerOffVm,
    /// Apply a configuration change (vNIC, memory, fencing).
    ReconfigureVm,
    /// Create a snapshot (quiesce + delta creation).
    CreateSnapshot,
    /// Remove a snapshot — control portion only; the merge data movement
    /// is charged to the datastore separately.
    RemoveSnapshot,
    /// Delete the VM's files.
    DeleteVmFiles,
    /// Rescan/mount a datastore.
    MountDatastore,
    /// Source-side preparation of a clone (open disks, snapshot handles).
    PrepareClone,
    /// Fork a running parent VM in place (instant clone): shares memory
    /// pages and disk chain, so it is the cheapest provisioning primitive.
    InstantFork,
    /// Destination-side finalization of a clone (customization, identity).
    FinalizeClone,
    /// Source-side work of a live migration.
    MigrateSource,
    /// Destination-side work of a live migration.
    MigrateDest,
}

impl Primitive {
    /// All primitives, for building complete cost tables.
    pub const ALL: [Primitive; 15] = [
        Primitive::CreateVmFiles,
        Primitive::RegisterVm,
        Primitive::UnregisterVm,
        Primitive::PowerOnVm,
        Primitive::PowerOffVm,
        Primitive::ReconfigureVm,
        Primitive::CreateSnapshot,
        Primitive::RemoveSnapshot,
        Primitive::DeleteVmFiles,
        Primitive::MountDatastore,
        Primitive::PrepareClone,
        Primitive::InstantFork,
        Primitive::FinalizeClone,
        Primitive::MigrateSource,
        Primitive::MigrateDest,
    ];

    /// A stable lowercase name for tables and traces.
    pub fn name(self) -> &'static str {
        match self {
            Primitive::CreateVmFiles => "create-vm-files",
            Primitive::RegisterVm => "register-vm",
            Primitive::UnregisterVm => "unregister-vm",
            Primitive::PowerOnVm => "power-on-vm",
            Primitive::PowerOffVm => "power-off-vm",
            Primitive::ReconfigureVm => "reconfigure-vm",
            Primitive::CreateSnapshot => "create-snapshot",
            Primitive::RemoveSnapshot => "remove-snapshot",
            Primitive::DeleteVmFiles => "delete-vm-files",
            Primitive::MountDatastore => "mount-datastore",
            Primitive::PrepareClone => "prepare-clone",
            Primitive::InstantFork => "instant-fork",
            Primitive::FinalizeClone => "finalize-clone",
            Primitive::MigrateSource => "migrate-source",
            Primitive::MigrateDest => "migrate-dest",
        }
    }
}

impl std::fmt::Display for Primitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Service-time distributions (seconds) per primitive.
///
/// Defaults are calibrated to the magnitudes reported for the vSphere-era
/// stack in the authors' published work: seconds-scale host operations,
/// log-normally dispersed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostCostModel {
    /// One entry per primitive; see [`HostCostModel::service_dist`].
    pub dists: Vec<(Primitive, Dist)>,
}

impl HostCostModel {
    /// The service-time distribution for `p`.
    ///
    /// # Panics
    ///
    /// Panics if the model has no entry for `p` (a malformed config; the
    /// default model is always complete).
    pub fn service_dist(&self, p: Primitive) -> &Dist {
        self.dists
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, d)| d)
            .expect("the default cost model covers every primitive")
    }

    /// Replaces the distribution for `p`.
    pub fn set(&mut self, p: Primitive, d: Dist) {
        if let Some(slot) = self.dists.iter_mut().find(|(q, _)| *q == p) {
            slot.1 = d;
        } else {
            self.dists.push((p, d));
        }
    }

    /// Mean service time of `p` in seconds.
    pub fn mean_secs(&self, p: Primitive) -> f64 {
        self.service_dist(p).mean().unwrap_or(0.0)
    }
}

impl Default for HostCostModel {
    fn default() -> Self {
        let ln = |median: f64, sigma: f64| Dist::log_normal(median, sigma).expect("valid params");
        HostCostModel {
            dists: vec![
                (Primitive::CreateVmFiles, ln(1.2, 0.30)),
                (Primitive::RegisterVm, ln(0.6, 0.30)),
                (Primitive::UnregisterVm, ln(0.4, 0.30)),
                (Primitive::PowerOnVm, ln(2.8, 0.35)),
                (Primitive::PowerOffVm, ln(1.5, 0.35)),
                (Primitive::ReconfigureVm, ln(1.8, 0.40)),
                (Primitive::CreateSnapshot, ln(2.2, 0.40)),
                (Primitive::RemoveSnapshot, ln(1.0, 0.30)),
                (Primitive::DeleteVmFiles, ln(1.2, 0.30)),
                (Primitive::MountDatastore, ln(4.0, 0.30)),
                (Primitive::PrepareClone, ln(0.8, 0.30)),
                (Primitive::InstantFork, ln(0.5, 0.30)),
                (Primitive::FinalizeClone, ln(1.5, 0.35)),
                (Primitive::MigrateSource, ln(3.0, 0.40)),
                (Primitive::MigrateDest, ln(2.0, 0.40)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_covers_all_primitives() {
        let m = HostCostModel::default();
        for p in Primitive::ALL {
            let _ = m.service_dist(p); // must not panic
            assert!(m.mean_secs(p) > 0.0, "{p} has zero mean");
        }
    }

    #[test]
    fn set_overrides_distribution() {
        let mut m = HostCostModel::default();
        m.set(Primitive::PowerOnVm, Dist::constant(9.0).unwrap());
        assert_eq!(m.mean_secs(Primitive::PowerOnVm), 9.0);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Primitive::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Primitive::ALL.len());
    }

    #[test]
    fn serde_round_trip() {
        let m = HostCostModel::default();
        let json = serde_json::to_string(&m).unwrap();
        let back: HostCostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn power_on_slower_than_register() {
        let m = HostCostModel::default();
        assert!(m.mean_secs(Primitive::PowerOnVm) > m.mean_secs(Primitive::RegisterVm));
    }
}
