//! Calibrated workload profiles: the substitution for the paper's two
//! proprietary production traces, plus an enterprise-datacenter baseline.
//!
//! Magnitudes follow the authors' published characterizations of the
//! vSphere-era stack: self-service clouds are provisioning-dominated with
//! bursty arrivals and short VM lifetimes, while enterprise datacenters
//! run mostly power/reconfigure/migrate operations over a long-lived VM
//! population.

use cpsim_des::Dist;
use cpsim_mgmt::CloneMode;
use serde::{Deserialize, Serialize};

use crate::arrival::ArrivalProcess;
use crate::spec::{RequestTemplate, WorkloadSpec};

/// Declarative description of the simulated datacenter a profile runs on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of hosts.
    pub hosts: u32,
    /// Per-host CPU capacity, MHz.
    pub host_cpu_mhz: u64,
    /// Per-host memory, MiB.
    pub host_mem_mb: u64,
    /// Number of datastores (all connected to all hosts).
    pub datastores: u32,
    /// Per-datastore capacity, GiB.
    pub ds_capacity_gb: f64,
    /// Per-datastore copy bandwidth, MiB/s.
    pub ds_bandwidth_mbps: f64,
    /// Catalog templates: `(name, vcpus, mem_mb, disk_gb)`.
    pub templates: Vec<(String, u32, u64, f64)>,
    /// Whether templates are pre-seeded on every datastore (aggressive
    /// reconfiguration already done) or only on their home datastore.
    pub seed_templates_everywhere: bool,
    /// Pre-provisioned vApps at time zero (enterprise baseline population).
    pub initial_vapps: u32,
    /// Members per pre-provisioned vApp.
    pub initial_vapp_size: u32,
}

/// A workload spec plus the topology it is calibrated for.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Profile name.
    pub name: String,
    /// The workload.
    pub workload: WorkloadSpec,
    /// The datacenter.
    pub topology: Topology,
}

fn ln(median: f64, sigma: f64) -> Dist {
    Dist::log_normal(median, sigma).expect("valid parameters")
}

/// "Cloud A": a training-lab style self-service cloud — heavily bursty
/// class-start provisioning storms, short-lived vApps, linked clones,
/// templates pre-seeded everywhere.
pub fn cloud_a() -> Profile {
    Profile {
        name: "cloud-a".into(),
        workload: WorkloadSpec {
            name: "cloud-a".into(),
            arrivals: ArrivalProcess::Mmpp {
                calm_per_hour: 4.0,
                burst_per_hour: 80.0,
                calm_dwell_hours: 2.0,
                burst_dwell_hours: 0.25,
            },
            mix: vec![
                (0.62, RequestTemplate::Instantiate),
                (0.08, RequestTemplate::StartVapp),
                (0.08, RequestTemplate::StopVapp),
                (0.06, RequestTemplate::Recompose),
                (0.08, RequestTemplate::ReconfigureVm),
                (0.04, RequestTemplate::SnapshotVm),
                (0.04, RequestTemplate::DeleteVapp),
            ],
            vapp_size: ln(6.0, 0.6),
            lifetime_hours: Some(ln(6.0, 0.7)),
            clone_mode: CloneMode::Linked,
            recompose_add: ln(2.0, 0.4),
        },
        topology: Topology {
            hosts: 32,
            host_cpu_mhz: 48_000,
            host_mem_mb: 262_144,
            datastores: 8,
            ds_capacity_gb: 4_096.0,
            ds_bandwidth_mbps: 200.0,
            templates: vec![
                ("lab-linux".into(), 2, 4_096, 20.0),
                ("lab-windows".into(), 2, 4_096, 40.0),
            ],
            seed_templates_everywhere: true,
            initial_vapps: 0,
            initial_vapp_size: 0,
        },
    }
}

/// "Cloud B": a dev/test self-service cloud — diurnal arrivals, longer
/// lifetimes, linked clones but *without* proactive template seeding (so
/// shadow copies appear until the cloud reconfigures).
pub fn cloud_b() -> Profile {
    Profile {
        name: "cloud-b".into(),
        workload: WorkloadSpec {
            name: "cloud-b".into(),
            arrivals: ArrivalProcess::Diurnal {
                per_hour: 8.0,
                amplitude: 0.8,
                peak_hour: 14.0,
            },
            mix: vec![
                (0.35, RequestTemplate::Instantiate),
                (0.15, RequestTemplate::StartVapp),
                (0.15, RequestTemplate::StopVapp),
                (0.10, RequestTemplate::SnapshotVm),
                (0.10, RequestTemplate::ReconfigureVm),
                (0.05, RequestTemplate::Recompose),
                (0.05, RequestTemplate::DeleteVapp),
                (0.05, RequestTemplate::MigrateVm),
            ],
            vapp_size: ln(3.0, 0.5),
            lifetime_hours: Some(ln(72.0, 1.0)),
            clone_mode: CloneMode::Linked,
            recompose_add: ln(1.5, 0.4),
        },
        topology: Topology {
            hosts: 48,
            host_cpu_mhz: 48_000,
            host_mem_mb: 262_144,
            datastores: 12,
            ds_capacity_gb: 4_096.0,
            ds_bandwidth_mbps: 200.0,
            templates: vec![
                ("dev-linux".into(), 1, 2_048, 16.0),
                ("dev-windows".into(), 2, 4_096, 32.0),
                ("dev-db".into(), 4, 8_192, 64.0),
            ],
            seed_templates_everywhere: false,
            initial_vapps: 0,
            initial_vapp_size: 0,
        },
    }
}

/// The enterprise-datacenter baseline: a long-lived VM population
/// administered with power, reconfigure, migrate and snapshot operations;
/// provisioning is rare and uses full clones.
pub fn enterprise() -> Profile {
    Profile {
        name: "enterprise".into(),
        workload: WorkloadSpec {
            name: "enterprise".into(),
            arrivals: ArrivalProcess::Diurnal {
                per_hour: 6.0,
                amplitude: 0.6,
                peak_hour: 10.0,
            },
            mix: vec![
                (0.35, RequestTemplate::PowerToggleVm),
                (0.20, RequestTemplate::ReconfigureVm),
                (0.15, RequestTemplate::MigrateVm),
                (0.15, RequestTemplate::SnapshotVm),
                (0.05, RequestTemplate::Instantiate),
                (0.05, RequestTemplate::StartVapp),
                (0.05, RequestTemplate::StopVapp),
            ],
            vapp_size: ln(2.0, 0.4),
            lifetime_hours: None,
            clone_mode: CloneMode::Full,
            recompose_add: ln(1.0, 0.3),
        },
        topology: Topology {
            hosts: 64,
            host_cpu_mhz: 48_000,
            host_mem_mb: 262_144,
            datastores: 16,
            ds_capacity_gb: 8_192.0,
            ds_bandwidth_mbps: 200.0,
            templates: vec![
                ("corp-linux".into(), 2, 4_096, 24.0),
                ("corp-windows".into(), 2, 8_192, 40.0),
            ],
            seed_templates_everywhere: false,
            initial_vapps: 24,
            initial_vapp_size: 8,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in [cloud_a(), cloud_b(), enterprise()] {
            p.workload
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(p.topology.hosts > 0);
            assert!(!p.topology.templates.is_empty());
        }
    }

    #[test]
    fn clouds_are_provisioning_heavy_enterprise_is_not() {
        let inst = |p: &Profile| p.workload.fraction_of(RequestTemplate::Instantiate);
        assert!(inst(&cloud_a()) > 0.5);
        assert!(inst(&cloud_b()) > 0.3);
        assert!(inst(&enterprise()) < 0.1);
    }

    #[test]
    fn cloud_lifetimes_shorter_than_enterprise() {
        let a = cloud_a().workload.lifetime_hours.unwrap().mean().unwrap();
        let b = cloud_b().workload.lifetime_hours.unwrap().mean().unwrap();
        assert!(a < b, "lab vapps die faster than dev/test");
        assert!(enterprise().workload.lifetime_hours.is_none());
    }

    #[test]
    fn cloud_a_is_burstier_than_cloud_b() {
        match (cloud_a().workload.arrivals, cloud_b().workload.arrivals) {
            (
                ArrivalProcess::Mmpp {
                    burst_per_hour,
                    calm_per_hour,
                    ..
                },
                ArrivalProcess::Diurnal { .. },
            ) => {
                assert!(burst_per_hour / calm_per_hour >= 10.0);
            }
            _ => panic!("profile arrival shapes changed"),
        }
    }

    #[test]
    fn enterprise_uses_full_clones() {
        assert_eq!(enterprise().workload.clone_mode, CloneMode::Full);
        assert_eq!(cloud_a().workload.clone_mode, CloneMode::Linked);
    }

    #[test]
    fn serde_round_trip() {
        let p = cloud_a();
        let json = serde_json::to_string(&p).unwrap();
        let back: Profile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
