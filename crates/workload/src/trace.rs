//! Per-operation trace records: the simulator's equivalent of the
//! management-server logs the paper's characterization was built from.

use std::borrow::Cow;
use std::io::{BufRead, Write};

use cpsim_des::SimTime;
use cpsim_inventory::VmId;
use cpsim_mgmt::TaskReport;
use serde::{Deserialize, Serialize};

/// How an operation ended.
///
/// Old traces predate this field; `#[serde(default)]` makes them replay
/// as [`Outcome::Success`], matching what they could record at the time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Completed cleanly.
    #[default]
    Success,
    /// Ended with an error.
    Failed {
        /// The terminal error message.
        reason: String,
    },
    /// Exhausted its retry budget and was abandoned by the plane.
    Aborted,
}

impl Outcome {
    /// Builds the outcome a task report describes.
    pub fn from_task(report: &TaskReport) -> Self {
        if report.aborted {
            Outcome::Aborted
        } else if let Some(reason) = &report.error {
            Outcome::Failed {
                reason: reason.clone(),
            }
        } else {
            Outcome::Success
        }
    }

    /// Whether this is [`Outcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success)
    }
}

/// One completed management operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Submission time, microseconds of simulated time.
    pub submitted_us: u64,
    /// Completion time, microseconds of simulated time.
    pub completed_us: u64,
    /// Operation kind name. Borrowed from the plane's static kind table
    /// when built from a task report (no per-record allocation); owned
    /// when deserialized from disk. Serializes as a plain string either
    /// way.
    pub kind: Cow<'static, str>,
    /// End-to-end latency, seconds.
    pub latency_s: f64,
    /// Management CPU seconds.
    pub cpu_s: f64,
    /// Database seconds.
    pub db_s: f64,
    /// Host-agent seconds.
    pub agent_s: f64,
    /// Data-transfer wall seconds.
    pub data_s: f64,
    /// Resource-queue wait seconds.
    pub queue_s: f64,
    /// Admission wait seconds.
    pub admission_s: f64,
    /// Whether the operation succeeded.
    pub success: bool,
    /// How the operation ended (absent in old traces ⇒ `Success`).
    #[serde(default)]
    pub outcome: Outcome,
    /// VM produced (provisioning).
    pub produced_vm: Option<VmId>,
    /// VM targeted.
    pub target_vm: Option<VmId>,
}

impl TraceRecord {
    /// Builds a record from a task report.
    pub fn from_task(report: &TaskReport) -> Self {
        TraceRecord {
            submitted_us: report.submitted_at.as_micros(),
            completed_us: report.completed_at.as_micros(),
            kind: Cow::Borrowed(report.kind),
            latency_s: report.latency.as_secs_f64(),
            cpu_s: report.cpu_secs,
            db_s: report.db_secs,
            agent_s: report.agent_secs,
            data_s: report.data_secs,
            queue_s: report.queue_secs,
            admission_s: report.admission_secs,
            success: report.is_success(),
            outcome: Outcome::from_task(report),
            produced_vm: report.produced_vm,
            target_vm: report.target_vm,
        }
    }

    /// Submission instant as [`SimTime`].
    pub fn submitted_at(&self) -> SimTime {
        SimTime::from_micros(self.submitted_us)
    }

    /// Control-plane seconds (CPU + DB + agent).
    pub fn control_s(&self) -> f64 {
        self.cpu_s + self.db_s + self.agent_s
    }
}

/// An in-memory operation trace with JSONL persistence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Appends a record built from a task report.
    pub fn push_task(&mut self, report: &TaskReport) {
        self.push(TraceRecord::from_task(report));
    }

    /// The records, in insertion (completion) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Writes the log as JSON Lines.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for r in &self.records {
            serde_json::to_writer(&mut w, r)?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a log from JSON Lines (blank lines ignored).
    ///
    /// # Errors
    ///
    /// Propagates parse and I/O errors.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Self> {
        let mut log = TraceLog::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let record: TraceRecord = serde_json::from_str(&line)?;
            log.push(record);
        }
        Ok(log)
    }
}

impl Extend<TraceRecord> for TraceLog {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

impl FromIterator<TraceRecord> for TraceLog {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        TraceLog {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &str, submitted_s: u64) -> TraceRecord {
        TraceRecord {
            submitted_us: submitted_s * 1_000_000,
            completed_us: submitted_s * 1_000_000 + 5_000_000,
            kind: kind.to_string().into(),
            latency_s: 5.0,
            cpu_s: 0.1,
            db_s: 0.2,
            agent_s: 2.0,
            data_s: 0.0,
            queue_s: 0.0,
            admission_s: 0.0,
            success: true,
            outcome: Outcome::Success,
            produced_vm: None,
            target_vm: None,
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let mut log = TraceLog::new();
        log.push(record("clone-linked", 0));
        log.push(record("power-on", 10));
        let mut failed = record("clone-full", 20);
        failed.success = false;
        failed.outcome = Outcome::Failed {
            reason: "datastore 3 unavailable".into(),
        };
        log.push(failed);
        let mut aborted = record("relocate-vm", 30);
        aborted.success = false;
        aborted.outcome = Outcome::Aborted;
        log.push(aborted);
        let mut buf = Vec::new();
        log.write_jsonl(&mut buf).unwrap();
        assert_eq!(buf.iter().filter(|b| **b == b'\n').count(), 4);
        let back = TraceLog::read_jsonl(&buf[..]).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn old_jsonl_without_outcome_still_replays() {
        // A line as written before the outcome field existed.
        let line = serde_json::to_string(&record("clone-linked", 0))
            .unwrap()
            .replace("\"outcome\":\"Success\",", "");
        assert!(!line.contains("outcome"));
        let log = TraceLog::read_jsonl(line.as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].outcome, Outcome::Success);
    }

    #[test]
    fn read_skips_blank_lines() {
        let text = format!(
            "{}\n\n{}\n",
            serde_json::to_string(&record("a", 0)).unwrap(),
            serde_json::to_string(&record("b", 1)).unwrap()
        );
        let log = TraceLog::read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn control_split_helper() {
        let r = record("x", 0);
        assert!((r.control_s() - 2.3).abs() < 1e-12);
        assert_eq!(r.submitted_at(), SimTime::ZERO);
    }

    #[test]
    fn collect_and_extend() {
        let log: TraceLog = (0..3).map(|i| record("k", i)).collect();
        assert_eq!(log.len(), 3);
        let mut log2 = TraceLog::new();
        log2.extend(log.records().to_vec());
        assert_eq!(log2.len(), 3);
    }
}
