//! Request arrival processes.

use cpsim_des::{Dist, SimDuration, SimRng, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seconds per hour.
const HOUR: f64 = 3_600.0;

/// A stochastic arrival process over simulated time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `per_hour`.
    Poisson {
        /// Mean arrivals per hour.
        per_hour: f64,
    },
    /// Non-homogeneous Poisson with a sinusoidal day-shape:
    /// `rate(t) = per_hour * (1 + amplitude * sin(2π (t - phase)/24h))`,
    /// sampled by thinning. `amplitude` in `[0, 1)`.
    Diurnal {
        /// Mean arrivals per hour over a day.
        per_hour: f64,
        /// Relative swing of the day-shape (0 = flat, 0.9 = strong peak).
        amplitude: f64,
        /// Hour of day at which the rate peaks.
        peak_hour: f64,
    },
    /// Two-state Markov-modulated Poisson process: dwell in each state for
    /// an exponential time, emitting at that state's rate — produces the
    /// bursty, batch-like arrivals self-service clouds see.
    Mmpp {
        /// Arrival rate in the calm state, per hour.
        calm_per_hour: f64,
        /// Arrival rate in the burst state, per hour.
        burst_per_hour: f64,
        /// Mean dwell time in the calm state, hours.
        calm_dwell_hours: f64,
        /// Mean dwell time in the burst state, hours.
        burst_dwell_hours: f64,
    },
    /// Deterministic arrivals every `every` (useful in tests).
    Periodic {
        /// Fixed interarrival gap.
        every: SimDuration,
    },
}

impl ArrivalProcess {
    /// Long-run mean arrivals per hour.
    pub fn mean_per_hour(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { per_hour } => *per_hour,
            ArrivalProcess::Diurnal { per_hour, .. } => *per_hour,
            ArrivalProcess::Mmpp {
                calm_per_hour,
                burst_per_hour,
                calm_dwell_hours,
                burst_dwell_hours,
            } => {
                let total = calm_dwell_hours + burst_dwell_hours;
                (calm_per_hour * calm_dwell_hours + burst_per_hour * burst_dwell_hours) / total
            }
            ArrivalProcess::Periodic { every } => HOUR / every.as_secs_f64(),
        }
    }

    /// Samples the next arrival strictly after `now`.
    ///
    /// Returns [`SimTime::MAX`] if the process can never fire (zero rate).
    pub fn next_after(&self, now: SimTime, state: &mut ArrivalState, rng: &mut SimRng) -> SimTime {
        match self {
            ArrivalProcess::Poisson { per_hour } => {
                if *per_hour <= 0.0 {
                    return SimTime::MAX;
                }
                let gap = Dist::exponential(HOUR / per_hour)
                    .expect("positive mean")
                    .sample(rng);
                now + SimDuration::from_secs_f64(gap.max(1e-6))
            }
            ArrivalProcess::Diurnal {
                per_hour,
                amplitude,
                peak_hour,
            } => {
                if *per_hour <= 0.0 {
                    return SimTime::MAX;
                }
                // Thinning against the envelope rate.
                let max_rate = per_hour * (1.0 + amplitude);
                let mut t = now;
                for _ in 0..100_000 {
                    let gap = Dist::exponential(HOUR / max_rate)
                        .expect("positive mean")
                        .sample(rng);
                    t += SimDuration::from_secs_f64(gap.max(1e-6));
                    let hour_of_day = (t.as_secs_f64() / HOUR) % 24.0;
                    let shape = 1.0
                        + amplitude
                            * (std::f64::consts::TAU * (hour_of_day - peak_hour + 6.0) / 24.0)
                                .sin();
                    let rate = per_hour * shape;
                    if rng.gen::<f64>() < rate / max_rate {
                        return t;
                    }
                }
                t
            }
            ArrivalProcess::Mmpp {
                calm_per_hour,
                burst_per_hour,
                calm_dwell_hours,
                burst_dwell_hours,
            } => {
                // Walk dwell periods until an arrival lands inside one.
                let mut t = now;
                for _ in 0..100_000 {
                    if state.mmpp_until <= t {
                        // (Re)enter a state starting at t.
                        state.mmpp_bursting = !state.mmpp_bursting;
                        let dwell = if state.mmpp_bursting {
                            burst_dwell_hours
                        } else {
                            calm_dwell_hours
                        };
                        let d = Dist::exponential(dwell * HOUR)
                            .expect("positive mean")
                            .sample(rng);
                        state.mmpp_until = t + SimDuration::from_secs_f64(d.max(1.0));
                    }
                    let rate = if state.mmpp_bursting {
                        *burst_per_hour
                    } else {
                        *calm_per_hour
                    };
                    if rate <= 0.0 {
                        t = state.mmpp_until;
                        continue;
                    }
                    let gap = Dist::exponential(HOUR / rate)
                        .expect("positive mean")
                        .sample(rng);
                    let candidate = t + SimDuration::from_secs_f64(gap.max(1e-6));
                    if candidate <= state.mmpp_until {
                        return candidate;
                    }
                    t = state.mmpp_until;
                }
                t
            }
            ArrivalProcess::Periodic { every } => now + *every,
        }
    }
}

/// Mutable state carried between arrival samples (MMPP phase tracking).
#[derive(Clone, Copy, Debug, Default)]
pub struct ArrivalState {
    mmpp_bursting: bool,
    mmpp_until: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_des::Streams;

    fn count_in(
        p: &ArrivalProcess,
        hours: u64,
        rng: &mut SimRng,
    ) -> (u64, Vec<u64 /* per-hour bins */>) {
        let mut state = ArrivalState::default();
        let mut t = SimTime::ZERO;
        let horizon = SimTime::from_hours(hours);
        let mut n = 0;
        let mut bins = vec![0u64; hours as usize];
        loop {
            t = p.next_after(t, &mut state, rng);
            if t >= horizon {
                break;
            }
            n += 1;
            bins[(t.as_secs_f64() / 3_600.0) as usize] += 1;
        }
        (n, bins)
    }

    #[test]
    fn poisson_rate_matches() {
        let p = ArrivalProcess::Poisson { per_hour: 30.0 };
        let mut rng = Streams::new(1).rng(0);
        let (n, _) = count_in(&p, 200, &mut rng);
        let rate = n as f64 / 200.0;
        assert!((rate - 30.0).abs() < 2.0, "got {rate}");
        assert_eq!(p.mean_per_hour(), 30.0);
    }

    #[test]
    fn zero_rate_never_fires() {
        let p = ArrivalProcess::Poisson { per_hour: 0.0 };
        let mut rng = Streams::new(1).rng(0);
        let mut state = ArrivalState::default();
        assert_eq!(
            p.next_after(SimTime::ZERO, &mut state, &mut rng),
            SimTime::MAX
        );
    }

    #[test]
    fn diurnal_peaks_at_peak_hour() {
        let p = ArrivalProcess::Diurnal {
            per_hour: 60.0,
            amplitude: 0.9,
            peak_hour: 14.0,
        };
        let mut rng = Streams::new(2).rng(0);
        let (_, bins) = count_in(&p, 24 * 30, &mut rng);
        // Fold into hour-of-day.
        let mut by_hour = [0u64; 24];
        for (i, b) in bins.iter().enumerate() {
            by_hour[i % 24] += b;
        }
        let peak_zone: u64 = (12..=16).map(|h| by_hour[h]).sum();
        let trough_zone: u64 = (0..=4).map(|h| by_hour[h]).sum();
        assert!(
            peak_zone > 3 * trough_zone,
            "peak {peak_zone} vs trough {trough_zone}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let rate = 30.0;
        let mmpp = ArrivalProcess::Mmpp {
            calm_per_hour: 6.0,
            burst_per_hour: 246.0,
            calm_dwell_hours: 0.9,
            burst_dwell_hours: 0.1,
        };
        assert!((mmpp.mean_per_hour() - rate).abs() < 1.0);
        let poisson = ArrivalProcess::Poisson { per_hour: rate };
        let mut rng = Streams::new(3).rng(0);
        let (_, mb) = count_in(&mmpp, 500, &mut rng);
        let (_, pb) = count_in(&poisson, 500, &mut rng);
        let cv = |bins: &[u64]| {
            let n = bins.len() as f64;
            let mean = bins.iter().sum::<u64>() as f64 / n;
            let var = bins
                .iter()
                .map(|&b| (b as f64 - mean) * (b as f64 - mean))
                .sum::<f64>()
                / n;
            var.sqrt() / mean
        };
        assert!(
            cv(&mb) > 2.0 * cv(&pb),
            "mmpp cv {} vs poisson cv {}",
            cv(&mb),
            cv(&pb)
        );
    }

    #[test]
    fn periodic_is_exact() {
        let p = ArrivalProcess::Periodic {
            every: SimDuration::from_secs(90),
        };
        let mut rng = Streams::new(4).rng(0);
        let mut state = ArrivalState::default();
        let t1 = p.next_after(SimTime::ZERO, &mut state, &mut rng);
        let t2 = p.next_after(t1, &mut state, &mut rng);
        assert_eq!(t1, SimTime::from_secs(90));
        assert_eq!(t2, SimTime::from_secs(180));
        assert_eq!(p.mean_per_hour(), 40.0);
    }

    #[test]
    fn serde_round_trip() {
        let p = ArrivalProcess::Diurnal {
            per_hour: 10.0,
            amplitude: 0.5,
            peak_hour: 15.0,
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: ArrivalProcess = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
