//! Workload generation and characterization for the cpsim experiments.
//!
//! The reproduced paper profiled two real-world self-service clouds; those
//! traces are proprietary, so this crate supplies the substitution
//! documented in `DESIGN.md`: **calibrated synthetic profiles** plus the
//! characterization pipeline that the paper ran over its logs.
//!
//! - [`ArrivalProcess`]: Poisson, diurnally-modulated, and bursty (MMPP)
//!   request arrivals;
//! - [`WorkloadSpec`] / [`RequestTemplate`]: how arrivals materialize into
//!   cloud requests (instantiate / start / stop / recompose / ...) against
//!   the live cloud state;
//! - [`profiles`]: `cloud_a` (training-lab cloud: heavy bursts, short
//!   lifetimes), `cloud_b` (dev/test cloud: steadier churn, longer
//!   lifetimes), and `enterprise` (classic datacenter baseline dominated
//!   by power/migration operations on a static VM population);
//! - [`TraceRecord`] / [`TraceLog`]: JSONL-serializable per-operation
//!   records emitted by the simulator;
//! - [`TraceAnalysis`]: the characterization pass — operation mix, hourly
//!   arrival series, burstiness, latency splits, VM lifetimes.

pub mod analyze;
pub mod arrival;
pub mod generate;
pub mod profiles;
pub mod replay;
pub mod spec;
pub mod trace;

pub use analyze::TraceAnalysis;
pub use arrival::ArrivalProcess;
pub use generate::{GeneratedRequest, RequestGenerator};
pub use profiles::{cloud_a, cloud_b, enterprise, Profile, Topology};
pub use replay::{ReplayEvent, ReplayPlan};
pub use spec::{RequestTemplate, WorkloadSpec};
pub use trace::{Outcome, TraceLog, TraceRecord};
