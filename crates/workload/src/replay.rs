//! Trace replay: re-drive a fresh simulation with the request schedule
//! recorded in an operation trace.
//!
//! Entity ids in a trace belong to the run that produced it, so a replay
//! cannot re-issue recorded operations verbatim. What *is* portable — and
//! what capacity planning needs — is the **provisioning schedule**: when
//! clones were requested and in which mode, and when each produced VM was
//! destroyed (its lifetime). [`ReplayPlan`] extracts exactly that, ready
//! to feed back as instantiate-with-lease requests.

use cpsim_des::{SimDuration, SimTime};
use cpsim_mgmt::CloneMode;

use crate::trace::TraceLog;

/// One provisioning event recovered from a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayEvent {
    /// When the clone was submitted in the original run.
    pub at: SimTime,
    /// Clone mode used.
    pub mode: CloneMode,
    /// Observed lifetime of the produced VM, if it was destroyed within
    /// the trace (replayers turn this into a lease).
    pub lifetime: Option<SimDuration>,
}

/// A replayable provisioning schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayPlan {
    events: Vec<ReplayEvent>,
}

impl ReplayPlan {
    /// Extracts the provisioning schedule from `trace`.
    ///
    /// Only successful clones are replayed; clones whose VM never died in
    /// the trace get `lifetime: None`.
    pub fn from_trace(trace: &TraceLog) -> Self {
        // Completion time of destroy per target VM.
        let mut death: std::collections::BTreeMap<_, u64> = std::collections::BTreeMap::new();
        for r in trace.records() {
            if r.kind == "destroy-vm" && r.success {
                if let Some(vm) = r.target_vm {
                    death.insert(vm, r.completed_us);
                }
            }
        }
        let mut events = Vec::new();
        for r in trace.records() {
            if !r.success {
                continue;
            }
            let mode = match r.kind.as_ref() {
                "clone-full" => CloneMode::Full,
                "clone-linked" => CloneMode::Linked,
                "clone-instant" => CloneMode::Instant,
                _ => continue,
            };
            let lifetime = r.produced_vm.and_then(|vm| {
                death.get(&vm).map(|&died_us| {
                    SimDuration::from_micros(died_us.saturating_sub(r.completed_us))
                })
            });
            events.push(ReplayEvent {
                at: SimTime::from_micros(r.submitted_us),
                mode,
                lifetime,
            });
        }
        events.sort_by_key(|e| e.at);
        ReplayPlan { events }
    }

    /// The events in submission order.
    pub fn events(&self) -> &[ReplayEvent] {
        &self.events
    }

    /// Number of provisioning events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Rescales the schedule in time: 2.0 doubles the provisioning rate
    /// (halves the gaps), the knob for "what if demand doubles?" studies.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and positive.
    pub fn accelerated(&self, factor: f64) -> ReplayPlan {
        assert!(
            factor.is_finite() && factor > 0.0,
            "acceleration factor must be finite and positive"
        );
        ReplayPlan {
            events: self
                .events
                .iter()
                .map(|e| ReplayEvent {
                    at: SimTime::from_micros((e.at.as_micros() as f64 / factor) as u64),
                    mode: e.mode,
                    lifetime: e.lifetime,
                })
                .collect(),
        }
    }

    /// Mean provisioning rate per hour over the span of the plan.
    pub fn rate_per_hour(&self) -> f64 {
        match (self.events.first(), self.events.last()) {
            (Some(first), Some(last)) if last.at > first.at => {
                let span_h = last.at.since(first.at).as_secs_f64() / 3_600.0;
                self.events.len() as f64 / span_h
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;
    use cpsim_inventory::{EntityId, VmId};

    fn clone_record(kind: &str, submitted_s: u64, vm_idx: u32, ok: bool) -> TraceRecord {
        TraceRecord {
            submitted_us: submitted_s * 1_000_000,
            completed_us: submitted_s * 1_000_000 + 8_000_000,
            kind: kind.to_string().into(),
            latency_s: 8.0,
            cpu_s: 0.1,
            db_s: 0.1,
            agent_s: 3.0,
            data_s: 0.0,
            queue_s: 0.0,
            admission_s: 0.0,
            success: ok,
            outcome: if ok {
                crate::trace::Outcome::Success
            } else {
                crate::trace::Outcome::Failed {
                    reason: "injected".into(),
                }
            },
            produced_vm: Some(VmId::from_parts(vm_idx, 1)),
            target_vm: None,
        }
    }

    fn destroy_record(submitted_s: u64, vm_idx: u32) -> TraceRecord {
        let mut r = clone_record("destroy-vm", submitted_s, 0, true);
        r.produced_vm = None;
        r.target_vm = Some(VmId::from_parts(vm_idx, 1));
        r.completed_us = submitted_s * 1_000_000;
        r
    }

    #[test]
    fn extracts_clones_with_lifetimes() {
        let log: TraceLog = vec![
            clone_record("clone-linked", 10, 1, true),
            clone_record("clone-full", 20, 2, true),
            clone_record("power-on", 25, 3, true), // not provisioning
            clone_record("clone-linked", 30, 4, false), // failed
            destroy_record(3_618, 1),              // vm 1 dies ~1h later
        ]
        .into_iter()
        .collect();
        let plan = ReplayPlan::from_trace(&log);
        assert_eq!(plan.len(), 2);
        let e0 = plan.events()[0];
        assert_eq!(e0.at, SimTime::from_secs(10));
        assert_eq!(e0.mode, CloneMode::Linked);
        let lt = e0.lifetime.unwrap();
        assert!((lt.as_secs_f64() - 3_600.0).abs() < 1.0, "{lt:?}");
        // The full clone's VM never died: open-ended.
        assert_eq!(plan.events()[1].lifetime, None);
    }

    #[test]
    fn acceleration_compresses_the_schedule() {
        let log: TraceLog = vec![
            clone_record("clone-linked", 100, 1, true),
            clone_record("clone-linked", 300, 2, true),
        ]
        .into_iter()
        .collect();
        let plan = ReplayPlan::from_trace(&log);
        let fast = plan.accelerated(2.0);
        assert_eq!(fast.events()[0].at, SimTime::from_secs(50));
        assert_eq!(fast.events()[1].at, SimTime::from_secs(150));
        assert!((fast.rate_per_hour() - 2.0 * plan.rate_per_hour()).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_empty_plan() {
        let plan = ReplayPlan::from_trace(&TraceLog::new());
        assert!(plan.is_empty());
        assert_eq!(plan.rate_per_hour(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_acceleration_rejected() {
        ReplayPlan::default().accelerated(0.0);
    }
}
