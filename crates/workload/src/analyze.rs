//! The characterization pass: turns an operation trace into the kinds of
//! summaries the paper reports (operation mix, arrival burstiness,
//! latency splits, VM lifetimes).

use std::collections::BTreeMap;

use cpsim_des::SimDuration;
use cpsim_inventory::VmId;
use cpsim_metrics::{Summary, TimeSeries};

use crate::trace::TraceLog;

/// Characterization results over one trace.
#[derive(Clone, Debug)]
pub struct TraceAnalysis {
    /// Total operations in the trace.
    pub total_ops: usize,
    /// Operations per kind.
    pub op_mix: BTreeMap<String, u64>,
    /// Submissions per simulated hour.
    pub hourly: TimeSeries,
    /// Peak-to-mean ratio of hourly submissions (burstiness).
    pub peak_to_mean: f64,
    /// Coefficient of variation of interarrival gaps (1 ≈ Poisson,
    /// larger = burstier).
    pub interarrival_cv: f64,
    /// End-to-end latency per kind, seconds.
    pub latency_by_kind: BTreeMap<String, Summary>,
    /// `(control_seconds, data_seconds)` totals per kind.
    pub split_by_kind: BTreeMap<String, (f64, f64)>,
    /// VM lifetimes in hours (provision completion → destroy completion).
    pub lifetimes_hours: Summary,
    /// Failed operations per kind.
    pub failures: BTreeMap<String, u64>,
}

impl TraceAnalysis {
    /// Analyzes `log`.
    pub fn from_log(log: &TraceLog) -> Self {
        let mut op_mix: BTreeMap<String, u64> = BTreeMap::new();
        let mut failures: BTreeMap<String, u64> = BTreeMap::new();
        let mut latency_by_kind: BTreeMap<String, Summary> = BTreeMap::new();
        let mut split_by_kind: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        let mut hourly = TimeSeries::new(SimDuration::from_hours(1));
        let mut submit_times: Vec<u64> = Vec::with_capacity(log.len());
        let mut born: BTreeMap<VmId, u64> = BTreeMap::new();
        let mut lifetimes = Summary::new();

        // Keyed maps allocate once per distinct kind, not per record: the
        // kind set is a dozen static names but the log can hold millions
        // of records.
        fn slot<'m, V: Default>(map: &'m mut BTreeMap<String, V>, key: &str) -> &'m mut V {
            if !map.contains_key(key) {
                map.insert(key.to_string(), V::default());
            }
            map.get_mut(key).expect("just inserted")
        }

        for r in log.records() {
            *slot(&mut op_mix, &r.kind) += 1;
            if !r.success {
                *slot(&mut failures, &r.kind) += 1;
            }
            slot(&mut latency_by_kind, &r.kind).record(r.latency_s);
            let split = slot(&mut split_by_kind, &r.kind);
            split.0 += r.control_s();
            split.1 += r.data_s;
            hourly.mark(r.submitted_at());
            submit_times.push(r.submitted_us);

            if r.success {
                if let Some(vm) = r.produced_vm {
                    born.insert(vm, r.completed_us);
                }
                if r.kind == "destroy-vm" {
                    if let Some(vm) = r.target_vm {
                        if let Some(b) = born.remove(&vm) {
                            let hours = (r.completed_us.saturating_sub(b)) as f64 / 3_600e6;
                            lifetimes.record(hours);
                        }
                    }
                }
            }
        }

        submit_times.sort_unstable();
        let interarrival_cv = {
            let gaps: Summary = submit_times
                .windows(2)
                .map(|w| (w[1] - w[0]) as f64 / 1e6)
                .collect();
            gaps.cv()
        };
        let bins = hourly.len();
        TraceAnalysis {
            total_ops: log.len(),
            peak_to_mean: hourly.peak_to_mean(bins),
            interarrival_cv,
            op_mix,
            hourly,
            latency_by_kind,
            split_by_kind,
            lifetimes_hours: lifetimes,
            failures,
        }
    }

    /// Fraction of operations of `kind` (0 if absent).
    pub fn mix_fraction(&self, kind: &str) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        *self.op_mix.get(kind).unwrap_or(&0) as f64 / self.total_ops as f64
    }

    /// Fraction of operations that are provisioning (clones/creates).
    pub fn provisioning_fraction(&self) -> f64 {
        self.mix_fraction("clone-linked")
            + self.mix_fraction("clone-full")
            + self.mix_fraction("create-vm")
    }

    /// Mean operations per simulated day.
    pub fn ops_per_day(&self) -> f64 {
        let hours = self.hourly.len().max(1) as f64;
        self.total_ops as f64 / hours * 24.0
    }

    /// Total failed operations.
    pub fn total_failures(&self) -> u64 {
        self.failures.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;
    use cpsim_inventory::EntityId;

    fn record(kind: &str, submitted_s: u64, vm: Option<(u32, bool)>) -> TraceRecord {
        // vm: (index, is_produced)
        let id = vm.map(|(i, _)| VmId::from_parts(i, 1));
        let produced = vm.and_then(|(_, p)| if p { id } else { None });
        let target = vm.and_then(|(_, p)| if p { None } else { id });
        TraceRecord {
            submitted_us: submitted_s * 1_000_000,
            completed_us: submitted_s * 1_000_000 + 1_000_000,
            kind: kind.to_string().into(),
            latency_s: 1.0,
            cpu_s: 0.1,
            db_s: 0.1,
            agent_s: 0.5,
            data_s: if kind == "clone-full" { 100.0 } else { 0.0 },
            queue_s: 0.0,
            admission_s: 0.0,
            success: true,
            outcome: crate::trace::Outcome::Success,
            produced_vm: produced,
            target_vm: target,
        }
    }

    #[test]
    fn mix_and_fractions() {
        let log: TraceLog = vec![
            record("clone-linked", 0, Some((1, true))),
            record("clone-linked", 10, Some((2, true))),
            record("power-on", 20, None),
            record("clone-full", 30, Some((3, true))),
        ]
        .into_iter()
        .collect();
        let a = TraceAnalysis::from_log(&log);
        assert_eq!(a.total_ops, 4);
        assert_eq!(a.op_mix["clone-linked"], 2);
        assert!((a.mix_fraction("power-on") - 0.25).abs() < 1e-12);
        assert!((a.provisioning_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(a.total_failures(), 0);
    }

    #[test]
    fn lifetimes_pair_provision_and_destroy() {
        let mut destroy = record("destroy-vm", 7_200, Some((1, false)));
        destroy.completed_us = 7_200 * 1_000_000;
        let log: TraceLog = vec![
            record("clone-linked", 0, Some((1, true))), // completes at t=1s
            destroy,                                    // completes at t=2h
        ]
        .into_iter()
        .collect();
        let a = TraceAnalysis::from_log(&log);
        assert_eq!(a.lifetimes_hours.count(), 1);
        let lt = a.lifetimes_hours.values()[0];
        assert!((lt - 2.0).abs() < 0.01, "lifetime {lt}h");
    }

    #[test]
    fn destroy_without_birth_is_ignored() {
        let log: TraceLog = vec![record("destroy-vm", 0, Some((9, false)))]
            .into_iter()
            .collect();
        let a = TraceAnalysis::from_log(&log);
        assert_eq!(a.lifetimes_hours.count(), 0);
    }

    #[test]
    fn burstiness_metrics() {
        // 30 ops in hour 0, 1 op in each of hours 1..=9.
        let mut records = Vec::new();
        for i in 0..30 {
            records.push(record("power-on", i * 60, None));
        }
        for h in 1..10 {
            records.push(record("power-on", h * 3_600, None));
        }
        let log: TraceLog = records.into_iter().collect();
        let a = TraceAnalysis::from_log(&log);
        assert!(a.peak_to_mean > 4.0, "peak/mean {}", a.peak_to_mean);
        assert!(a.interarrival_cv > 1.0);
        assert!(a.ops_per_day() > 0.0);
    }

    #[test]
    fn control_data_split() {
        let log: TraceLog = vec![record("clone-full", 0, Some((1, true)))]
            .into_iter()
            .collect();
        let a = TraceAnalysis::from_log(&log);
        let (control, data) = a.split_by_kind["clone-full"];
        assert!((control - 0.7).abs() < 1e-12);
        assert_eq!(data, 100.0);
    }

    #[test]
    fn empty_log_analyzes_cleanly() {
        let a = TraceAnalysis::from_log(&TraceLog::new());
        assert_eq!(a.total_ops, 0);
        assert_eq!(a.mix_fraction("anything"), 0.0);
        assert_eq!(a.interarrival_cv, 0.0);
    }
}
