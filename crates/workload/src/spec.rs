//! Workload specifications: what arrives and what each arrival does.

use cpsim_des::Dist;
use cpsim_mgmt::CloneMode;
use serde::{Deserialize, Serialize};

use crate::arrival::ArrivalProcess;

/// What one arriving request does. Templates referring to "random" targets
/// are materialized by the generator against the live cloud state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestTemplate {
    /// Deploy a new vApp (size and lease drawn from the spec's dists).
    Instantiate,
    /// Power on a random fully-stopped vApp.
    StartVapp,
    /// Power off a random running vApp.
    StopVapp,
    /// Delete a random deployed vApp (beyond lease-driven deletes).
    DeleteVapp,
    /// Add VMs to a random deployed vApp.
    Recompose,
    /// Snapshot a random VM.
    SnapshotVm,
    /// Reconfigure a random VM.
    ReconfigureVm,
    /// Live-migrate a random powered-on VM.
    MigrateVm,
    /// Power-cycle a random VM (off if on, on if off).
    PowerToggleVm,
}

impl RequestTemplate {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            RequestTemplate::Instantiate => "instantiate",
            RequestTemplate::StartVapp => "start-vapp",
            RequestTemplate::StopVapp => "stop-vapp",
            RequestTemplate::DeleteVapp => "delete-vapp",
            RequestTemplate::Recompose => "recompose",
            RequestTemplate::SnapshotVm => "snapshot-vm",
            RequestTemplate::ReconfigureVm => "reconfigure-vm",
            RequestTemplate::MigrateVm => "migrate-vm",
            RequestTemplate::PowerToggleVm => "power-toggle-vm",
        }
    }
}

/// A complete workload description: arrivals plus the request mix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Profile name (for reports).
    pub name: String,
    /// Request arrival process.
    pub arrivals: ArrivalProcess,
    /// Weighted request mix; weights need not sum to 1.
    pub mix: Vec<(f64, RequestTemplate)>,
    /// VMs per instantiated vApp.
    pub vapp_size: Dist,
    /// vApp lifetime in hours (becomes the lease; `None` = no leases and
    /// vApps persist until deleted by the mix).
    pub lifetime_hours: Option<Dist>,
    /// Clone mode for provisioning.
    pub clone_mode: CloneMode,
    /// VMs added per recompose.
    pub recompose_add: Dist,
}

impl WorkloadSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.mix.is_empty() {
            return Err("mix must not be empty".into());
        }
        if self.mix.iter().any(|(w, _)| !w.is_finite() || *w < 0.0) {
            return Err("mix weights must be finite and >= 0".into());
        }
        if self.mix.iter().map(|(w, _)| w).sum::<f64>() <= 0.0 {
            return Err("mix weights must sum to a positive value".into());
        }
        Ok(())
    }

    /// The fraction of arrivals matching `template`.
    pub fn fraction_of(&self, template: RequestTemplate) -> f64 {
        let total: f64 = self.mix.iter().map(|(w, _)| w).sum();
        self.mix
            .iter()
            .filter(|(_, t)| *t == template)
            .map(|(w, _)| w)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "t".into(),
            arrivals: ArrivalProcess::Poisson { per_hour: 10.0 },
            mix: vec![
                (3.0, RequestTemplate::Instantiate),
                (1.0, RequestTemplate::StartVapp),
            ],
            vapp_size: Dist::constant(4.0).unwrap(),
            lifetime_hours: Some(Dist::constant(8.0).unwrap()),
            clone_mode: CloneMode::Linked,
            recompose_add: Dist::constant(2.0).unwrap(),
        }
    }

    #[test]
    fn validate_accepts_good_spec() {
        spec().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_mixes() {
        let mut s = spec();
        s.mix.clear();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.mix = vec![(0.0, RequestTemplate::Instantiate)];
        assert!(s.validate().is_err());
        let mut s = spec();
        s.mix = vec![(-1.0, RequestTemplate::Instantiate)];
        assert!(s.validate().is_err());
    }

    #[test]
    fn fractions() {
        let s = spec();
        assert!((s.fraction_of(RequestTemplate::Instantiate) - 0.75).abs() < 1e-12);
        assert!((s.fraction_of(RequestTemplate::MigrateVm) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn template_names_unique() {
        let all = [
            RequestTemplate::Instantiate,
            RequestTemplate::StartVapp,
            RequestTemplate::StopVapp,
            RequestTemplate::DeleteVapp,
            RequestTemplate::Recompose,
            RequestTemplate::SnapshotVm,
            RequestTemplate::ReconfigureVm,
            RequestTemplate::MigrateVm,
            RequestTemplate::PowerToggleVm,
        ];
        let mut names: Vec<_> = all.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn serde_round_trip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
