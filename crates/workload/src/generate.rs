//! The [`RequestGenerator`]: samples arrivals and materializes request
//! templates against the live cloud state.

use cpsim_cloud::{CloudDirector, CloudRequest, VappState};
use cpsim_des::{SimDuration, SimRng, SimTime, Streams};
use cpsim_inventory::{OrgId, PowerState, VmId};
use cpsim_mgmt::{ControlPlane, OpKind};
use rand::Rng;

use crate::arrival::ArrivalState;
use crate::spec::{RequestTemplate, WorkloadSpec};

/// What an arrival materialized into.
#[derive(Clone, Debug, PartialEq)]
pub enum GeneratedRequest {
    /// A cloud-level request for the director.
    Cloud(CloudRequest),
    /// A direct management operation (enterprise-style administration).
    Op(OpKind),
}

/// Samples the workload over time.
#[derive(Debug)]
pub struct RequestGenerator {
    spec: WorkloadSpec,
    arrival_state: ArrivalState,
    rng_arrival: SimRng,
    rng_choice: SimRng,
    org: OrgId,
    templates: Vec<VmId>,
    template_cursor: usize,
    generated: u64,
    skipped: u64,
}

impl RequestGenerator {
    /// Creates a generator bound to `org` and catalog `templates`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or `templates` is empty.
    pub fn new(spec: WorkloadSpec, streams: &Streams, org: OrgId, templates: Vec<VmId>) -> Self {
        spec.validate().expect("invalid WorkloadSpec");
        assert!(
            !templates.is_empty(),
            "generator needs at least one template"
        );
        RequestGenerator {
            spec,
            arrival_state: ArrivalState::default(),
            rng_arrival: streams.rng(Streams::ARRIVALS),
            rng_choice: streams.rng(Streams::WORKLOAD),
            org,
            templates,
            template_cursor: 0,
            generated: 0,
            skipped: 0,
        }
    }

    /// The workload spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Arrivals skipped because no eligible target existed.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Samples the next arrival instant strictly after `now`.
    pub fn next_arrival(&mut self, now: SimTime) -> SimTime {
        self.spec
            .arrivals
            .next_after(now, &mut self.arrival_state, &mut self.rng_arrival)
    }

    /// Materializes one arrival into a request, or `None` if the sampled
    /// template has no eligible target right now.
    pub fn generate(
        &mut self,
        _now: SimTime,
        director: &CloudDirector,
        plane: &ControlPlane,
    ) -> Option<GeneratedRequest> {
        let template = self.pick_template();
        let request = self.materialize(template, director, plane);
        match request {
            Some(_) => self.generated += 1,
            None => self.skipped += 1,
        }
        request
    }

    fn pick_template(&mut self) -> RequestTemplate {
        let total: f64 = self.spec.mix.iter().map(|(w, _)| w).sum();
        let mut x = self.rng_choice.gen::<f64>() * total;
        for (w, t) in &self.spec.mix {
            if x < *w {
                return *t;
            }
            x -= w;
        }
        self.spec.mix.last().expect("validated non-empty").1
    }

    fn materialize(
        &mut self,
        template: RequestTemplate,
        director: &CloudDirector,
        plane: &ControlPlane,
    ) -> Option<GeneratedRequest> {
        match template {
            RequestTemplate::Instantiate => {
                let count =
                    (self.spec.vapp_size.sample(&mut self.rng_choice).round() as u32).max(1);
                let lease = self.spec.lifetime_hours.as_ref().map(|d| {
                    let hours = d.sample(&mut self.rng_choice).max(0.05);
                    SimDuration::from_secs_f64(hours * 3_600.0)
                });
                let catalog_template = self.templates[self.template_cursor % self.templates.len()];
                self.template_cursor += 1;
                Some(GeneratedRequest::Cloud(CloudRequest::InstantiateVapp {
                    org: self.org,
                    template: catalog_template,
                    count,
                    mode: Some(self.spec.clone_mode),
                    lease,
                }))
            }
            RequestTemplate::StartVapp => self
                .pick_vapp(director, plane, |on, off| off > 0 && on == 0)
                .map(|vapp| GeneratedRequest::Cloud(CloudRequest::StartVapp { vapp })),
            RequestTemplate::StopVapp => self
                .pick_vapp(director, plane, |on, _| on > 0)
                .map(|vapp| GeneratedRequest::Cloud(CloudRequest::StopVapp { vapp })),
            RequestTemplate::DeleteVapp => self
                .pick_vapp(director, plane, |_, _| true)
                .map(|vapp| GeneratedRequest::Cloud(CloudRequest::DeleteVapp { vapp })),
            RequestTemplate::Recompose => {
                let add =
                    (self.spec.recompose_add.sample(&mut self.rng_choice).round() as u32).max(1);
                let catalog_template = self.templates[self.template_cursor % self.templates.len()];
                self.template_cursor += 1;
                self.pick_vapp(director, plane, |_, _| true).map(|vapp| {
                    GeneratedRequest::Cloud(CloudRequest::RecomposeVapp {
                        vapp,
                        add,
                        template: catalog_template,
                    })
                })
            }
            RequestTemplate::SnapshotVm => self
                .pick_vm(plane, |_| true)
                .map(|vm| GeneratedRequest::Op(OpKind::Snapshot { vm })),
            RequestTemplate::ReconfigureVm => self
                .pick_vm(plane, |_| true)
                .map(|vm| GeneratedRequest::Op(OpKind::Reconfigure { vm })),
            RequestTemplate::MigrateVm => self
                .pick_vm(plane, |p| p == PowerState::On)
                .map(|vm| GeneratedRequest::Op(OpKind::MigrateVm { vm })),
            RequestTemplate::PowerToggleVm => self.pick_vm(plane, |_| true).map(|vm| {
                let on = plane
                    .inventory()
                    .vm(vm)
                    .map(|v| v.power == PowerState::On)
                    .unwrap_or(false);
                GeneratedRequest::Op(if on {
                    OpKind::PowerOff { vm }
                } else {
                    OpKind::PowerOn { vm }
                })
            }),
        }
    }

    /// Picks a random deployed vApp whose (powered-on, powered-off) member
    /// counts satisfy `pred`.
    fn pick_vapp(
        &mut self,
        director: &CloudDirector,
        plane: &ControlPlane,
        pred: impl Fn(usize, usize) -> bool,
    ) -> Option<cpsim_inventory::VappId> {
        let candidates: Vec<_> = director
            .vapps()
            .filter(|(_, v)| v.state == VappState::Deployed && !v.vms.is_empty())
            .filter(|(_, v)| {
                let on = v
                    .vms
                    .iter()
                    .filter(|vm| {
                        plane
                            .inventory()
                            .vm(**vm)
                            .map(|x| x.power == PowerState::On)
                            .unwrap_or(false)
                    })
                    .count();
                pred(on, v.vms.len() - on)
            })
            .map(|(id, _)| id)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng_choice.gen_range(0..candidates.len())])
        }
    }

    /// Picks a random non-template VM whose power state satisfies `pred`.
    fn pick_vm(&mut self, plane: &ControlPlane, pred: impl Fn(PowerState) -> bool) -> Option<VmId> {
        let candidates: Vec<_> = plane
            .inventory()
            .vms()
            .filter(|(_, v)| !v.is_template && pred(v.power))
            .map(|(id, _)| id)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng_choice.gen_range(0..candidates.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_des::Dist;
    use cpsim_inventory::{DatastoreSpec, HostSpec, VmSpec};
    use cpsim_mgmt::{CloneMode, ControlPlaneConfig};

    use crate::arrival::ArrivalProcess;

    fn setup() -> (ControlPlane, CloudDirector, OrgId, VmId) {
        let mut plane = ControlPlane::new(ControlPlaneConfig::default(), Streams::new(5));
        let ds = plane.add_datastore(DatastoreSpec::new("ds", 4096.0, 100.0));
        let h = plane.add_host(HostSpec::new("h", 48_000, 262_144));
        plane.connect(h, ds).unwrap();
        let t = plane
            .install_template("tmpl", VmSpec::new(1, 1024, 10.0), h, ds)
            .unwrap();
        let mut director = CloudDirector::default();
        director.register_template(t);
        let org = director.create_org("acme");
        (plane, director, org, t)
    }

    fn spec(template: RequestTemplate) -> WorkloadSpec {
        WorkloadSpec {
            name: "test".into(),
            arrivals: ArrivalProcess::Poisson { per_hour: 10.0 },
            mix: vec![(1.0, template)],
            vapp_size: Dist::constant(3.0).unwrap(),
            lifetime_hours: Some(Dist::constant(4.0).unwrap()),
            clone_mode: CloneMode::Linked,
            recompose_add: Dist::constant(1.0).unwrap(),
        }
    }

    #[test]
    fn instantiate_materializes_with_lease() {
        let (plane, director, org, _t) = setup();
        let mut generator = RequestGenerator::new(
            spec(RequestTemplate::Instantiate),
            &Streams::new(1),
            org,
            vec![_t],
        );
        let req = generator
            .generate(SimTime::ZERO, &director, &plane)
            .unwrap();
        match req {
            GeneratedRequest::Cloud(CloudRequest::InstantiateVapp {
                count, lease, mode, ..
            }) => {
                assert_eq!(count, 3);
                assert_eq!(lease, Some(SimDuration::from_hours(4)));
                assert_eq!(mode, Some(CloneMode::Linked));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(generator.generated(), 1);
    }

    #[test]
    fn targeted_templates_skip_when_no_targets() {
        let (plane, director, org, t) = setup();
        for template in [
            RequestTemplate::StartVapp,
            RequestTemplate::StopVapp,
            RequestTemplate::DeleteVapp,
            RequestTemplate::MigrateVm,
            RequestTemplate::SnapshotVm,
        ] {
            let mut generator =
                RequestGenerator::new(spec(template), &Streams::new(1), org, vec![t]);
            assert!(
                generator
                    .generate(SimTime::ZERO, &director, &plane)
                    .is_none(),
                "{template:?} should skip on an empty cloud"
            );
            assert_eq!(generator.skipped(), 1);
        }
    }

    #[test]
    fn arrivals_advance_monotonically() {
        let (_plane, _director, org, t) = setup();
        let mut generator = RequestGenerator::new(
            spec(RequestTemplate::Instantiate),
            &Streams::new(1),
            org,
            vec![t],
        );
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            let next = generator.next_arrival(now);
            assert!(next > now);
            now = next;
        }
    }

    #[test]
    fn mix_weights_are_respected() {
        let (plane, director, org, t) = setup();
        let mut s = spec(RequestTemplate::Instantiate);
        s.mix = vec![
            (9.0, RequestTemplate::Instantiate),
            (1.0, RequestTemplate::SnapshotVm), // always skipped (no VMs)
        ];
        let mut generator = RequestGenerator::new(s, &Streams::new(2), org, vec![t]);
        for _ in 0..500 {
            generator.generate(SimTime::ZERO, &director, &plane);
        }
        let frac = generator.generated() as f64 / 500.0;
        assert!((frac - 0.9).abs() < 0.05, "instantiate fraction {frac}");
    }
}
