//! `repro`: regenerates every table and figure of the reproduced paper.
//!
//! ```text
//! repro                 # all experiments at publication scale
//! repro f4 f5 --quick   # selected experiments, test scale
//! repro --csv out/      # also write CSV files for plotting
//! repro list            # print the experiment catalog
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cpsim_bench::Cli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cpsim_bench::usage());
            return ExitCode::FAILURE;
        }
    };
    if cli.help {
        println!("{}", cpsim_bench::usage());
        return ExitCode::SUCCESS;
    }
    if cli.list {
        println!("{}", cpsim_bench::listing());
        return ExitCode::SUCCESS;
    }
    let mut stdout = std::io::stdout().lock();
    match cpsim_bench::run(&cli, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
