// cpsim-lint: profile(harness): CLI entry point; prints tables and wall-clock timings by design
//! `repro`: regenerates every table and figure of the reproduced paper.
//!
//! ```text
//! repro                 # all experiments at publication scale
//! repro f4 f5 --quick   # selected experiments, test scale
//! repro --csv out/      # also write CSV files for plotting
//! repro list            # print the experiment catalog
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cpsim_bench::Cli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cpsim_bench::usage());
            return ExitCode::FAILURE;
        }
    };
    if cli.help {
        println!("{}", cpsim_bench::usage());
        return ExitCode::SUCCESS;
    }
    if cli.list {
        // Annotate each experiment with its last recorded throughput when
        // a committed bench record is available.
        let baseline =
            cpsim_bench::load_baseline(std::path::Path::new(cpsim_bench::BENCH_DEFAULT_PATH))
                .unwrap_or_default();
        println!("{}", cpsim_bench::listing_with_baseline(&baseline));
        return ExitCode::SUCCESS;
    }
    let mut stdout = std::io::stdout().lock();
    match cpsim_bench::run(&cli, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
