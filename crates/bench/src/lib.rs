//! Harness support for the `repro` binary: argument parsing and table
//! output (stdout markdown + optional CSV directory).

use std::io::Write as _;
use std::path::PathBuf;

use cpsim::experiments::{all, ExpOptions, Experiment};
use cpsim_metrics::Table;

/// Parsed command line of the `repro` binary.
#[derive(Debug, Default)]
pub struct Cli {
    /// Experiment ids to run; empty = all.
    pub ids: Vec<String>,
    /// Quick mode.
    pub quick: bool,
    /// Master seed.
    pub seed: Option<u64>,
    /// Directory to write CSV copies into.
    pub csv_dir: Option<PathBuf>,
    /// Print help and exit.
    pub help: bool,
    /// `list` subcommand: print the experiment catalog and exit.
    pub list: bool,
}

impl Cli {
    /// Parses arguments (everything after argv[0]).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "list" => cli.list = true,
                "--quick" | "-q" => cli.quick = true,
                "--help" | "-h" => cli.help = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cli.seed = Some(v.parse().map_err(|_| format!("bad seed: {v}"))?);
                }
                "--csv" => {
                    let v = it.next().ok_or("--csv needs a directory")?;
                    cli.csv_dir = Some(PathBuf::from(v));
                }
                s if s.starts_with('-') => return Err(format!("unknown flag: {s}")),
                id => cli.ids.push(id.to_string()),
            }
        }
        Ok(cli)
    }

    /// The experiment options implied by the flags.
    pub fn options(&self) -> ExpOptions {
        let mut opts = if self.quick {
            ExpOptions::quick()
        } else {
            ExpOptions::default()
        };
        if let Some(seed) = self.seed {
            opts.seed = seed;
        }
        opts
    }

    /// Resolves the experiments to run.
    ///
    /// # Errors
    ///
    /// Returns a message naming any unknown id.
    pub fn select(&self) -> Result<Vec<Experiment>, String> {
        let registry = all();
        if self.ids.is_empty() {
            return Ok(registry);
        }
        let mut picked = Vec::new();
        for id in &self.ids {
            let found = all()
                .into_iter()
                .find(|e| e.id == id.trim_start_matches("repro-"))
                .ok_or_else(|| {
                    let known: Vec<&str> = registry.iter().map(|e| e.id).collect();
                    format!("unknown experiment '{id}'; known: {}", known.join(", "))
                })?;
            picked.push(found);
        }
        Ok(picked)
    }
}

/// Usage text.
pub fn usage() -> String {
    format!(
        "repro — regenerate the paper's tables and figures\n\n\
         USAGE: repro [IDS...] [--quick] [--seed N] [--csv DIR]\n\
         \x20      repro list\n\n\
         Experiments (default: all):\n{}\n",
        listing()
    )
}

/// One line per experiment: id and title, in paper order.
pub fn listing() -> String {
    all()
        .iter()
        .map(|e| format!("  {:4} {}", e.id, e.title))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs the selected experiments, printing tables and optionally saving
/// CSVs.
///
/// # Errors
///
/// Propagates CSV I/O failures.
pub fn run(cli: &Cli, out: &mut dyn std::io::Write) -> Result<(), String> {
    let opts = cli.options();
    if let Some(dir) = &cli.csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    for exp in cli.select()? {
        writeln!(out, "==> [{}] {}", exp.id, exp.title).map_err(|e| e.to_string())?;
        let started = std::time::Instant::now();
        let tables: Vec<Table> = (exp.run)(&opts);
        for (i, table) in tables.iter().enumerate() {
            writeln!(out, "\n{table}").map_err(|e| e.to_string())?;
            if let Some(dir) = &cli.csv_dir {
                let path = dir.join(format!("{}_{}.csv", exp.id, i));
                let mut f = std::fs::File::create(&path)
                    .map_err(|e| format!("creating {}: {e}", path.display()))?;
                f.write_all(table.to_csv().as_bytes())
                    .map_err(|e| e.to_string())?;
            }
        }
        writeln!(out, "    ({:.1}s wall)", started.elapsed().as_secs_f64())
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let cli = Cli::parse(["t1", "--quick", "--seed", "9", "--csv", "/tmp/x"].map(String::from))
            .unwrap();
        assert_eq!(cli.ids, vec!["t1"]);
        assert!(cli.quick);
        assert_eq!(cli.seed, Some(9));
        assert_eq!(cli.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(cli.options().seed, 9);
        assert!(cli.options().quick);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Cli::parse(["--bogus".to_string()]).is_err());
        assert!(Cli::parse(["--seed".to_string()]).is_err());
        assert!(Cli::parse(["--seed".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn select_all_by_default() {
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(cli.select().unwrap().len(), 15);
    }

    #[test]
    fn list_subcommand_parses_and_lists_everything() {
        let cli = Cli::parse(["list".to_string()]).unwrap();
        assert!(cli.list);
        let l = listing();
        for e in cpsim::experiments::all() {
            assert!(l.contains(e.id) && l.contains(e.title));
        }
    }

    #[test]
    fn unknown_subcommand_fails_selection() {
        let cli = Cli::parse(["frobnicate".to_string()]).unwrap();
        assert!(!cli.list);
        assert!(cli.select().is_err());
    }

    #[test]
    fn select_by_id_and_prefix_form() {
        let cli = Cli::parse(["repro-f4".to_string()]).unwrap();
        let picked = cli.select().unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].id, "f4");
        let cli = Cli::parse(["nope".to_string()]).unwrap();
        assert!(cli.select().is_err());
    }

    #[test]
    fn usage_mentions_every_id() {
        let u = usage();
        for e in cpsim::experiments::all() {
            assert!(u.contains(e.id));
        }
    }
}
