//! Harness support for the `repro` binary: argument parsing and table
//! output (stdout markdown + optional CSV directory).

use std::io::Write as _;
use std::path::PathBuf;

use cpsim::experiments::{all, ExpOptions, Experiment};
use cpsim_metrics::Table;

/// Default location of the benchmark summary written by `repro`.
pub const BENCH_DEFAULT_PATH: &str = "results/BENCH_suite.json";

/// Parsed command line of the `repro` binary.
#[derive(Debug, Default)]
pub struct Cli {
    /// Experiment ids to run; empty = all.
    pub ids: Vec<String>,
    /// Quick mode.
    pub quick: bool,
    /// Master seed.
    pub seed: Option<u64>,
    /// Worker threads per sweep (`None` = one per core; `1` = sequential).
    pub jobs: Option<usize>,
    /// Directory to write CSV copies into.
    pub csv_dir: Option<PathBuf>,
    /// Where to write the timing summary; `None` disables it.
    ///
    /// `parse` defaults this to [`BENCH_DEFAULT_PATH`] for full-scale runs
    /// so the binary records a perf trajectory; `--quick` runs default to
    /// off (pass `--bench` to opt in) so a smoke run cannot silently
    /// overwrite the committed full-scale record. `Cli::default()` leaves
    /// it off so library callers (tests) don't touch the filesystem.
    pub bench_path: Option<PathBuf>,
    /// Print help and exit.
    pub help: bool,
    /// `list` subcommand: print the experiment catalog and exit.
    pub list: bool,
}

impl Cli {
    /// Parses arguments (everything after argv[0]).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut cli = Cli::default();
        // `Some(..)` once --bench/--no-bench appears; the default depends
        // on --quick, which may come later, so it is resolved after the loop.
        let mut bench_flag: Option<Option<PathBuf>> = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "list" => cli.list = true,
                "--quick" | "-q" => cli.quick = true,
                "--help" | "-h" => cli.help = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cli.seed = Some(v.parse().map_err(|_| format!("bad seed: {v}"))?);
                }
                "--jobs" | "-j" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad job count: {v}"))?;
                    if n == 0 {
                        return Err("--jobs must be >= 1 (omit the flag for one per core)".into());
                    }
                    cli.jobs = Some(n);
                }
                "--csv" => {
                    let v = it.next().ok_or("--csv needs a directory")?;
                    cli.csv_dir = Some(PathBuf::from(v));
                }
                "--bench" => {
                    let v = it.next().ok_or("--bench needs a file path")?;
                    bench_flag = Some(Some(PathBuf::from(v)));
                }
                "--no-bench" => bench_flag = Some(None),
                s if s.starts_with('-') => return Err(format!("unknown flag: {s}")),
                id => cli.ids.push(id.to_string()),
            }
        }
        cli.bench_path = match bench_flag {
            Some(explicit) => explicit,
            None if cli.quick => None,
            None => Some(PathBuf::from(BENCH_DEFAULT_PATH)),
        };
        Ok(cli)
    }

    /// The experiment options implied by the flags.
    pub fn options(&self) -> ExpOptions {
        let mut opts = if self.quick {
            ExpOptions::quick()
        } else {
            ExpOptions::default()
        };
        if let Some(seed) = self.seed {
            opts.seed = seed;
        }
        if let Some(jobs) = self.jobs {
            opts.jobs = jobs;
        }
        opts
    }

    /// Resolves the experiments to run.
    ///
    /// # Errors
    ///
    /// Returns a message naming any unknown id.
    pub fn select(&self) -> Result<Vec<Experiment>, String> {
        let registry = all();
        if self.ids.is_empty() {
            return Ok(registry);
        }
        let mut picked = Vec::new();
        for id in &self.ids {
            let found = all()
                .into_iter()
                .find(|e| e.id == id.trim_start_matches("repro-"))
                .ok_or_else(|| {
                    let known: Vec<&str> = registry.iter().map(|e| e.id).collect();
                    format!("unknown experiment '{id}'; known: {}", known.join(", "))
                })?;
            picked.push(found);
        }
        Ok(picked)
    }
}

/// Usage text.
pub fn usage() -> String {
    format!(
        "repro — regenerate the paper's tables and figures\n\n\
         USAGE: repro [IDS...] [--quick] [--seed N] [--jobs N] [--csv DIR]\n\
         \x20              [--bench FILE | --no-bench]\n\
         \x20      repro list\n\n\
         --jobs N   worker threads per sweep (default: one per core;\n\
         \x20          1 = sequential; tables are identical either way)\n\
         --bench F  write the timing summary to F (default: {BENCH_DEFAULT_PATH}\n\
         \x20          for full runs; off under --quick so smoke runs never\n\
         \x20          overwrite the committed full-scale record)\n\n\
         Experiments (default: all):\n{}\n",
        listing()
    )
}

/// One line per experiment: id, title and sweep width, in paper order.
pub fn listing() -> String {
    all()
        .iter()
        .map(|e| {
            format!(
                "  {:4} {}  [{} quick / {} full sweep points]",
                e.id, e.title, e.sweep_quick, e.sweep_full
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// One experiment's timing record, as written to `BENCH_suite.json`.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Experiment id (`"t1"`, `"f4"`, ...).
    pub id: &'static str,
    /// Wall-clock for the whole experiment, milliseconds.
    pub wall_ms: f64,
    /// Simulation events processed by all its sweep points.
    pub events: u64,
    /// `events / wall`, the suite's primary throughput figure.
    pub events_per_sec: f64,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Sweep scale the numbers were measured at: `"quick"` or `"full"`.
    /// Makes a quick-mode file self-describing, so it can never pass for
    /// the committed full-scale record.
    pub scale: &'static str,
}

/// Renders the timing records as the `BENCH_suite.json` document:
/// `{ "<id>": {"wall_ms": .., "events": .., "events_per_sec": .., "jobs": .., "scale": ".."}, .. }`
/// in experiment (paper) order.
pub fn bench_json(records: &[BenchRecord]) -> String {
    let mut s = String::from("{\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \"jobs\": {}, \"scale\": \"{}\"}}{}\n",
            r.id,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.jobs,
            r.scale,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

/// Runs the selected experiments, printing tables and per-experiment
/// timings, optionally saving CSVs and the timing summary.
///
/// # Errors
///
/// Propagates CSV and bench-file I/O failures.
pub fn run(cli: &Cli, out: &mut dyn std::io::Write) -> Result<(), String> {
    let opts = cli.options();
    let jobs = opts.effective_jobs();
    if let Some(dir) = &cli.csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let mut records: Vec<BenchRecord> = Vec::new();
    for exp in cli.select()? {
        writeln!(out, "==> [{}] {}", exp.id, exp.title).map_err(|e| e.to_string())?;
        let events_before = cpsim_des::global_events_processed();
        let started = std::time::Instant::now();
        let tables: Vec<Table> = (exp.run)(&opts);
        let wall = started.elapsed();
        let events = cpsim_des::global_events_processed() - events_before;
        for (i, table) in tables.iter().enumerate() {
            writeln!(out, "\n{table}").map_err(|e| e.to_string())?;
            if let Some(dir) = &cli.csv_dir {
                let path = dir.join(format!("{}_{}.csv", exp.id, i));
                let mut f = std::fs::File::create(&path)
                    .map_err(|e| format!("creating {}: {e}", path.display()))?;
                f.write_all(table.to_csv().as_bytes())
                    .map_err(|e| e.to_string())?;
            }
        }
        let secs = wall.as_secs_f64();
        let events_per_sec = if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        };
        writeln!(
            out,
            "    ({secs:.1}s wall, {events} events, {events_per_sec:.0} events/s, jobs={jobs})"
        )
        .map_err(|e| e.to_string())?;
        records.push(BenchRecord {
            id: exp.id,
            wall_ms: secs * 1000.0,
            events,
            events_per_sec,
            jobs,
            scale: if cli.quick { "quick" } else { "full" },
        });
    }
    if let Some(path) = &cli.bench_path {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, bench_json(&records))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        writeln!(out, "bench: wrote {}", path.display()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let cli = Cli::parse(["t1", "--quick", "--seed", "9", "--csv", "/tmp/x"].map(String::from))
            .unwrap();
        assert_eq!(cli.ids, vec!["t1"]);
        assert!(cli.quick);
        assert_eq!(cli.seed, Some(9));
        assert_eq!(cli.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(cli.options().seed, 9);
        assert!(cli.options().quick);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Cli::parse(["--bogus".to_string()]).is_err());
        assert!(Cli::parse(["--seed".to_string()]).is_err());
        assert!(Cli::parse(["--seed".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        let cli = Cli::parse(["--jobs", "4"].map(String::from)).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.options().jobs, 4);
        assert_eq!(cli.options().effective_jobs(), 4);
        // Default: auto (one worker per core).
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(cli.jobs, None);
        assert_eq!(cli.options().jobs, 0);
        assert!(cli.options().effective_jobs() >= 1);
        // 0 and garbage are rejected.
        assert!(Cli::parse(["--jobs", "0"].map(String::from)).is_err());
        assert!(Cli::parse(["--jobs", "many"].map(String::from)).is_err());
        assert!(Cli::parse(["--jobs".to_string()]).is_err());
    }

    #[test]
    fn bench_flags_control_summary_path() {
        // Full-scale runs write the summary by default...
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(
            cli.bench_path.as_deref(),
            Some(std::path::Path::new(BENCH_DEFAULT_PATH))
        );
        // ...to an overridable location...
        let cli = Cli::parse(["--bench", "/tmp/b.json"].map(String::from)).unwrap();
        assert_eq!(
            cli.bench_path.as_deref(),
            Some(std::path::Path::new("/tmp/b.json"))
        );
        // ...unless disabled. Library callers default to off.
        let cli = Cli::parse(["--no-bench".to_string()]).unwrap();
        assert!(cli.bench_path.is_none());
        assert!(Cli::default().bench_path.is_none());
    }

    #[test]
    fn quick_mode_never_overwrites_full_record_by_default() {
        // A quick run must not silently clobber the committed full-scale
        // BENCH_suite.json: bench output defaults off under --quick...
        let cli = Cli::parse(["--quick".to_string()]).unwrap();
        assert!(cli.bench_path.is_none());
        // ...regardless of flag order...
        let cli = Cli::parse(["t1", "-q"].map(String::from)).unwrap();
        assert!(cli.bench_path.is_none());
        // ...but an explicit --bench opts back in (how CI captures its
        // artifact), even when --quick comes after it.
        let cli = Cli::parse(["--bench", "/tmp/b.json", "--quick"].map(String::from)).unwrap();
        assert_eq!(
            cli.bench_path.as_deref(),
            Some(std::path::Path::new("/tmp/b.json"))
        );
        assert!(cli.quick);
    }

    #[test]
    fn bench_json_is_well_formed_and_ordered() {
        let records = vec![
            BenchRecord {
                id: "t1",
                wall_ms: 12.5,
                events: 1000,
                events_per_sec: 80000.0,
                jobs: 2,
                scale: "full",
            },
            BenchRecord {
                id: "f4",
                wall_ms: 250.0,
                events: 50000,
                events_per_sec: 200000.0,
                jobs: 2,
                scale: "full",
            },
        ];
        let json = bench_json(&records);
        let t1 = json.find("\"t1\"").unwrap();
        let f4 = json.find("\"f4\"").unwrap();
        assert!(t1 < f4, "paper order preserved");
        for key in ["wall_ms", "events", "events_per_sec", "jobs", "scale"] {
            assert!(json.contains(key), "missing {key}");
        }
        // Exactly one trailing comma between the two objects, none after
        // the last — i.e. parseable JSON.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn run_writes_bench_summary() {
        let dir = std::env::temp_dir().join(format!("cpsim_bench_{}", std::process::id()));
        let path = dir.join("BENCH_suite.json");
        let cli = Cli {
            ids: vec!["t2".to_string()],
            quick: true,
            jobs: Some(1),
            bench_path: Some(path.clone()),
            ..Cli::default()
        };
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("events/s"), "timing line printed: {text}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"t2\""));
        assert!(json.contains("\"jobs\": 1"));
        assert!(json.contains("\"scale\": \"quick\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn select_all_by_default() {
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(cli.select().unwrap().len(), 15);
    }

    #[test]
    fn list_subcommand_parses_and_lists_everything() {
        let cli = Cli::parse(["list".to_string()]).unwrap();
        assert!(cli.list);
        let l = listing();
        for e in cpsim::experiments::all() {
            assert!(l.contains(e.id) && l.contains(e.title));
            assert!(
                l.contains(&format!(
                    "[{} quick / {} full sweep points]",
                    e.sweep_quick, e.sweep_full
                )),
                "{} sweep sizes missing from listing",
                e.id
            );
        }
    }

    #[test]
    fn unknown_subcommand_fails_selection() {
        let cli = Cli::parse(["frobnicate".to_string()]).unwrap();
        assert!(!cli.list);
        assert!(cli.select().is_err());
    }

    #[test]
    fn select_by_id_and_prefix_form() {
        let cli = Cli::parse(["repro-f4".to_string()]).unwrap();
        let picked = cli.select().unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].id, "f4");
        let cli = Cli::parse(["nope".to_string()]).unwrap();
        assert!(cli.select().is_err());
    }

    #[test]
    fn usage_mentions_every_id() {
        let u = usage();
        for e in cpsim::experiments::all() {
            assert!(u.contains(e.id));
        }
    }
}
