// cpsim-lint: profile(harness): the bench harness times experiments with the wall clock and keeps scratch maps; nothing here feeds simulated time or CSV ordering
//! Harness support for the `repro` binary: argument parsing and table
//! output (stdout markdown + optional CSV directory).

use std::io::Write as _;
use std::path::PathBuf;

use cpsim::experiments::{all, ExpOptions, Experiment};
use cpsim_metrics::Table;

/// Default location of the benchmark summary written by `repro`.
pub const BENCH_DEFAULT_PATH: &str = "results/BENCH_suite.json";

/// Parsed command line of the `repro` binary.
#[derive(Debug, Default)]
pub struct Cli {
    /// Experiment ids to run; empty = all.
    pub ids: Vec<String>,
    /// Quick mode.
    pub quick: bool,
    /// Master seed.
    pub seed: Option<u64>,
    /// Worker threads per sweep (`None` = one per core; `1` = sequential).
    pub jobs: Option<usize>,
    /// Shard executors inside each federated simulation (`None` = the
    /// sequential oracle loop; `0` is accepted as "one per core").
    pub intra_jobs: Option<usize>,
    /// Directory to write CSV copies into.
    pub csv_dir: Option<PathBuf>,
    /// Where to write the timing summary; `None` disables it.
    ///
    /// `parse` defaults this to [`BENCH_DEFAULT_PATH`] for full-scale runs
    /// so the binary records a perf trajectory; `--quick` runs default to
    /// off (pass `--bench` to opt in) so a smoke run cannot silently
    /// overwrite the committed full-scale record. `Cli::default()` leaves
    /// it off so library callers (tests) don't touch the filesystem.
    pub bench_path: Option<PathBuf>,
    /// Print help and exit.
    pub help: bool,
    /// `list` subcommand: print the experiment catalog and exit.
    pub list: bool,
    /// Diff this run's throughput against a recorded baseline and fail
    /// on a >2× events/sec regression.
    pub compare: bool,
    /// Baseline record for `--compare` (default: the committed
    /// [`BENCH_DEFAULT_PATH`]).
    pub baseline: Option<PathBuf>,
}

impl Cli {
    /// Parses arguments (everything after argv\[0\]).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
        let mut cli = Cli::default();
        // `Some(..)` once --bench/--no-bench appears; the default depends
        // on --quick, which may come later, so it is resolved after the loop.
        let mut bench_flag: Option<Option<PathBuf>> = None;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "list" => cli.list = true,
                "--quick" | "-q" => cli.quick = true,
                "--help" | "-h" => cli.help = true,
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    cli.seed = Some(v.parse().map_err(|_| format!("bad seed: {v}"))?);
                }
                "--jobs" | "-j" => {
                    let v = it.next().ok_or("--jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad job count: {v}"))?;
                    if n == 0 {
                        return Err("--jobs must be >= 1 (omit the flag for one per core)".into());
                    }
                    cli.jobs = Some(n);
                }
                "--intra-jobs" => {
                    let v = it.next().ok_or("--intra-jobs needs a value")?;
                    let n: usize = v.parse().map_err(|_| format!("bad intra-job count: {v}"))?;
                    cli.intra_jobs = Some(n);
                }
                "--csv" => {
                    let v = it.next().ok_or("--csv needs a directory")?;
                    cli.csv_dir = Some(PathBuf::from(v));
                }
                "--bench" => {
                    let v = it.next().ok_or("--bench needs a file path")?;
                    bench_flag = Some(Some(PathBuf::from(v)));
                }
                "--no-bench" => bench_flag = Some(None),
                "--compare" => cli.compare = true,
                "--baseline" => {
                    let v = it.next().ok_or("--baseline needs a file path")?;
                    cli.baseline = Some(PathBuf::from(v));
                }
                s if s.starts_with('-') => return Err(format!("unknown flag: {s}")),
                id => cli.ids.push(id.to_string()),
            }
        }
        cli.bench_path = match bench_flag {
            Some(explicit) => explicit,
            None if cli.quick => None,
            None => Some(PathBuf::from(BENCH_DEFAULT_PATH)),
        };
        Ok(cli)
    }

    /// The experiment options implied by the flags.
    pub fn options(&self) -> ExpOptions {
        let mut opts = if self.quick {
            ExpOptions::quick()
        } else {
            ExpOptions::default()
        };
        if let Some(seed) = self.seed {
            opts.seed = seed;
        }
        if let Some(jobs) = self.jobs {
            opts.jobs = jobs;
        }
        if let Some(intra_jobs) = self.intra_jobs {
            opts.intra_jobs = intra_jobs;
        }
        opts
    }

    /// Resolves the experiments to run.
    ///
    /// # Errors
    ///
    /// Returns a message naming any unknown id.
    pub fn select(&self) -> Result<Vec<Experiment>, String> {
        let registry = all();
        if self.ids.is_empty() {
            return Ok(registry);
        }
        let mut picked = Vec::new();
        for id in &self.ids {
            let found = all()
                .into_iter()
                .find(|e| e.id == id.trim_start_matches("repro-"))
                .ok_or_else(|| {
                    let known: Vec<&str> = registry.iter().map(|e| e.id).collect();
                    format!("unknown experiment '{id}'; known: {}", known.join(", "))
                })?;
            picked.push(found);
        }
        Ok(picked)
    }
}

/// Usage text.
pub fn usage() -> String {
    format!(
        "repro — regenerate the paper's tables and figures\n\n\
         USAGE: repro [IDS...] [--quick] [--seed N] [--jobs N] [--intra-jobs N]\n\
         \x20              [--csv DIR] [--bench FILE | --no-bench] [--compare]\n\
         \x20              [--baseline FILE]\n\
         \x20      repro list\n\n\
         --jobs N     worker threads per sweep (default: one per core;\n\
         \x20            1 = sequential; tables are identical either way)\n\
         --intra-jobs N  shard executors inside each federated simulation\n\
         \x20            (default 1 = the sequential oracle; 0 = one per\n\
         \x20            core; tables are identical either way)\n\
         --bench F    write the timing summary to F (default: {BENCH_DEFAULT_PATH}\n\
         \x20            for full runs; off under --quick so smoke runs never\n\
         \x20            overwrite the committed full-scale record)\n\
         --compare    diff this run's events/sec against the recorded\n\
         \x20            baseline and fail on a >2x same-scale regression\n\
         --baseline F baseline record for --compare (default: {BENCH_DEFAULT_PATH})\n\n\
         Experiments (default: all):\n{}\n",
        listing()
    )
}

/// One line per experiment: id, title and sweep width, in paper order.
pub fn listing() -> String {
    listing_with_baseline(&[])
}

/// [`listing`], with each experiment's last recorded throughput appended
/// when the bench record has an entry for it.
///
/// An experiment absent from a non-empty record is annotated explicitly
/// (`no recorded run`) instead of silently keeping the plain line: an
/// older `BENCH_suite.json` predating a newly added experiment would
/// otherwise be indistinguishable from having no record at all.
pub fn listing_with_baseline(baseline: &[(String, BaselineRecord)]) -> String {
    all()
        .iter()
        .map(|e| {
            let recorded = match baseline.iter().find(|(id, _)| id == e.id) {
                Some((_, b)) => format!("  last {}: {:.0} events/s", b.scale, b.events_per_sec),
                None if !baseline.is_empty() => "  (no recorded run)".to_string(),
                None => String::new(),
            };
            // `[intra-jobs]` marks the federated experiments whose runs
            // actually exercise the intra-run threaded executor; CI
            // enumerates them mechanically (grep) for the sanitizer and
            // CSV-determinism jobs.
            let marker = match (e.federated, e.intra_jobs) {
                (true, true) => "  [federated] [intra-jobs]",
                (true, false) => "  [federated]",
                _ => "",
            };
            format!(
                "  {:4} {}  [{} quick / {} full sweep points]{}{}",
                e.id, e.title, e.sweep_quick, e.sweep_full, marker, recorded
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Reads and parses the baseline record at `path`; `Ok(vec![])` when the
/// file does not exist (callers degrade to a plain listing).
///
/// # Errors
///
/// Returns a message when the file exists but cannot be read or parsed.
pub fn load_baseline(path: &std::path::Path) -> Result<Vec<(String, BaselineRecord)>, String> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    parse_bench_json(&text)
}

/// One experiment's timing record, as written to `BENCH_suite.json`.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Experiment id (`"t1"`, `"f4"`, ...).
    pub id: &'static str,
    /// Wall-clock for the whole experiment, milliseconds.
    pub wall_ms: f64,
    /// Simulation events processed by all its sweep points.
    pub events: u64,
    /// `events / wall`, the suite's primary throughput figure.
    pub events_per_sec: f64,
    /// Worker threads the sweep ran with.
    pub jobs: usize,
    /// Shard executors inside each federated simulation.
    pub intra_jobs: usize,
    /// Sweep scale the numbers were measured at: `"quick"` or `"full"`.
    /// Makes a quick-mode file self-describing, so it can never pass for
    /// the committed full-scale record.
    pub scale: &'static str,
}

/// A baseline entry parsed back out of a `BENCH_suite.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRecord {
    /// Recorded events/sec.
    pub events_per_sec: f64,
    /// Recorded sweep scale (`"quick"` or `"full"`).
    pub scale: String,
    /// Recorded worker-thread count (`None` in records predating the field).
    pub jobs: Option<u64>,
    /// Recorded intra-simulation executor count (`None` in older records).
    pub intra_jobs: Option<u64>,
}

/// Parses a `BENCH_suite.json` document into `(id, record)` pairs in file
/// order. Entries missing either field are skipped (old records carry
/// fewer fields).
///
/// # Errors
///
/// Returns a message when the document is not a JSON object.
pub fn parse_bench_json(text: &str) -> Result<Vec<(String, BaselineRecord)>, String> {
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("parsing bench record: {e:?}"))?;
    let entries = value.as_obj().ok_or("bench record is not a JSON object")?;
    let as_f64 = |v: &serde_json::Value| -> Option<f64> {
        match v {
            serde_json::Value::U64(x) => Some(*x as f64),
            serde_json::Value::I64(x) => Some(*x as f64),
            serde_json::Value::F64(x) => Some(*x),
            _ => None,
        }
    };
    Ok(entries
        .iter()
        .filter_map(|(id, rec)| {
            let events_per_sec = rec.get("events_per_sec").and_then(as_f64)?;
            let scale = rec.get("scale").and_then(|s| s.as_str())?.to_string();
            let as_u64 = |v: &serde_json::Value| -> Option<u64> {
                match v {
                    serde_json::Value::U64(x) => Some(*x),
                    _ => None,
                }
            };
            let jobs = rec.get("jobs").and_then(as_u64);
            let intra_jobs = rec.get("intra_jobs").and_then(as_u64);
            Some((
                id.clone(),
                BaselineRecord {
                    events_per_sec,
                    scale,
                    jobs,
                    intra_jobs,
                },
            ))
        })
        .collect())
}

/// The `--compare` gate: a run regresses when it is more than 2× slower
/// than its recorded baseline (`current < baseline / 2`). Loose enough to
/// absorb machine noise, tight enough to catch a hot path growing a scan.
pub const REGRESSION_RATIO: f64 = 0.5;

/// Diffs `current` against a parsed baseline. Returns the human-readable
/// table and the ids that regressed past [`REGRESSION_RATIO`].
///
/// Only comparable entries gate: a quick run diffed against a full-scale
/// record, or a run whose worker counts (`--jobs`, `--intra-jobs`) differ
/// from the baseline's, is reported informationally (the two measure
/// different configurations), never failed. Baselines predating a worker
/// field are assumed comparable.
pub fn compare_records(
    current: &[BenchRecord],
    baseline: &[(String, BaselineRecord)],
) -> (String, Vec<String>) {
    let mut table = String::from(
        "bench-compare (events/sec, higher is better)\n\
         | exp | baseline | current | ratio | verdict |\n\
         |-----|----------|---------|-------|---------|\n",
    );
    let mut regressions = Vec::new();
    for r in current {
        let row = match baseline.iter().find(|(id, _)| id == r.id) {
            None => format!(
                "| {} | — | {:.0} | — | new (no baseline) |",
                r.id, r.events_per_sec
            ),
            Some((_, base)) => {
                let ratio = if base.events_per_sec > 0.0 {
                    r.events_per_sec / base.events_per_sec
                } else {
                    f64::INFINITY
                };
                let verdict = if base.scale != r.scale {
                    format!("info only ({} baseline vs {} run)", base.scale, r.scale)
                } else if base.jobs.is_some_and(|j| j != r.jobs as u64) {
                    format!(
                        "info only (jobs {} baseline vs {} run)",
                        base.jobs.unwrap_or(0),
                        r.jobs
                    )
                } else if base.intra_jobs.is_some_and(|j| j != r.intra_jobs as u64) {
                    format!(
                        "info only (intra-jobs {} baseline vs {} run)",
                        base.intra_jobs.unwrap_or(0),
                        r.intra_jobs
                    )
                } else if ratio < REGRESSION_RATIO {
                    regressions.push(r.id.to_string());
                    ">2x regression".to_string()
                } else {
                    "ok".to_string()
                };
                format!(
                    "| {} | {:.0} | {:.0} | {:.2}x | {} |",
                    r.id, base.events_per_sec, r.events_per_sec, ratio, verdict
                )
            }
        };
        table.push_str(&row);
        table.push('\n');
    }
    (table, regressions)
}

/// Renders the timing records as the `BENCH_suite.json` document:
/// `{ "<id>": {"wall_ms": .., "events": .., "events_per_sec": .., "jobs": .., "intra_jobs": .., "scale": ".."}, .. }`
/// in experiment (paper) order.
pub fn bench_json(records: &[BenchRecord]) -> String {
    let mut s = String::from("{\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \"jobs\": {}, \"intra_jobs\": {}, \"scale\": \"{}\"}}{}\n",
            r.id,
            r.wall_ms,
            r.events,
            r.events_per_sec,
            r.jobs,
            r.intra_jobs,
            r.scale,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

/// Runs the selected experiments, printing tables and per-experiment
/// timings, optionally saving CSVs and the timing summary.
///
/// # Errors
///
/// Propagates CSV and bench-file I/O failures.
pub fn run(cli: &Cli, out: &mut dyn std::io::Write) -> Result<(), String> {
    let opts = cli.options();
    let jobs = opts.effective_jobs();
    let intra_jobs = opts.intra_jobs;
    if let Some(dir) = &cli.csv_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let mut records: Vec<BenchRecord> = Vec::new();
    for exp in cli.select()? {
        writeln!(out, "==> [{}] {}", exp.id, exp.title).map_err(|e| e.to_string())?;
        let events_before = cpsim_des::global_events_processed();
        let started = std::time::Instant::now();
        let tables: Vec<Table> = (exp.run)(&opts);
        let wall = started.elapsed();
        let events = cpsim_des::global_events_processed() - events_before;
        for (i, table) in tables.iter().enumerate() {
            writeln!(out, "\n{table}").map_err(|e| e.to_string())?;
            if let Some(dir) = &cli.csv_dir {
                let path = dir.join(format!("{}_{}.csv", exp.id, i));
                let mut f = std::fs::File::create(&path)
                    .map_err(|e| format!("creating {}: {e}", path.display()))?;
                f.write_all(table.to_csv().as_bytes())
                    .map_err(|e| e.to_string())?;
            }
        }
        let secs = wall.as_secs_f64();
        let events_per_sec = if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        };
        writeln!(
            out,
            "    ({secs:.1}s wall, {events} events, {events_per_sec:.0} events/s, jobs={jobs}, intra-jobs={intra_jobs})"
        )
        .map_err(|e| e.to_string())?;
        records.push(BenchRecord {
            id: exp.id,
            wall_ms: secs * 1000.0,
            events,
            events_per_sec,
            jobs,
            intra_jobs,
            scale: if cli.quick { "quick" } else { "full" },
        });
    }
    if let Some(path) = &cli.bench_path {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, bench_json(&records))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        writeln!(out, "bench: wrote {}", path.display()).map_err(|e| e.to_string())?;
    }
    if cli.compare {
        let baseline_path = cli
            .baseline
            .clone()
            .unwrap_or_else(|| PathBuf::from(BENCH_DEFAULT_PATH));
        let baseline = load_baseline(&baseline_path)?;
        if baseline.is_empty() {
            return Err(format!(
                "--compare: no baseline at {} (run a full-scale `repro` once to record one)",
                baseline_path.display()
            ));
        }
        let (table, regressions) = compare_records(&records, &baseline);
        writeln!(out, "\n{table}").map_err(|e| e.to_string())?;
        if !regressions.is_empty() {
            return Err(format!(
                "bench-compare: >2x events/sec regression vs {} in: {}",
                baseline_path.display(),
                regressions.join(", ")
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let cli = Cli::parse(["t1", "--quick", "--seed", "9", "--csv", "/tmp/x"].map(String::from))
            .unwrap();
        assert_eq!(cli.ids, vec!["t1"]);
        assert!(cli.quick);
        assert_eq!(cli.seed, Some(9));
        assert_eq!(cli.csv_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(cli.options().seed, 9);
        assert!(cli.options().quick);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Cli::parse(["--bogus".to_string()]).is_err());
        assert!(Cli::parse(["--seed".to_string()]).is_err());
        assert!(Cli::parse(["--seed".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        let cli = Cli::parse(["--jobs", "4"].map(String::from)).unwrap();
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.options().jobs, 4);
        assert_eq!(cli.options().effective_jobs(), 4);
        // Default: auto (one worker per core).
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(cli.jobs, None);
        assert_eq!(cli.options().jobs, 0);
        assert!(cli.options().effective_jobs() >= 1);
        // 0 and garbage are rejected.
        assert!(Cli::parse(["--jobs", "0"].map(String::from)).is_err());
        assert!(Cli::parse(["--jobs", "many"].map(String::from)).is_err());
        assert!(Cli::parse(["--jobs".to_string()]).is_err());
    }

    #[test]
    fn intra_jobs_flag_parses_and_defaults_sequential() {
        let cli = Cli::parse(["--intra-jobs", "2"].map(String::from)).unwrap();
        assert_eq!(cli.intra_jobs, Some(2));
        assert_eq!(cli.options().intra_jobs, 2);
        // 0 is valid: one executor per core, resolved inside the sim.
        let cli = Cli::parse(["--intra-jobs", "0"].map(String::from)).unwrap();
        assert_eq!(cli.options().intra_jobs, 0);
        // Default: the sequential oracle.
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(cli.intra_jobs, None);
        assert_eq!(cli.options().intra_jobs, 1);
        // Garbage and missing values are rejected.
        assert!(Cli::parse(["--intra-jobs", "many"].map(String::from)).is_err());
        assert!(Cli::parse(["--intra-jobs".to_string()]).is_err());
    }

    #[test]
    fn bench_flags_control_summary_path() {
        // Full-scale runs write the summary by default...
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(
            cli.bench_path.as_deref(),
            Some(std::path::Path::new(BENCH_DEFAULT_PATH))
        );
        // ...to an overridable location...
        let cli = Cli::parse(["--bench", "/tmp/b.json"].map(String::from)).unwrap();
        assert_eq!(
            cli.bench_path.as_deref(),
            Some(std::path::Path::new("/tmp/b.json"))
        );
        // ...unless disabled. Library callers default to off.
        let cli = Cli::parse(["--no-bench".to_string()]).unwrap();
        assert!(cli.bench_path.is_none());
        assert!(Cli::default().bench_path.is_none());
    }

    #[test]
    fn quick_mode_never_overwrites_full_record_by_default() {
        // A quick run must not silently clobber the committed full-scale
        // BENCH_suite.json: bench output defaults off under --quick...
        let cli = Cli::parse(["--quick".to_string()]).unwrap();
        assert!(cli.bench_path.is_none());
        // ...regardless of flag order...
        let cli = Cli::parse(["t1", "-q"].map(String::from)).unwrap();
        assert!(cli.bench_path.is_none());
        // ...but an explicit --bench opts back in (how CI captures its
        // artifact), even when --quick comes after it.
        let cli = Cli::parse(["--bench", "/tmp/b.json", "--quick"].map(String::from)).unwrap();
        assert_eq!(
            cli.bench_path.as_deref(),
            Some(std::path::Path::new("/tmp/b.json"))
        );
        assert!(cli.quick);
    }

    #[test]
    fn bench_json_is_well_formed_and_ordered() {
        let records = vec![
            BenchRecord {
                id: "t1",
                wall_ms: 12.5,
                events: 1000,
                events_per_sec: 80000.0,
                jobs: 2,
                intra_jobs: 1,
                scale: "full",
            },
            BenchRecord {
                id: "f4",
                wall_ms: 250.0,
                events: 50000,
                events_per_sec: 200000.0,
                jobs: 2,
                intra_jobs: 2,
                scale: "full",
            },
        ];
        let json = bench_json(&records);
        let t1 = json.find("\"t1\"").unwrap();
        let f4 = json.find("\"f4\"").unwrap();
        assert!(t1 < f4, "paper order preserved");
        for key in [
            "wall_ms",
            "events",
            "events_per_sec",
            "jobs",
            "intra_jobs",
            "scale",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // Exactly one trailing comma between the two objects, none after
        // the last — i.e. parseable JSON.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn run_writes_bench_summary() {
        let dir = std::env::temp_dir().join(format!("cpsim_bench_{}", std::process::id()));
        let path = dir.join("BENCH_suite.json");
        let cli = Cli {
            ids: vec!["t2".to_string()],
            quick: true,
            jobs: Some(1),
            bench_path: Some(path.clone()),
            ..Cli::default()
        };
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("events/s"), "timing line printed: {text}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"t2\""));
        assert!(json.contains("\"jobs\": 1"));
        assert!(json.contains("\"scale\": \"quick\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn rec(id: &'static str, eps: f64, scale: &'static str) -> BenchRecord {
        BenchRecord {
            id,
            wall_ms: 100.0,
            events: 1000,
            events_per_sec: eps,
            jobs: 1,
            intra_jobs: 1,
            scale,
        }
    }

    #[test]
    fn bench_json_round_trips_through_parser() {
        let records = vec![rec("t1", 80_000.0, "full"), rec("f4", 200_000.5, "full")];
        let parsed = parse_bench_json(&bench_json(&records)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "t1");
        assert!((parsed[0].1.events_per_sec - 80_000.0).abs() < 1e-6);
        assert_eq!(parsed[1].1.scale, "full");
    }

    #[test]
    fn compare_flags_regressions_past_2x_only() {
        let baseline = parse_bench_json(&bench_json(&[
            rec("t1", 100_000.0, "full"),
            rec("f4", 100_000.0, "full"),
            rec("f5", 100_000.0, "full"),
        ]))
        .unwrap();
        let current = vec![
            rec("t1", 60_000.0, "full"),  // 0.6x: slower but inside the gate
            rec("f4", 49_000.0, "full"),  // 0.49x: regression
            rec("f5", 300_000.0, "full"), // improvement
        ];
        let (table, regressions) = compare_records(&current, &baseline);
        assert_eq!(regressions, vec!["f4".to_string()]);
        assert!(table.contains("| f4 | 100000 | 49000 | 0.49x | >2x regression |"));
        assert!(table.contains("| t1 | 100000 | 60000 | 0.60x | ok |"));
        assert!(table.contains("3.00x"));
    }

    #[test]
    fn compare_across_scales_is_informational() {
        let baseline = parse_bench_json(&bench_json(&[rec("f5", 1_000_000.0, "full")])).unwrap();
        // 10x slower, but a quick run against a full baseline never gates.
        let (table, regressions) = compare_records(&[rec("f5", 100_000.0, "quick")], &baseline);
        assert!(regressions.is_empty());
        assert!(table.contains("info only (full baseline vs quick run)"));
    }

    #[test]
    fn compare_across_parallelism_settings_is_informational() {
        // A baseline captured at different --jobs never gates, however
        // slow the current run looks against it...
        let baseline = parse_bench_json(&bench_json(&[BenchRecord {
            jobs: 4,
            ..rec("f5", 1_000_000.0, "full")
        }]))
        .unwrap();
        let (table, regressions) = compare_records(&[rec("f5", 100_000.0, "full")], &baseline);
        assert!(regressions.is_empty());
        assert!(table.contains("info only (jobs 4 baseline vs 1 run)"));
        // ...and likewise for mismatched --intra-jobs.
        let baseline = parse_bench_json(&bench_json(&[BenchRecord {
            intra_jobs: 2,
            ..rec("f5", 1_000_000.0, "full")
        }]))
        .unwrap();
        let (table, regressions) = compare_records(&[rec("f5", 100_000.0, "full")], &baseline);
        assert!(regressions.is_empty());
        assert!(table.contains("info only (intra-jobs 2 baseline vs 1 run)"));
    }

    #[test]
    fn compare_gates_when_baseline_predates_parallelism_fields() {
        // Old BENCH json without jobs/intra_jobs keys still gates: the
        // fields parse as None and the mismatch check stays quiet.
        let legacy = "{\n  \"f5\": {\"wall_ms\": 1.0, \"events\": 10, \
                      \"events_per_sec\": 100000.0, \"scale\": \"full\"}\n}\n";
        let baseline = parse_bench_json(legacy).unwrap();
        assert_eq!(baseline[0].1.jobs, None);
        assert_eq!(baseline[0].1.intra_jobs, None);
        let (table, regressions) = compare_records(&[rec("f5", 49_000.0, "full")], &baseline);
        assert_eq!(regressions, vec!["f5".to_string()]);
        assert!(table.contains(">2x regression"));
    }

    #[test]
    fn compare_handles_missing_baseline_entries() {
        let (table, regressions) = compare_records(&[rec("f12", 5.0, "full")], &[]);
        assert!(regressions.is_empty());
        assert!(table.contains("new (no baseline)"));
    }

    #[test]
    fn compare_flag_parses() {
        let cli = Cli::parse(["--quick", "--compare"].map(String::from)).unwrap();
        assert!(cli.compare);
        assert!(cli.baseline.is_none());
        let cli = Cli::parse(["--compare", "--baseline", "/tmp/b.json"].map(String::from)).unwrap();
        assert_eq!(
            cli.baseline.as_deref(),
            Some(std::path::Path::new("/tmp/b.json"))
        );
        assert!(Cli::parse(["--baseline".to_string()]).is_err());
    }

    #[test]
    fn listing_with_baseline_appends_throughput() {
        let baseline = parse_bench_json(&bench_json(&[rec("t1", 123_456.0, "full")])).unwrap();
        let l = listing_with_baseline(&baseline);
        assert!(l.contains("last full: 123456 events/s"));
        // Experiments the record predates are called out, not silent.
        assert!(l.contains("f12"));
        assert!(l.contains("(no recorded run)"), "{l}");
        assert_eq!(l.matches("events/s").count(), 1);
    }

    #[test]
    fn listing_without_baseline_stays_plain() {
        let l = listing_with_baseline(&[]);
        assert_eq!(l.matches("events/s").count(), 0);
        assert!(!l.contains("(no recorded run)"), "{l}");
    }

    #[test]
    fn run_with_compare_gates_against_baseline() {
        let dir = std::env::temp_dir().join(format!("cpsim_cmp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline_path = dir.join("base.json");
        // An absurdly fast quick-scale baseline forces the gate to fire...
        std::fs::write(&baseline_path, bench_json(&[rec("t2", 1e12, "quick")])).unwrap();
        let cli = Cli {
            ids: vec!["t2".to_string()],
            quick: true,
            jobs: Some(1),
            compare: true,
            baseline: Some(baseline_path.clone()),
            ..Cli::default()
        };
        let mut out = Vec::new();
        let err = run(&cli, &mut out).unwrap_err();
        assert!(err.contains("t2"), "{err}");
        // ...and an unachievably slow one passes.
        std::fs::write(&baseline_path, bench_json(&[rec("t2", 1e-3, "quick")])).unwrap();
        let mut out = Vec::new();
        run(&cli, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("bench-compare"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn select_all_by_default() {
        let cli = Cli::parse(std::iter::empty::<String>()).unwrap();
        assert_eq!(cli.select().unwrap().len(), 17);
    }

    #[test]
    fn list_subcommand_parses_and_lists_everything() {
        let cli = Cli::parse(["list".to_string()]).unwrap();
        assert!(cli.list);
        let l = listing();
        for e in cpsim::experiments::all() {
            assert!(l.contains(e.id) && l.contains(e.title));
            assert!(
                l.contains(&format!(
                    "[{} quick / {} full sweep points]",
                    e.sweep_quick, e.sweep_full
                )),
                "{} sweep sizes missing from listing",
                e.id
            );
        }
    }

    #[test]
    fn federated_experiments_are_marked_in_the_listing() {
        let l = listing();
        for e in cpsim::experiments::all() {
            let line = l
                .lines()
                .find(|line| line.contains(e.id) && line.contains(e.title))
                .unwrap_or_else(|| panic!("{} missing from listing", e.id));
            assert_eq!(
                line.contains("[federated]"),
                e.federated,
                "{} federated marker mismatch",
                e.id
            );
            assert_eq!(
                line.contains("[intra-jobs]"),
                e.intra_jobs,
                "{} intra-jobs marker mismatch",
                e.id
            );
        }
        assert!(listing().contains("[federated]"));
        assert!(listing().contains("[intra-jobs]"));
    }

    #[test]
    fn unknown_subcommand_fails_selection() {
        let cli = Cli::parse(["frobnicate".to_string()]).unwrap();
        assert!(!cli.list);
        assert!(cli.select().is_err());
    }

    #[test]
    fn select_by_id_and_prefix_form() {
        let cli = Cli::parse(["repro-f4".to_string()]).unwrap();
        let picked = cli.select().unwrap();
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].id, "f4");
        let cli = Cli::parse(["nope".to_string()]).unwrap();
        assert!(cli.select().is_err());
    }

    #[test]
    fn usage_mentions_every_id() {
        let u = usage();
        for e in cpsim::experiments::all() {
            assert!(u.contains(e.id));
        }
    }
}
