//! Microbenchmarks of the simulation kernel: event queue, shared
//! bandwidth engine, RNG streams, distributions, and histograms.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use cpsim_des::{Dist, EventQueue, SharedBandwidth, SimTime, Streams};
use cpsim_metrics::Histogram;

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event-queue");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("push-pop-{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Interleaved ordering stresses the heap.
                for i in 0..n {
                    let t = (i * 2_654_435_761) % 1_000_000;
                    q.schedule(SimTime::from_micros(t), i);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            });
        });
    }
    g.finish();
}

fn bench_shared_bandwidth(c: &mut Criterion) {
    c.bench_function("shared-bandwidth/churn-64-flows", |b| {
        b.iter(|| {
            let mut bw: SharedBandwidth<u32> = SharedBandwidth::new(1e8);
            let mut plan = None;
            for i in 0..64u32 {
                plan = bw.start(
                    SimTime::from_micros(u64::from(i) * 10),
                    i,
                    1e6 * f64::from(i % 7 + 1),
                );
            }
            let mut done = 0;
            while let Some(p) = plan {
                if let Some(d) = bw.on_tick(p.next_completion, p.epoch) {
                    done += d.finished.len();
                    plan = d.plan;
                } else {
                    break;
                }
            }
            black_box(done)
        });
    });
}

fn bench_distributions(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist-sample");
    let dists = [
        ("exponential", Dist::exponential(1.0).unwrap()),
        ("log-normal", Dist::log_normal(1.0, 0.5).unwrap()),
        ("pareto", Dist::pareto(1.0, 2.0).unwrap()),
        (
            "empirical-1k",
            Dist::empirical((0..1000).map(f64::from).collect()).unwrap(),
        ),
    ];
    for (name, d) in dists {
        g.bench_function(name, |b| {
            let mut rng = Streams::new(1).rng(0);
            b.iter(|| black_box(d.sample(&mut rng)));
        });
    }
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record-100k", |b| {
        let values: Vec<f64> = (1..=100_000).map(|i| i as f64 * 0.001).collect();
        b.iter_batched(
            Histogram::new,
            |mut h| {
                for &v in &values {
                    h.record(v);
                }
                black_box(h.quantile(0.99))
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_shared_bandwidth,
    bench_distributions,
    bench_histogram
);
criterion_main!(benches);
