//! End-to-end provisioning-storm throughput: a burst of single-VM
//! instantiate requests hitting the control plane at once, run to
//! completion. This is the workload the DES hot path exists for —
//! the measured figure is simulator events per second of wall time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cpsim::cloud::{CloudRequest, ProvisioningPolicy};
use cpsim::Scenario;
use cpsim_des::{SimDuration, SimTime};
use cpsim_mgmt::CloneMode;
use cpsim_workload::Topology;

fn storm_topology() -> Topology {
    Topology {
        hosts: 16,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        datastores: 8,
        ds_capacity_gb: 16_384.0,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("storm-template".into(), 2, 2_048, 20.0)],
        seed_templates_everywhere: true,
        initial_vapps: 0,
        initial_vapp_size: 0,
    }
}

/// Submits `n` instantiates in the first second and runs until the
/// backlog drains; returns simulation events processed.
fn run_storm(n: u32) -> u64 {
    let mut sim = Scenario::bare(storm_topology())
        .seed(42)
        .policy(ProvisioningPolicy {
            mode: CloneMode::Linked,
            fencing: true,
            power_on: false,
            ..Default::default()
        })
        .build();
    let template = sim.templates()[0];
    let org = sim.org();
    for i in 0..n {
        sim.schedule_request(
            SimTime::from_micros(u64::from(i) + 1),
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 1,
                mode: Some(CloneMode::Linked),
                lease: None,
            },
        );
    }
    // Generous horizon; the storm drains long before it.
    let slice = SimDuration::from_secs(60);
    let mut done = 0usize;
    while done < n as usize {
        sim.run_for(slice);
        done = sim
            .cloud_reports()
            .iter()
            .filter(|r| r.kind == "instantiate-vapp")
            .count();
        assert!(
            sim.now() < SimTime::from_hours(48),
            "storm failed to drain: {done}/{n}"
        );
    }
    sim.events_processed()
}

fn bench_provisioning_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("storm");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    for &n in &[64u32, 256] {
        g.throughput(Throughput::Elements(u64::from(n)));
        g.bench_function(format!("linked-clone-{n}"), |b| {
            b.iter(|| black_box(run_storm(n)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_provisioning_storm);
criterion_main!(benches);
