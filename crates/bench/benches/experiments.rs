//! End-to-end benchmarks: whole-simulation throughput (events/second of
//! wall time) for each calibrated profile, and quick-mode runs of the
//! headline experiments. These measure the *simulator*, complementing the
//! `repro` binary which measures the *simulated system*.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpsim::experiments::{f4_throughput, ExpOptions};
use cpsim::Scenario;
use cpsim_des::SimTime;
use cpsim_workload::{cloud_a, enterprise};

fn bench_profile_hour(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate-one-hour");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    for profile in [cloud_a(), enterprise()] {
        g.bench_function(&profile.name, |b| {
            b.iter(|| {
                let mut sim = Scenario::from_profile(&profile).seed(1).build();
                sim.run_until(SimTime::from_hours(1));
                black_box(sim.events_processed())
            });
        });
    }
    g.finish();
}

fn bench_quick_f4(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g.bench_function("f4-quick", |b| {
        b.iter(|| black_box(f4_throughput::run(&ExpOptions::quick())));
    });
    g.finish();
}

criterion_group!(benches, bench_profile_hour, bench_quick_f4);
criterion_main!(benches);
