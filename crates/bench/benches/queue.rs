//! Microbenchmarks of the timer-wheel event queue: raw schedule/pop
//! throughput, the fused `pop_if_before` horizon drain used by
//! `Simulation::run_until`, keyed cancellation with tombstone
//! compaction, and the periodic-heartbeat pattern that motivated the
//! wheel — measured against [`ReferenceQueue`], the four-ary heap it
//! replaced.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cpsim_des::{EventQueue, ReferenceQueue, SimDuration, SimTime};

/// Pseudo-random but deterministic schedule times that stress the heap
/// (no pre-sorted or reverse-sorted luck).
fn scatter(i: u64) -> SimTime {
    SimTime::from_micros((i.wrapping_mul(2_654_435_761)) % 1_000_000)
}

fn bench_schedule_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    for &n in &[1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("schedule-pop-{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule(scatter(i), i);
                }
                let mut sum = 0u64;
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            });
        });
    }
    g.finish();
}

fn bench_pop_if_before(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    // The run_until pattern: drain in horizon slices with the fused
    // peek+pop, re-scheduling a fraction (events beget events).
    g.bench_function("pop-if-before-sliced-drain", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(scatter(i), i);
            }
            let mut processed = 0u64;
            let mut horizon_us = 0u64;
            while !q.is_empty() {
                horizon_us += 50_000;
                let horizon = SimTime::from_micros(horizon_us);
                while let Some((t, e)) = q.pop_if_before(horizon) {
                    processed += 1;
                    // Every 16th event schedules a short follow-up, as
                    // management ops do.
                    if e % 16 == 0 && processed < 2 * n {
                        q.schedule(t + cpsim_des::SimDuration::from_micros(100), e + 1);
                    }
                }
            }
            black_box(processed)
        });
    });
    g.finish();
}

fn bench_keyed_cancel(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    // Timeout-guard churn: most keyed timers are cancelled before they
    // fire, so tombstones pile up and the queue must compact.
    g.bench_function("keyed-cancel-90pct-compaction", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let keys: Vec<_> = (0..n).map(|i| q.schedule_keyed(scatter(i), i)).collect();
            let mut cancelled = 0u64;
            for (i, key) in keys.into_iter().enumerate() {
                if i % 10 != 0 {
                    assert!(q.cancel(key));
                    cancelled += 1;
                }
            }
            let mut fired = 0u64;
            while q.pop().is_some() {
                fired += 1;
            }
            assert_eq!(cancelled + fired, n);
            black_box((q.live_len(), fired))
        });
    });
    g.finish();
}

/// The workload the wheel was built for: `hosts` periodic heartbeat
/// timers at a fixed `period`, phases scattered across it. Every pop
/// re-arms the firing host's timer one period out (keyed, so a reset can
/// cancel it), and every 7th beat also resets a *neighbor's* pending
/// timer — cancel plus early re-arm — the way a host state change
/// re-arms its watchdog before the old deadline.
///
/// One macro so the wheel and the reference heap run byte-identical
/// schedules.
macro_rules! periodic_heartbeats {
    ($new:expr, $hosts:expr, $beats:expr) => {{
        let hosts: u64 = $hosts;
        let beats: u64 = $beats;
        let period = SimDuration::from_micros(10_000_000);
        let half = SimDuration::from_micros(5_000_000);
        let mut q = $new;
        let mut keys: Vec<_> = (0..hosts)
            .map(|h| {
                // Scatter phases over one period, deterministically.
                let phase = (h.wrapping_mul(2_654_435_761)) % 10_000_000;
                q.schedule_keyed(SimTime::from_micros(phase), h)
            })
            .collect();
        let mut fired = 0u64;
        let mut cancels = 0u64;
        while fired < beats {
            let (t, h) = q.pop().expect("heartbeats re-arm forever");
            fired += 1;
            keys[h as usize] = q.schedule_keyed(t + period, h);
            if fired % 7 == 0 {
                // Watchdog reset on the neighbor: its timer is pending
                // (just re-armed or still waiting), so the cancel is live.
                let other = ((h + 1) % hosts) as usize;
                if q.cancel(keys[other]) {
                    cancels += 1;
                    keys[other] = q.schedule_keyed(t + half, other as u64);
                }
            }
        }
        black_box((fired, cancels, q.len()))
    }};
}

fn bench_periodic_heartbeats(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue");
    for &hosts in &[256u64, 4096] {
        let beats = 40 * hosts;
        g.throughput(Throughput::Elements(beats));
        g.bench_function(format!("heartbeats-wheel-{hosts}-hosts"), |b| {
            b.iter(|| periodic_heartbeats!(EventQueue::new(), hosts, beats));
        });
        g.bench_function(format!("heartbeats-heap-{hosts}-hosts"), |b| {
            b.iter(|| periodic_heartbeats!(ReferenceQueue::new(), hosts, beats));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_schedule_pop,
    bench_pop_if_before,
    bench_keyed_cancel,
    bench_periodic_heartbeats
);
criterion_main!(benches);
