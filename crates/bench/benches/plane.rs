//! Microbenchmarks of the management plane: placement scan scaling,
//! linked-clone tree operations, and single-operation round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpsim_des::{EventQueue, SimTime, Streams};
use cpsim_inventory::{DatastoreSpec, HostSpec, Inventory, VmSpec};
use cpsim_mgmt::{CloneMode, ControlPlane, ControlPlaneConfig, Emit, MgmtEvent, OpKind, Placer};
use cpsim_storage::{StoragePool, TemplateResidency};

fn bench_placement_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    for &hosts in &[64usize, 1024] {
        let mut inv = Inventory::new();
        let ds = inv.add_datastore(DatastoreSpec::new("ds", 1e6, 200.0));
        for i in 0..hosts {
            let h = inv.add_host(HostSpec::new(format!("h{i}"), 48_000, 262_144));
            inv.connect_host_datastore(h, ds).unwrap();
        }
        let residency = TemplateResidency::new();
        g.bench_function(format!("scan-{hosts}-hosts"), |b| {
            let mut placer = Placer::default();
            b.iter(|| black_box(placer.place(&inv, &residency, 10.0, 1024, None)));
        });
    }
    g.finish();
}

fn bench_clone_tree(c: &mut Criterion) {
    c.bench_function("storage/linked-clone-tree-256", |b| {
        b.iter(|| {
            let mut inv = Inventory::new();
            let ds = inv.add_datastore(DatastoreSpec::new("ds", 1e6, 200.0));
            let mut pool = StoragePool::new();
            let base = pool.create_base(&mut inv, ds, 40.0).unwrap();
            let deltas: Vec<_> = (0..256)
                .map(|_| pool.create_delta(&mut inv, base, 1.0).unwrap())
                .collect();
            for d in deltas {
                pool.detach(&mut inv, d).unwrap();
            }
            black_box(pool.len())
        });
    });
}

/// Drives one operation through the full plane (control path only).
fn drive_one(plane: &mut ControlPlane, op: OpKind) {
    let mut queue: EventQueue<MgmtEvent> = EventQueue::new();
    for e in plane.submit(SimTime::ZERO, op) {
        if let Emit::At(t, ev) = e {
            queue.schedule(t, ev);
        }
    }
    while let Some((t, ev)) = queue.pop() {
        for e in plane.handle(t, ev) {
            if let Emit::At(t2, ev2) = e {
                queue.schedule(t2, ev2);
            }
        }
    }
}

fn bench_op_round_trip(c: &mut Criterion) {
    c.bench_function("plane/linked-clone-round-trip", |b| {
        b.iter_batched(
            || {
                let mut plane = ControlPlane::new(ControlPlaneConfig::default(), Streams::new(7));
                let ds = plane.add_datastore(DatastoreSpec::new("ds", 4096.0, 200.0));
                let h = plane.add_host(HostSpec::new("h", 48_000, 262_144));
                plane.connect(h, ds).unwrap();
                let t = plane
                    .install_template("t", VmSpec::new(1, 1024, 10.0), h, ds)
                    .unwrap();
                (plane, t)
            },
            |(mut plane, t)| {
                drive_one(
                    &mut plane,
                    OpKind::CloneVm {
                        source: t,
                        mode: CloneMode::Linked,
                    },
                );
                black_box(plane.stats().completed())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_placement_scan,
    bench_clone_tree,
    bench_op_round_trip
);
criterion_main!(benches);
