//! Microbenchmarks of the management plane: placement scan scaling,
//! linked-clone tree operations, and single-operation round trips.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cpsim_des::{EventQueue, SimTime, Streams};
use cpsim_inventory::{DatastoreSpec, HostSpec, Inventory, VmSpec};
use cpsim_mgmt::{CloneMode, ControlPlane, ControlPlaneConfig, Emit, MgmtEvent, OpKind, Placer};
use cpsim_storage::{StoragePool, TemplateResidency};

/// An inventory of `hosts` hosts spread across `hosts / 64` datastores
/// (min 1), every host connected to every datastore.
fn placement_fixture(hosts: usize) -> Inventory {
    let mut inv = Inventory::new();
    let datastores: Vec<_> = (0..(hosts / 64).max(1))
        .map(|i| inv.add_datastore(DatastoreSpec::new(format!("ds{i}"), 1e6, 200.0)))
        .collect();
    for i in 0..hosts {
        let h = inv.add_host(HostSpec::new(format!("h{i}"), 48_000, 262_144));
        for &ds in &datastores {
            inv.connect_host_datastore(h, ds).unwrap();
        }
    }
    inv
}

fn bench_placement_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    // The decision itself: with the inventory-maintained candidate
    // indexes this should be ~flat in host count, where the old full
    // scan grew linearly.
    for &hosts in &[64usize, 1024, 10_240] {
        let inv = placement_fixture(hosts);
        let residency = TemplateResidency::new();
        g.bench_function(format!("decide-{hosts}-hosts"), |b| {
            let mut placer = Placer::default();
            b.iter(|| black_box(placer.place(&inv, &residency, 10.0, 1024, None)));
        });
    }
    // Decision + index maintenance under churn: place, create the VM on
    // the chosen pair (re-keying host and datastore), destroy it again.
    for &hosts in &[1024usize, 10_240] {
        let mut inv = placement_fixture(hosts);
        let residency = TemplateResidency::new();
        g.bench_function(format!("place-churn-{hosts}-hosts"), |b| {
            let mut placer = Placer::default();
            let mut n = 0u64;
            b.iter(|| {
                let (host, ds) = placer
                    .place(&inv, &residency, 10.0, 1024, None)
                    .expect("fixture has capacity");
                n += 1;
                let vm = inv
                    .create_vm(format!("vm{n}"), VmSpec::new(2, 1024, 10.0), host, ds)
                    .unwrap();
                inv.destroy_vm(vm).unwrap();
                black_box((host, ds))
            });
        });
    }
    g.finish();
}

fn bench_clone_tree(c: &mut Criterion) {
    c.bench_function("storage/linked-clone-tree-256", |b| {
        b.iter(|| {
            let mut inv = Inventory::new();
            let ds = inv.add_datastore(DatastoreSpec::new("ds", 1e6, 200.0));
            let mut pool = StoragePool::new();
            let base = pool.create_base(&mut inv, ds, 40.0).unwrap();
            let deltas: Vec<_> = (0..256)
                .map(|_| pool.create_delta(&mut inv, base, 1.0).unwrap())
                .collect();
            for d in deltas {
                pool.detach(&mut inv, d).unwrap();
            }
            black_box(pool.len())
        });
    });
}

/// Drives one operation through the full plane (control path only).
fn drive_one(plane: &mut ControlPlane, op: OpKind) {
    let mut queue: EventQueue<MgmtEvent> = EventQueue::new();
    let mut emits: Vec<Emit> = Vec::new();
    plane.submit(SimTime::ZERO, op, &mut emits);
    for e in emits.drain(..) {
        if let Emit::At(t, ev) = e {
            queue.schedule(t, ev);
        }
    }
    while let Some((t, ev)) = queue.pop() {
        plane.handle(t, ev, &mut emits);
        for e in emits.drain(..) {
            if let Emit::At(t2, ev2) = e {
                queue.schedule(t2, ev2);
            }
        }
    }
}

fn bench_op_round_trip(c: &mut Criterion) {
    c.bench_function("plane/linked-clone-round-trip", |b| {
        b.iter_batched(
            || {
                let mut plane = ControlPlane::new(ControlPlaneConfig::default(), Streams::new(7));
                let ds = plane.add_datastore(DatastoreSpec::new("ds", 4096.0, 200.0));
                let h = plane.add_host(HostSpec::new("h", 48_000, 262_144));
                plane.connect(h, ds).unwrap();
                let t = plane
                    .install_template("t", VmSpec::new(1, 1024, 10.0), h, ds)
                    .unwrap();
                (plane, t)
            },
            |(mut plane, t)| {
                drive_one(
                    &mut plane,
                    OpKind::CloneVm {
                        source: t,
                        mode: CloneMode::Linked,
                    },
                );
                black_box(plane.stats().completed())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_placement_scan,
    bench_clone_tree,
    bench_op_round_trip
);
criterion_main!(benches);
