//! Microbenchmark of the federated shard executor: the same contended
//! multi-shard workload stepped by the sequential oracle
//! (`--intra-jobs 1`) and by the conservative parallel runner
//! (`--intra-jobs 2`). Both produce byte-identical results — this bench
//! measures what the turnstile coordination costs (single core) or buys
//! (multi-core) in wall time.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cpsim_cloud::CloudRequest;
use cpsim_des::{SimDuration, SimTime};
use cpsim_federation::{FedScenario, FedSim, FedTopology};
use cpsim_mgmt::CloneMode;

const SHARDS: usize = 4;
const REQUESTS: u32 = 96;

/// Small contended topology: tight home datastores force most clones
/// through the shared pool, so the run exercises the turnstile rather
/// than pure home-placement lookahead.
fn topology() -> FedTopology {
    FedTopology {
        shards: SHARDS,
        home_hosts_per_shard: 2,
        home_ds_per_shard: 2,
        home_ds_capacity_gb: 24.0,
        shared_hosts: 4,
        shared_ds: 2,
        shared_ds_capacity_gb: 512.0,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("fed-template".into(), 2, 2_048, 20.0)],
        initial_vms_per_shard: Vec::new(),
        initial_vm_disk_gb: 4.0,
    }
}

fn build(intra_jobs: usize) -> FedSim {
    let mut sim = FedScenario::new(topology())
        .seed(2013)
        .staleness(SimDuration::from_secs(10))
        .build();
    sim.set_intra_jobs(intra_jobs);
    for i in 0..REQUESTS {
        let s = i as usize % SHARDS;
        let org = sim.org(s);
        let template = sim.templates(s)[0];
        sim.schedule_request(
            SimTime::from_micros(u64::from(i) + 1),
            s,
            CloudRequest::InstantiateVapp {
                org,
                template,
                count: 1,
                mode: Some(CloneMode::Linked),
                lease: None,
            },
        );
    }
    sim
}

fn bench_fed_shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("fed-shards");
    g.sample_size(10);
    g.throughput(Throughput::Elements(u64::from(REQUESTS)));
    let horizon = SimTime::from_secs(600);
    for &intra_jobs in &[1usize, 2] {
        g.bench_function(format!("clone-storm-intra-jobs-{intra_jobs}"), |b| {
            b.iter(|| {
                let mut sim = build(intra_jobs);
                sim.run_until(horizon);
                black_box(sim.events_processed())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fed_shards);
criterion_main!(benches);
