//! Tests for the `sanitize` feature: the turnstile happens-before
//! checker must stay silent on a correct threaded run and must fire on
//! each class of seeded protocol violation (mutation tests). Run with:
//!
//! ```text
//! cargo test -p cpsim-federation --features sanitize
//! ```

#![cfg(feature = "sanitize")]
// cpsim-lint: profile(harness): integration test driving the public federation API

use cpsim_cloud::CloudRequest;
use cpsim_des::SimTime;
use cpsim_federation::{FedScenario, FedTopology, PlacementStore, StoreCell};

fn contended(shards: usize) -> FedTopology {
    FedTopology {
        shards,
        home_hosts_per_shard: 2,
        home_ds_per_shard: 1,
        home_ds_capacity_gb: 64.0,
        shared_hosts: 2,
        shared_ds: 1,
        shared_ds_capacity_gb: 500.0,
        host_cpu_mhz: 48_000,
        host_mem_mb: 524_288,
        ds_bandwidth_mbps: 200.0,
        templates: vec![("fed-template".into(), 2, 2_048, 20.0)],
        initial_vms_per_shard: Vec::new(),
        initial_vm_disk_gb: 4.0,
    }
}

/// A correct threaded run passes every sanitizer check and still
/// replays the sequential oracle exactly.
#[test]
fn threaded_run_passes_the_sanitizer_and_matches_the_oracle() {
    let run = |intra_jobs: usize| {
        let mut sim = FedScenario::new(contended(3)).seed(11).build();
        sim.set_intra_jobs(intra_jobs);
        for s in 0..3 {
            let org = sim.org(s);
            let template = sim.templates(s)[0];
            for i in 0..8 {
                sim.schedule_request(
                    SimTime::from_micros(1 + i),
                    s,
                    CloudRequest::InstantiateVapp {
                        org,
                        template,
                        count: 1,
                        mode: None,
                        lease: None,
                    },
                );
            }
        }
        // Multiple slices so the sanitizer is re-armed per run_until.
        for h in 1..=3 {
            sim.run_until(SimTime::from_secs(1_800 * h));
        }
        sim.check_store_invariants().unwrap();
        (sim.store_stats(), sim.events_processed())
    };
    let oracle = run(1);
    assert_eq!(
        oracle,
        run(3),
        "sanitized threaded run diverged from oracle"
    );
}

/// Mutation test: a shard that lies about its lookahead (bound forced
/// past its real next access) lets another shard overtake it; the
/// sanitizer must catch the resulting out-of-order access.
#[test]
#[should_panic(expected = "parallel access order diverged")]
fn forced_bound_violation_is_caught() {
    let cell = StoreCell::new(PlacementStore::new(2), 2);
    cell.publish(0, 0);
    cell.publish(1, 0);
    cell.set_active(true);
    // Shard 1's real next store access is at t=5µs, but its bound is
    // forced to 100µs — the seeded protocol violation.
    cell.sanitize_force_bound(1, 100);
    // Shard 0 at t=50µs passes the turnstile (shard 1's bound is past
    // it) and commits its access.
    cell.publish(0, 50);
    cell.with(0, 50, |_s| ());
    cell.publish(0, 60);
    // Shard 1 now shows up at t=5µs — behind the access that already
    // ran. my_turn waves it through (shard 0's bound is 60µs > 5µs),
    // so only the sanitizer can notice the order broke.
    cell.with(1, 5, |_s| ());
}

/// Mutation test: publishing a bound that moves backwards within an
/// active slice breaks the monotone-lookahead contract and must panic.
#[test]
#[should_panic(expected = "monotone")]
fn non_monotone_publish_is_caught() {
    let cell = StoreCell::new(PlacementStore::new(2), 2);
    cell.publish(0, 100);
    cell.set_active(true);
    cell.publish(0, 50);
}

/// Mutation test: the runner-side check fires when a shard's published
/// bound overstates the event it is about to step.
#[test]
#[should_panic(expected = "overstating")]
fn overstated_bound_is_caught_before_stepping() {
    let cell = StoreCell::new(PlacementStore::new(2), 2);
    cell.publish(0, 100);
    // The shard claims nothing before 100µs, then tries to step t=50µs.
    cell.sanitize_assert_bound_covers(0, 50);
}

/// The sanitizer is scoped to active slices: sequential paths (plain
/// lock, turnstile off) are never checked, so out-of-order `locked` /
/// inactive `with` accesses remain legal.
#[test]
fn inactive_cell_is_unchecked() {
    let cell = StoreCell::new(PlacementStore::new(2), 2);
    cell.publish(1, 0);
    cell.with(0, 100, |_s| ());
    cell.with(1, 5, |_s| ());
    cell.locked(|_s| ());
}
