//! The [`FedScenario`] builder: declaratively describe a federated cloud
//! — N control-plane shards over partitioned home inventory plus a shared
//! spillover pool — and build a runnable [`FedSim`].

use std::collections::BTreeMap;
use std::sync::Arc;

use cpsim_cloud::{CloudDirector, ProvisioningPolicy};
use cpsim_des::{SimDuration, Streams};
use cpsim_faults::RecoveryPolicy;
use cpsim_inventory::{DatastoreSpec, HostSpec, VmSpec};
use cpsim_mgmt::{CloneMode, ControlPlane, ControlPlaneConfig};

use crate::driver::{FedSim, ShardSetup};
use crate::gate::StoreGate;
use crate::store::PlacementStore;
use crate::turnstile::StoreCell;

/// A federated topology: per-shard home inventory plus a shared
/// spillover pool registered in every shard.
#[derive(Clone, Debug)]
pub struct FedTopology {
    /// Number of control-plane shards.
    pub shards: usize,
    /// Exclusively-owned hosts per shard.
    pub home_hosts_per_shard: u32,
    /// Exclusively-owned datastores per shard.
    pub home_ds_per_shard: u32,
    /// Capacity of each home datastore, GiB.
    pub home_ds_capacity_gb: f64,
    /// Spillover hosts every shard can place onto.
    pub shared_hosts: u32,
    /// Spillover datastores every shard can place onto.
    pub shared_ds: u32,
    /// Capacity of each shared datastore, GiB.
    pub shared_ds_capacity_gb: f64,
    /// Host CPU capacity, MHz.
    pub host_cpu_mhz: u64,
    /// Host memory, MB.
    pub host_mem_mb: u64,
    /// Datastore copy bandwidth, Mbps.
    pub ds_bandwidth_mbps: f64,
    /// Templates `(name, vcpus, mem_mb, disk_gb)`, installed and seeded
    /// on every datastore of every shard.
    pub templates: Vec<(String, u32, u64, f64)>,
    /// Pre-installed powered-off VMs per shard, on home inventory only
    /// (inventory skew for rebalance experiments). Missing entries mean
    /// zero.
    pub initial_vms_per_shard: Vec<u32>,
    /// Disk size of each pre-installed VM, GiB.
    pub initial_vm_disk_gb: f64,
}

impl FedTopology {
    fn validate(&self) {
        assert!(self.shards > 0, "a federation needs at least one shard");
        assert!(
            self.home_hosts_per_shard > 0 && self.home_ds_per_shard > 0,
            "every shard needs home hosts and datastores"
        );
        assert!(
            !self.templates.is_empty(),
            "the federation needs at least one template"
        );
    }
}

/// A declarative federated-simulation setup.
#[derive(Clone, Debug)]
pub struct FedScenario {
    seed: u64,
    config: ControlPlaneConfig,
    topology: FedTopology,
    policy: ProvisioningPolicy,
    staleness: SimDuration,
    handoff_delay: SimDuration,
    recovery: RecoveryPolicy,
}

impl FedScenario {
    /// Starts from a federated topology with provisioning defaults
    /// matching the load experiments: linked clones, fencing on,
    /// power-on off.
    pub fn new(topology: FedTopology) -> Self {
        FedScenario {
            seed: 0,
            config: ControlPlaneConfig::default(),
            topology,
            policy: ProvisioningPolicy {
                mode: CloneMode::Linked,
                fencing: true,
                power_on: false,
                ..Default::default()
            },
            staleness: SimDuration::from_secs(10),
            handoff_delay: SimDuration::from_millis(500),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Sets the master seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the per-shard control-plane configuration.
    pub fn config(mut self, config: ControlPlaneConfig) -> Self {
        self.config = config;
        self
    }

    /// Mutates the per-shard control-plane configuration in place.
    pub fn tune(mut self, f: impl FnOnce(&mut ControlPlaneConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Replaces the provisioning policy.
    pub fn policy(mut self, policy: ProvisioningPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the staleness window: how often each shard refreshes its
    /// mirrored view of the shared pool (default 10 s).
    pub fn staleness(mut self, window: SimDuration) -> Self {
        self.staleness = window;
        self
    }

    /// Sets the placement-store handoff latency of a cross-shard
    /// migration (default 500 ms).
    pub fn handoff_delay(mut self, delay: SimDuration) -> Self {
        self.handoff_delay = delay;
        self
    }

    /// Replaces the conflict-retry recovery policy (backoff schedule and
    /// retry budget for placement conflicts).
    pub fn recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The topology this scenario will build.
    pub fn topology(&self) -> &FedTopology {
        &self.topology
    }

    /// Builds the runnable federated simulation.
    ///
    /// With `shards == 1` no gate, no fault machinery and no sync ticks
    /// are installed: the single shard is op-for-op identical to the
    /// equivalent single-plane [`Scenario`]-built simulation (the
    /// equivalence the integration tests assert).
    ///
    /// [`Scenario`]: https://docs.rs/cpsim
    ///
    /// # Panics
    ///
    /// Panics if the topology or configuration is invalid (e.g.
    /// templates too large for the declared datastores).
    pub fn build(self) -> FedSim {
        let t = &self.topology;
        t.validate();
        let streams = Streams::new(self.seed);
        let cell = Arc::new(StoreCell::new(PlacementStore::new(t.shards), t.shards));
        let shared_ds_idx: Vec<usize> = (0..t.shared_ds)
            .map(|_| cell.locked(|st| st.add_shared_ds(t.shared_ds_capacity_gb)))
            .collect();
        let shared_host_idx: Vec<usize> = (0..t.shared_hosts)
            .map(|_| cell.locked(|st| st.add_shared_host(t.host_mem_mb)))
            .collect();

        let mut setups: Vec<ShardSetup> = Vec::with_capacity(t.shards);
        for s in 0..t.shards {
            // Shard 0 draws from the same substream family as the
            // single-plane scenario builder, so a one-shard federation
            // replays the single-plane model exactly; further shards get
            // their own families from the user range.
            let plane_streams = if s == 0 {
                streams.substreams(1)
            } else {
                streams.substreams(Streams::USER_BASE + s as u64)
            };
            let mut plane = ControlPlane::new(self.config.clone(), plane_streams);
            let mut director = CloudDirector::new(self.policy);

            // Materialization order mirrors the single-plane builder:
            // all datastores, then all hosts, then full connectivity,
            // then templates seeded everywhere.
            let mut datastores = Vec::new();
            for i in 0..t.home_ds_per_shard {
                datastores.push(plane.add_datastore(DatastoreSpec::new(
                    format!("s{s}-ds-{i:02}"),
                    t.home_ds_capacity_gb,
                    t.ds_bandwidth_mbps,
                )));
            }
            let mut shared_ds_local = Vec::new();
            for i in 0..t.shared_ds {
                let id = plane.add_datastore(DatastoreSpec::new(
                    format!("shared-ds-{i:02}"),
                    t.shared_ds_capacity_gb,
                    t.ds_bandwidth_mbps,
                ));
                datastores.push(id);
                shared_ds_local.push(id);
            }
            let mut hosts = Vec::new();
            for i in 0..t.home_hosts_per_shard {
                hosts.push(plane.add_host(HostSpec::new(
                    format!("s{s}-host-{i:03}"),
                    t.host_cpu_mhz,
                    t.host_mem_mb,
                )));
            }
            let mut shared_hosts_local = Vec::new();
            for i in 0..t.shared_hosts {
                let id = plane.add_host(HostSpec::new(
                    format!("shared-host-{i:03}"),
                    t.host_cpu_mhz,
                    t.host_mem_mb,
                ));
                hosts.push(id);
                shared_hosts_local.push(id);
            }
            for &h in &hosts {
                for &d in &datastores {
                    plane.connect(h, d).expect("fresh ids");
                }
            }

            let mut templates = Vec::new();
            for (i, (name, vcpus, mem_mb, disk_gb)) in t.templates.iter().enumerate() {
                let host = hosts[i % hosts.len()];
                let home_ds = datastores[i % datastores.len()];
                let spec = VmSpec::new(*vcpus, *mem_mb, *disk_gb);
                let template = plane
                    .install_template(name, spec, host, home_ds)
                    .unwrap_or_else(|e| panic!("installing template {name}: {e}"));
                for &ds in &datastores {
                    if ds != home_ds {
                        plane
                            .seed_template_now(template, ds)
                            .unwrap_or_else(|e| panic!("seeding template {name}: {e}"));
                    }
                }
                director.register_template(template);
                templates.push(template);
            }
            let org = director.create_org("default-org");

            // Pre-installed population on home inventory only (skew).
            let mut initial_vms = Vec::new();
            let count = t.initial_vms_per_shard.get(s).copied().unwrap_or(0);
            for v in 0..count {
                let host = hosts[v as usize % t.home_hosts_per_shard as usize];
                let ds = datastores[v as usize % t.home_ds_per_shard as usize];
                let vm = plane
                    .install_vm(
                        &format!("s{s}-init-{v:03}"),
                        VmSpec::new(1, 1_024, t.initial_vm_disk_gb),
                        host,
                        ds,
                        false,
                    )
                    .unwrap_or_else(|e| panic!("installing initial VM on shard {s}: {e}"));
                initial_vms.push(vm);
            }

            if t.shards > 1 {
                // Contribute this shard's seeded bases on the shared
                // pool to the ledger, then install the gate and the
                // conflict-retry machinery (timeout probability zero:
                // the fault RNG is drawn only for backoff jitter on
                // actual conflicts).
                let mut ds_map = BTreeMap::new();
                for (k, &local) in shared_ds_local.iter().enumerate() {
                    let used = plane
                        .inventory()
                        .datastore(local)
                        .map(|d| d.used_gb)
                        .unwrap_or(0.0);
                    cell.locked(|st| st.seed_ds(shared_ds_idx[k], s, used));
                    ds_map.insert(local, shared_ds_idx[k]);
                }
                let mut host_map = BTreeMap::new();
                for (k, &local) in shared_hosts_local.iter().enumerate() {
                    host_map.insert(local, shared_host_idx[k]);
                }
                plane.set_placement_gate(Box::new(StoreGate::new(
                    s,
                    Arc::clone(&cell),
                    ds_map,
                    host_map,
                )));
                plane.enable_faults(self.recovery, 0.0, streams.substreams(3).rng(s as u64));
            }

            setups.push(ShardSetup {
                plane,
                director,
                org,
                hosts,
                datastores,
                templates,
                initial_vms,
                shared_hosts: shared_hosts_local,
                shared_ds: shared_ds_local,
            });
        }

        // Initial mirror: every shard folds the others' seeded bases
        // into its view before the clock starts (free of charge — this
        // is setup, not simulated work).
        if t.shards > 1 {
            for setup in &mut setups {
                setup.plane.sync_placement_gate_quiet();
            }
        }

        FedSim::assemble(setups, cell, self.staleness, self.handoff_delay)
    }
}
