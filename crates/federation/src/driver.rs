//! The [`FedSim`] driver: N control-plane shards on one discrete-event
//! kernel, coordinating through the shared [`PlacementStore`].
//!
//! Each shard is a full management stack — plane, director, trace — and
//! handles its own events exactly as the single-plane driver does. The
//! federation layer adds three things on top:
//!
//! 1. **Sync ticks** ([`FedEvent::StoreSync`]): every staleness window,
//!    each shard folds foreign commits on the shared pool into its local
//!    inventory mirror (and pays CPU/DB time for the refresh).
//! 2. **Ledger settlement**: when a gated placement's task completes, its
//!    [`OpenCommit`] is settled — kept as a reservation on success,
//!    released back to the pool on failure or rollback. Destroying the VM
//!    later releases the reservation.
//! 3. **Cross-shard migration**: a two-phase evacuate → handoff → admit
//!    protocol driven by tagged raw operations (tags at or above
//!    [`MIG_TAG_BASE`] are reserved for the migration machinery).

use std::cell::RefCell;
use std::rc::Rc;

use cpsim_cloud::{CloudDirector, CloudOut, CloudReport, CloudRequest};
use cpsim_des::{EventQueue, FastMap, Model, SimDuration, SimTime, Simulation};
use cpsim_inventory::{DatastoreId, HostId, OrgId, VappId, VmId};
use cpsim_mgmt::{CloneMode, ControlPlane, Emit, MgmtEvent, OpKind, Operation, TaskReport};
use cpsim_workload::TraceLog;

use crate::store::{OpenCommit, PlacementStore, StoreStats};

/// Task tags at or above this value are reserved for migration
/// operations; the cloud director never sees their reports.
pub const MIG_TAG_BASE: u64 = 1 << 60;

/// Top-level federated simulation events.
#[derive(Debug)]
pub enum FedEvent {
    /// A management-plane event on one shard.
    Mgmt(usize, MgmtEvent),
    /// A vApp lease expired on one shard.
    Lease(usize, VappId),
    /// An externally-scheduled cloud request for one shard.
    Request(usize, CloudRequest),
    /// An externally-scheduled raw operation for one shard.
    Op(usize, OpKind),
    /// A shard's periodic placement-store refresh.
    StoreSync(usize),
    /// Phase 1 of a cross-shard migration: evacuate from the source.
    MigrateStart(u64),
    /// Phase 2: placement-store handoff, then admit on the destination.
    MigrateHandoff(u64),
}

/// Everything the scenario builder materializes for one shard.
pub(crate) struct ShardSetup {
    pub(crate) plane: ControlPlane,
    pub(crate) director: CloudDirector,
    pub(crate) org: OrgId,
    pub(crate) hosts: Vec<HostId>,
    pub(crate) datastores: Vec<DatastoreId>,
    pub(crate) templates: Vec<VmId>,
    pub(crate) initial_vms: Vec<VmId>,
}

struct Shard {
    plane: ControlPlane,
    director: CloudDirector,
    org: OrgId,
    hosts: Vec<HostId>,
    datastores: Vec<DatastoreId>,
    templates: Vec<VmId>,
    initial_vms: Vec<VmId>,
    trace: TraceLog,
    task_reports_kept: Vec<TaskReport>,
    cloud_reports: Vec<CloudReport>,
    /// Reused emission buffer, one per shard (see `CloudModel::scratch`).
    scratch: Vec<Emit>,
}

/// One in-flight cross-shard migration.
#[derive(Clone, Copy, Debug)]
struct Migration {
    src: usize,
    dst: usize,
    vm: VmId,
    started: SimTime,
}

/// The outcome of one cross-shard migration.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationReport {
    /// Migration id as returned by `schedule_migration`.
    pub id: u64,
    /// Source shard.
    pub src: usize,
    /// Destination shard.
    pub dst: usize,
    /// The VM that was evacuated from the source shard.
    pub vm: VmId,
    /// When the evacuation started.
    pub started: SimTime,
    /// When the destination admit (or the failure) completed.
    pub completed: SimTime,
    /// Whether the VM was successfully re-admitted on the destination.
    pub success: bool,
}

/// The federated simulation state driven by the kernel.
pub struct FedModel {
    shards: Vec<Shard>,
    store: Rc<RefCell<PlacementStore>>,
    staleness: SimDuration,
    handoff_delay: SimDuration,
    keep_task_reports: bool,
    /// In-flight migrations by id. Accessed by key only (get / insert /
    /// remove / len); completion order is recorded in `migration_reports`.
    // cpsim-lint: allow(no-unordered-iteration): keyed access only; never iterated
    migrations: FastMap<u64, Migration>,
    next_migration_id: u64,
    migration_reports: Vec<MigrationReport>,
    /// Open ledger reservations held by completed placements, keyed by
    /// `(shard, vm)` so a later destroy releases the shared capacity.
    // cpsim-lint: allow(no-unordered-iteration): keyed insert/remove only; never iterated
    reservations: FastMap<(usize, VmId), OpenCommit>,
    /// Pooled routing stack reused across events (see `route_stack`).
    route_buf: Vec<CloudOut>,
}

impl FedModel {
    /// Settles the shared-pool ledger for a finished task on shard `s`.
    fn settle_ledger(&mut self, s: usize, r: &TaskReport) {
        match r.kind {
            "create-vm" | "clone-full" | "clone-linked" => {
                let Some((host, ds)) = r.placement else {
                    return;
                };
                let Some(oc) = self.store.borrow_mut().take_open(s, host, ds) else {
                    return;
                };
                let succeeded = r.error.is_none() && !r.aborted;
                match (succeeded, r.produced_vm) {
                    (true, Some(vm)) => {
                        self.reservations.insert((s, vm), oc);
                    }
                    _ => self.store.borrow_mut().release(s, &oc),
                }
            }
            "destroy-vm" => {
                let Some(vm) = r.target_vm else { return };
                if r.error.is_none() && !r.aborted {
                    if let Some(oc) = self.reservations.remove(&(s, vm)) {
                        self.store.borrow_mut().release(s, &oc);
                    }
                }
            }
            _ => {}
        }
    }

    /// Advances the migration state machine on a tagged report.
    fn on_migration_report(
        &mut self,
        now: SimTime,
        s: usize,
        r: &TaskReport,
        queue: &mut EventQueue<FedEvent>,
    ) {
        let id = r.tag - MIG_TAG_BASE;
        let Some(m) = self.migrations.get(&id).copied() else {
            return;
        };
        let succeeded = r.error.is_none() && !r.aborted;
        if s == m.src && r.kind == "destroy-vm" {
            if succeeded {
                queue.schedule(now + self.handoff_delay, FedEvent::MigrateHandoff(id));
            } else {
                self.migrations.remove(&id);
                self.migration_reports.push(MigrationReport {
                    id,
                    src: m.src,
                    dst: m.dst,
                    vm: m.vm,
                    started: m.started,
                    completed: now,
                    success: false,
                });
            }
        } else if s == m.dst {
            self.migrations.remove(&id);
            self.migration_reports.push(MigrationReport {
                id,
                src: m.src,
                dst: m.dst,
                vm: m.vm,
                started: m.started,
                completed: now,
                success: succeeded,
            });
        }
    }

    /// Routes one emission from shard `s`: timers back onto the kernel
    /// queue, task reports to the ledger and then the shard's director
    /// (or the migration machinery for tagged reports).
    fn consume_emit(
        &mut self,
        now: SimTime,
        s: usize,
        e: Emit,
        queue: &mut EventQueue<FedEvent>,
    ) -> Option<CloudOut> {
        match e {
            Emit::At(t, ev) => {
                queue.schedule(t, FedEvent::Mgmt(s, ev));
                None
            }
            Emit::Done(_, r) | Emit::Failed(_, r) => {
                self.shards[s].trace.push_task(&r);
                if self.keep_task_reports {
                    self.shards[s].task_reports_kept.push(r.clone());
                }
                self.settle_ledger(s, &r);
                if r.tag >= MIG_TAG_BASE {
                    self.on_migration_report(now, s, &r, queue);
                    None
                } else {
                    let Shard {
                        director, plane, ..
                    } = &mut self.shards[s];
                    Some(director.on_task_report(now, &r, plane))
                }
            }
        }
    }

    fn route_stack(
        &mut self,
        now: SimTime,
        s: usize,
        stack: &mut Vec<CloudOut>,
        queue: &mut EventQueue<FedEvent>,
    ) {
        while let Some(o) = stack.pop() {
            self.shards[s].cloud_reports.extend(o.reports);
            for (t, vapp) in o.leases {
                queue.schedule(t, FedEvent::Lease(s, vapp));
            }
            for e in o.mgmt {
                if let Some(child) = self.consume_emit(now, s, e, queue) {
                    stack.push(child);
                }
            }
        }
    }

    fn route(&mut self, now: SimTime, s: usize, out: CloudOut, queue: &mut EventQueue<FedEvent>) {
        let mut stack = std::mem::take(&mut self.route_buf);
        stack.push(out);
        self.route_stack(now, s, &mut stack, queue);
        self.route_buf = stack;
    }

    /// Routes the plane emissions accumulated in shard `s`'s scratch
    /// buffer, leaving the (emptied) buffer in place for the next event.
    fn route_scratch(&mut self, now: SimTime, s: usize, queue: &mut EventQueue<FedEvent>) {
        let mut emits = std::mem::take(&mut self.shards[s].scratch);
        let mut stack = std::mem::take(&mut self.route_buf);
        for e in emits.drain(..) {
            if let Some(child) = self.consume_emit(now, s, e, queue) {
                stack.push(child);
            }
        }
        self.shards[s].scratch = emits;
        self.route_stack(now, s, &mut stack, queue);
        self.route_buf = stack;
    }

    fn submit_cloud(
        &mut self,
        now: SimTime,
        s: usize,
        req: CloudRequest,
        queue: &mut EventQueue<FedEvent>,
    ) {
        let Shard {
            director, plane, ..
        } = &mut self.shards[s];
        let (_, out) = director.submit(now, req, plane);
        self.route(now, s, out, queue);
    }

    fn submit_op(
        &mut self,
        now: SimTime,
        s: usize,
        op: Operation,
        queue: &mut EventQueue<FedEvent>,
    ) {
        debug_assert!(self.shards[s].scratch.is_empty());
        let mut emits = std::mem::take(&mut self.shards[s].scratch);
        self.shards[s].plane.submit(now, op, &mut emits);
        self.shards[s].scratch = emits;
        self.route_scratch(now, s, queue);
    }
}

impl Model for FedModel {
    type Event = FedEvent;

    fn handle(&mut self, now: SimTime, event: FedEvent, queue: &mut EventQueue<FedEvent>) {
        match event {
            FedEvent::Mgmt(s, ev) => {
                debug_assert!(self.shards[s].scratch.is_empty());
                let mut emits = std::mem::take(&mut self.shards[s].scratch);
                self.shards[s].plane.handle(now, ev, &mut emits);
                self.shards[s].scratch = emits;
                self.route_scratch(now, s, queue);
            }
            FedEvent::Lease(s, vapp) => {
                let Shard {
                    director, plane, ..
                } = &mut self.shards[s];
                let out = director.on_lease_expiry(now, vapp, plane);
                self.route(now, s, out, queue);
            }
            FedEvent::Request(s, req) => self.submit_cloud(now, s, req, queue),
            FedEvent::Op(s, op) => self.submit_op(now, s, Operation::new(op), queue),
            FedEvent::StoreSync(s) => {
                debug_assert!(self.shards[s].scratch.is_empty());
                let mut emits = std::mem::take(&mut self.shards[s].scratch);
                self.shards[s].plane.sync_placement_gate(now, &mut emits);
                self.shards[s].scratch = emits;
                self.route_scratch(now, s, queue);
                queue.schedule(now + self.staleness, FedEvent::StoreSync(s));
            }
            FedEvent::MigrateStart(id) => {
                let Some(m) = self.migrations.get_mut(&id) else {
                    return;
                };
                m.started = now;
                let (src, vm) = (m.src, m.vm);
                let op = Operation::tagged(OpKind::DestroyVm { vm }, MIG_TAG_BASE + id);
                self.submit_op(now, src, op, queue);
            }
            FedEvent::MigrateHandoff(id) => {
                let Some(m) = self.migrations.get(&id).copied() else {
                    return;
                };
                self.store.borrow_mut().on_handoff();
                // The destination refreshes its shared-pool view as part
                // of the handoff (it is about to place into it), then
                // admits the VM as a linked clone of its local template.
                debug_assert!(self.shards[m.dst].scratch.is_empty());
                let mut emits = std::mem::take(&mut self.shards[m.dst].scratch);
                self.shards[m.dst]
                    .plane
                    .sync_placement_gate(now, &mut emits);
                self.shards[m.dst].scratch = emits;
                self.route_scratch(now, m.dst, queue);
                let source = self.shards[m.dst].templates[0];
                let op = Operation::tagged(
                    OpKind::CloneVm {
                        source,
                        mode: CloneMode::Linked,
                    },
                    MIG_TAG_BASE + id,
                );
                self.submit_op(now, m.dst, op, queue);
            }
        }
    }
}

/// A runnable federated simulation.
///
/// Construct via [`FedScenario`](crate::FedScenario); drive with
/// [`run_until`](FedSim::run_until); inspect per shard through the
/// accessors.
pub struct FedSim {
    sim: Simulation<FedModel>,
}

impl FedSim {
    /// Internal constructor used by [`FedScenario`](crate::FedScenario).
    pub(crate) fn assemble(
        setups: Vec<ShardSetup>,
        store: Rc<RefCell<PlacementStore>>,
        staleness: SimDuration,
        handoff_delay: SimDuration,
    ) -> Self {
        let shard_count = setups.len();
        let mut init: Vec<(usize, Vec<Emit>)> = Vec::new();
        let mut shards = Vec::with_capacity(shard_count);
        for (s, setup) in setups.into_iter().enumerate() {
            init.push((s, setup.plane.init_events()));
            shards.push(Shard {
                plane: setup.plane,
                director: setup.director,
                org: setup.org,
                hosts: setup.hosts,
                datastores: setup.datastores,
                templates: setup.templates,
                initial_vms: setup.initial_vms,
                trace: TraceLog::new(),
                task_reports_kept: Vec::new(),
                cloud_reports: Vec::new(),
                scratch: Vec::new(),
            });
        }
        let model = FedModel {
            shards,
            store,
            staleness,
            handoff_delay,
            keep_task_reports: false,
            migrations: FastMap::default(),
            next_migration_id: 0,
            migration_reports: Vec::new(),
            reservations: FastMap::default(),
            route_buf: Vec::new(),
        };
        let mut sim = Simulation::new(model);
        for (s, emits) in init {
            for e in emits {
                if let Emit::At(t, ev) = e {
                    sim.schedule(t, FedEvent::Mgmt(s, ev));
                }
            }
        }
        if shard_count > 1 {
            // Stagger the first sync of each shard across one window so
            // refreshes don't stampede the same instant.
            for s in 0..shard_count {
                let frac = (s + 1) as f64 / shard_count as f64;
                let at = SimTime::ZERO + SimDuration::from_secs_f64(staleness.as_secs_f64() * frac);
                sim.schedule(at, FedEvent::StoreSync(s));
            }
        }
        FedSim { sim }
    }

    /// Runs until `horizon` (events after it remain queued).
    pub fn run_until(&mut self, horizon: SimTime) {
        self.sim.run_until(horizon);
    }

    /// Runs for `span` past the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let horizon = self.now() + span;
        self.run_until(horizon);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.sim.model().shards.len()
    }

    /// Keep full task reports in memory on every shard (off by default).
    pub fn keep_task_reports(&mut self, on: bool) {
        self.sim.model_mut().keep_task_reports = on;
    }

    /// Shard `s`'s control plane.
    pub fn plane(&self, s: usize) -> &ControlPlane {
        &self.sim.model().shards[s].plane
    }

    /// Shard `s`'s cloud director.
    pub fn director(&self, s: usize) -> &CloudDirector {
        &self.sim.model().shards[s].director
    }

    /// Shard `s`'s default org.
    pub fn org(&self, s: usize) -> OrgId {
        self.sim.model().shards[s].org
    }

    /// Shard `s`'s hosts, in creation order (home first, then shared).
    pub fn hosts(&self, s: usize) -> &[HostId] {
        &self.sim.model().shards[s].hosts
    }

    /// Shard `s`'s datastores, in creation order (home first, then shared).
    pub fn datastores(&self, s: usize) -> &[DatastoreId] {
        &self.sim.model().shards[s].datastores
    }

    /// Shard `s`'s catalog templates.
    pub fn templates(&self, s: usize) -> &[VmId] {
        &self.sim.model().shards[s].templates
    }

    /// Shard `s`'s pre-installed VMs, in creation order.
    pub fn initial_vms(&self, s: usize) -> &[VmId] {
        &self.sim.model().shards[s].initial_vms
    }

    /// Shard `s`'s operation trace.
    pub fn trace(&self, s: usize) -> &TraceLog {
        &self.sim.model().shards[s].trace
    }

    /// Shard `s`'s completed cloud requests.
    pub fn cloud_reports(&self, s: usize) -> &[CloudReport] {
        &self.sim.model().shards[s].cloud_reports
    }

    /// Shard `s`'s full task reports (only if `keep_task_reports` is on).
    pub fn task_reports(&self, s: usize) -> &[TaskReport] {
        &self.sim.model().shards[s].task_reports_kept
    }

    /// A load observation for routing: tasks in flight plus pending
    /// admissions on shard `s`.
    pub fn shard_load(&self, s: usize) -> usize {
        let plane = &self.sim.model().shards[s].plane;
        plane.tasks_in_flight() + plane.admission().pending_len()
    }

    /// Load observations for every shard, in shard order.
    pub fn shard_loads(&self) -> Vec<usize> {
        (0..self.shard_count())
            .map(|s| self.shard_load(s))
            .collect()
    }

    /// Aggregated placement-store statistics.
    pub fn store_stats(&self) -> StoreStats {
        self.sim.model().store.borrow().stats()
    }

    /// Checks the shared ledger's conservation invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_store_invariants(&self) -> Result<(), String> {
        self.sim.model().store.borrow().check_invariants()
    }

    /// Completed cross-shard migrations, in completion order.
    pub fn migration_reports(&self) -> &[MigrationReport] {
        &self.sim.model().migration_reports
    }

    /// Cross-shard migrations still in flight.
    pub fn migrations_in_flight(&self) -> usize {
        self.sim.model().migrations.len()
    }

    /// Schedules a cloud request on shard `s` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `s` is out of range.
    pub fn schedule_request(&mut self, at: SimTime, s: usize, req: CloudRequest) {
        assert!(s < self.shard_count(), "shard {s} out of range");
        self.sim.schedule(at, FedEvent::Request(s, req));
    }

    /// Schedules a raw management operation on shard `s` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `s` is out of range.
    pub fn schedule_op(&mut self, at: SimTime, s: usize, op: OpKind) {
        assert!(s < self.shard_count(), "shard {s} out of range");
        self.sim.schedule(at, FedEvent::Op(s, op));
    }

    /// Schedules a cross-shard migration of `vm` from shard `src` to
    /// shard `dst` at `at`, returning its migration id.
    ///
    /// The protocol is evacuate (destroy on `src`) → placement-store
    /// handoff (after the configured delay) → admit (linked clone of
    /// `dst`'s first template). The outcome lands in
    /// [`migration_reports`](FedSim::migration_reports).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or a shard index is out of range.
    pub fn schedule_migration(&mut self, at: SimTime, src: usize, dst: usize, vm: VmId) -> u64 {
        let n = self.shard_count();
        assert!(src < n && dst < n, "shard out of range");
        let m = self.sim.model_mut();
        let id = m.next_migration_id;
        m.next_migration_id += 1;
        m.migrations.insert(
            id,
            Migration {
                src,
                dst,
                vm,
                started: at,
            },
        );
        self.sim.schedule(at, FedEvent::MigrateStart(id));
        id
    }
}

impl std::fmt::Debug for FedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FedSim")
            .field("now", &self.now())
            .field("shards", &self.shard_count())
            .field("events", &self.events_processed())
            .field("store", &self.store_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FedScenario, FedTopology};

    /// A small contended federation: home datastores are tight (44 GiB
    /// free after the template base) while the shared pool is roomy, so
    /// the most-free-first placer steers clones onto shared capacity.
    fn contended(shards: usize) -> FedTopology {
        FedTopology {
            shards,
            home_hosts_per_shard: 2,
            home_ds_per_shard: 1,
            home_ds_capacity_gb: 64.0,
            shared_hosts: 2,
            shared_ds: 1,
            shared_ds_capacity_gb: 500.0,
            host_cpu_mhz: 48_000,
            host_mem_mb: 524_288,
            ds_bandwidth_mbps: 200.0,
            templates: vec![("fed-template".into(), 2, 2_048, 20.0)],
            initial_vms_per_shard: Vec::new(),
            initial_vm_disk_gb: 4.0,
        }
    }

    fn burst(sim: &mut FedSim, s: usize, n: u64) {
        let org = sim.org(s);
        let template = sim.templates(s)[0];
        for i in 0..n {
            sim.schedule_request(
                SimTime::from_micros(1 + i),
                s,
                CloudRequest::InstantiateVapp {
                    org,
                    template,
                    count: 1,
                    mode: None,
                    lease: None,
                },
            );
        }
    }

    #[test]
    fn two_shards_share_the_pool_without_double_booking() {
        let mut sim = FedScenario::new(contended(2)).seed(42).build();
        burst(&mut sim, 0, 8);
        burst(&mut sim, 1, 8);
        sim.run_until(SimTime::from_hours(2));
        let stats = sim.store_stats();
        assert!(stats.commits > 0, "no gated placements: {stats:?}");
        assert!(stats.syncs > 0, "sync ticks never fired: {stats:?}");
        sim.check_store_invariants().unwrap();
        for s in 0..2 {
            assert!(sim.director(s).stats().vms_provisioned() > 0, "shard {s}");
            assert_eq!(sim.plane(s).tasks_in_flight(), 0, "shard {s} drained");
        }
    }

    #[test]
    fn federation_is_deterministic() {
        let run = |seed: u64| {
            let mut sim = FedScenario::new(contended(2)).seed(seed).build();
            burst(&mut sim, 0, 6);
            burst(&mut sim, 1, 6);
            sim.run_until(SimTime::from_hours(1));
            (
                sim.events_processed(),
                sim.trace(0).len(),
                sim.trace(1).len(),
                sim.store_stats(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn conflicts_resolve_to_one_winner_and_retries_complete() {
        // Nearly-full shared pool: 2 shards racing for the last slots.
        let mut topo = contended(2);
        // 500 cap, 2×20 template bases leave 460 free; shrink so only a
        // handful of 20 GiB (create) / delta-sized clones fit and the
        // placer still prefers shared over the 44-free home datastore.
        topo.shared_ds_capacity_gb = 100.0;
        let mut sim = FedScenario::new(topo)
            .seed(13)
            .staleness(SimDuration::from_secs(30))
            .build();
        burst(&mut sim, 0, 12);
        burst(&mut sim, 1, 12);
        sim.run_until(SimTime::from_hours(3));
        sim.check_store_invariants().unwrap();
        let stats = sim.store_stats();
        let conflicts: u64 = (0..2)
            .map(|s| sim.plane(s).stats().placement_conflicts())
            .sum();
        assert_eq!(stats.conflicts, conflicts);
        // Both shards drain fully even when they lose races.
        for s in 0..2 {
            assert_eq!(sim.plane(s).tasks_in_flight(), 0, "shard {s} drained");
        }
    }

    #[test]
    fn cross_shard_migration_completes_end_to_end() {
        let mut topo = contended(2);
        topo.initial_vms_per_shard = vec![3, 0];
        let mut sim = FedScenario::new(topo).seed(5).build();
        let vm = sim.initial_vms(0)[0];
        let id = sim.schedule_migration(SimTime::from_secs(1), 0, 1, vm);
        sim.run_until(SimTime::from_hours(1));
        assert_eq!(sim.migrations_in_flight(), 0);
        let reports = sim.migration_reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!((r.id, r.src, r.dst, r.vm), (id, 0, 1, vm));
        assert!(r.success, "{r:?}");
        assert!(r.completed > r.started);
        // The evacuated VM is gone from the source inventory.
        assert!(sim.plane(0).inventory().vm(vm).is_none());
        sim.check_store_invariants().unwrap();
    }

    #[test]
    fn single_shard_federation_needs_no_coordination() {
        let mut sim = FedScenario::new(contended(1)).seed(3).build();
        burst(&mut sim, 0, 6);
        sim.run_until(SimTime::from_hours(1));
        let stats = sim.store_stats();
        assert_eq!(stats.commits, 0);
        assert_eq!(stats.syncs, 0);
        assert_eq!(stats.conflicts, 0);
        assert!(sim.director(0).stats().vms_provisioned() > 0);
    }
}
