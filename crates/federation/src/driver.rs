//! The [`FedSim`] driver: N control-plane shards, each on its own
//! discrete-event kernel, coordinating through the shared
//! [`PlacementStore`](crate::store::PlacementStore).
//!
//! Each shard is a full management stack — plane, director, trace — and
//! handles its own events exactly as the single-plane driver does, on a
//! **private** event queue. The canonical event order of a federated run
//! is ascending `(virtual time, shard index, per-shard sequence)`; a
//! coordinator pseudo-shard (index = shard count) carries the cross-shard
//! migration machinery and sorts after every real shard at equal time.
//! Because the order is defined per shard rather than by a global
//! arrival sequence, it is *independent of how the shards are executed*:
//! the sequential scan loop (the oracle) and the conservative parallel
//! runner (the private `runner` module) produce byte-identical results.
//!
//! The federation layer adds three things on top of the per-shard
//! stacks:
//!
//! 1. **Sync ticks** ([`ShardEvent::StoreSync`]): every staleness
//!    window, each shard folds foreign commits on the shared pool into
//!    its local inventory mirror (and pays CPU/DB time for the refresh).
//! 2. **Ledger settlement**: when a gated placement's task completes, its
//!    [`OpenCommit`] is settled — kept as a reservation on success,
//!    released back to the pool on failure or rollback. Destroying the VM
//!    later releases the reservation. Settlement only touches the store
//!    for placements on shared ids; home placements stay shard-private.
//! 3. **Cross-shard migration**: a two-phase evacuate → handoff → admit
//!    protocol driven by tagged raw operations (tags at or above
//!    [`MIG_TAG_BASE`] are reserved for the migration machinery). Runs
//!    with migrations scheduled execute sequentially: migration events
//!    hop between shards and would invalidate the lookahead the parallel
//!    runner relies on.

use std::sync::Arc;

use cpsim_cloud::{CloudDirector, CloudOut, CloudReport, CloudRequest};
use cpsim_des::{EventQueue, FastMap, Model, SimDuration, SimTime, Simulation};
use cpsim_inventory::{DatastoreId, HostId, OrgId, VappId, VmId};
use cpsim_mgmt::{CloneMode, ControlPlane, Emit, MgmtEvent, OpKind, Operation, TaskReport};
use cpsim_workload::TraceLog;

use crate::runner;
use crate::store::{OpenCommit, StoreStats};
use crate::turnstile::StoreCell;

/// Task tags at or above this value are reserved for migration
/// operations; the cloud director never sees their reports.
pub const MIG_TAG_BASE: u64 = 1 << 60;

/// Events on one shard's private queue.
#[derive(Debug)]
pub enum ShardEvent {
    /// A management-plane event.
    Mgmt(MgmtEvent),
    /// A vApp lease expired.
    Lease(VappId),
    /// An externally-scheduled cloud request.
    Request(CloudRequest),
    /// An externally-scheduled raw operation.
    Op(OpKind),
    /// The periodic placement-store refresh (self-rescheduling).
    StoreSync,
    /// Migration phase 1, injected by the coordinator: evacuate `vm`.
    MigrateEvacuate {
        /// Migration id.
        id: u64,
        /// The VM to destroy on this (source) shard.
        vm: VmId,
    },
    /// Migration phase 2, injected by the coordinator after the
    /// placement-store handoff: admit on this (destination) shard.
    MigrateAdmit(u64),
}

/// Events on the coordinator pseudo-shard's queue.
#[derive(Debug)]
enum CoordEvent {
    /// Phase 1 of a cross-shard migration: evacuate from the source.
    MigrateStart(u64),
    /// Phase 2: placement-store handoff, then admit on the destination.
    MigrateHandoff(u64),
}

/// Everything the scenario builder materializes for one shard.
pub(crate) struct ShardSetup {
    pub(crate) plane: ControlPlane,
    pub(crate) director: CloudDirector,
    pub(crate) org: OrgId,
    pub(crate) hosts: Vec<HostId>,
    pub(crate) datastores: Vec<DatastoreId>,
    pub(crate) templates: Vec<VmId>,
    pub(crate) initial_vms: Vec<VmId>,
    /// Local ids of the shared spillover pool, for the settlement filter.
    pub(crate) shared_hosts: Vec<HostId>,
    pub(crate) shared_ds: Vec<DatastoreId>,
}

/// One shard's full management stack: the [`Model`] driven by that
/// shard's private simulation kernel.
pub(crate) struct ShardCore {
    shard: usize,
    plane: ControlPlane,
    director: CloudDirector,
    org: OrgId,
    hosts: Vec<HostId>,
    datastores: Vec<DatastoreId>,
    templates: Vec<VmId>,
    initial_vms: Vec<VmId>,
    trace: TraceLog,
    task_reports_kept: Vec<TaskReport>,
    keep_task_reports: bool,
    cloud_reports: Vec<CloudReport>,
    /// Reused emission buffer (see `CloudModel::scratch` in cpsim-core).
    scratch: Vec<Emit>,
    /// Pooled routing stack reused across events (see `route_stack`).
    route_buf: Vec<CloudOut>,
    cell: Arc<StoreCell>,
    staleness: SimDuration,
    /// Local ids belonging to the shared pool: placements touching
    /// neither set never recorded an [`OpenCommit`], so settlement can
    /// skip the store (and the turnstile) entirely.
    shared_hosts: Vec<HostId>,
    shared_ds: Vec<DatastoreId>,
    /// Open ledger reservations held by completed placements, keyed by
    /// VM so a later destroy releases the shared capacity.
    // cpsim-lint: allow(no-unordered-iteration): keyed insert/remove only; never iterated
    reservations: FastMap<VmId, OpenCommit>,
    /// Completed migration-tagged task reports, drained by the
    /// coordinator after each sequential step (empty in threaded runs).
    pub(crate) mig_outbox: Vec<TaskReport>,
}

impl ShardCore {
    /// Settles the shared-pool ledger for a finished task.
    fn settle_ledger(&mut self, now: SimTime, r: &TaskReport) {
        match r.kind {
            "create-vm" | "clone-full" | "clone-linked" => {
                let Some((host, ds)) = r.placement else {
                    return;
                };
                if !self.shared_hosts.contains(&host) && !self.shared_ds.contains(&ds) {
                    // Home placement: the gate never recorded an open
                    // commit, so there is nothing to settle — and no
                    // reason to serialize through the turnstile.
                    return;
                }
                let shard = self.shard;
                let succeeded = r.error.is_none() && !r.aborted;
                let keep = self.cell.with(shard, now.as_micros(), |st| {
                    let oc = st.take_open(shard, host, ds)?;
                    match (succeeded, r.produced_vm) {
                        (true, Some(vm)) => Some((vm, oc)),
                        _ => {
                            st.release(shard, &oc);
                            None
                        }
                    }
                });
                if let Some((vm, oc)) = keep {
                    self.reservations.insert(vm, oc);
                }
            }
            "destroy-vm" => {
                let Some(vm) = r.target_vm else { return };
                if r.error.is_none() && !r.aborted {
                    if let Some(oc) = self.reservations.remove(&vm) {
                        let shard = self.shard;
                        self.cell
                            .with(shard, now.as_micros(), |st| st.release(shard, &oc));
                    }
                }
            }
            _ => {}
        }
    }

    /// Routes one emission: timers back onto this shard's queue, task
    /// reports to the ledger and then the director (or the migration
    /// outbox for tagged reports).
    fn consume_emit(
        &mut self,
        now: SimTime,
        e: Emit,
        queue: &mut EventQueue<ShardEvent>,
    ) -> Option<CloudOut> {
        match e {
            Emit::At(t, ev) => {
                queue.schedule(t, ShardEvent::Mgmt(ev));
                None
            }
            Emit::Done(_, r) | Emit::Failed(_, r) => {
                self.trace.push_task(&r);
                if self.keep_task_reports {
                    self.task_reports_kept.push(r.clone());
                }
                self.settle_ledger(now, &r);
                if r.tag >= MIG_TAG_BASE {
                    self.mig_outbox.push(r);
                    None
                } else {
                    Some(self.director.on_task_report(now, &r, &mut self.plane))
                }
            }
        }
    }

    fn route_stack(
        &mut self,
        now: SimTime,
        stack: &mut Vec<CloudOut>,
        queue: &mut EventQueue<ShardEvent>,
    ) {
        while let Some(o) = stack.pop() {
            self.cloud_reports.extend(o.reports);
            for (t, vapp) in o.leases {
                queue.schedule(t, ShardEvent::Lease(vapp));
            }
            for e in o.mgmt {
                if let Some(child) = self.consume_emit(now, e, queue) {
                    stack.push(child);
                }
            }
        }
    }

    fn route(&mut self, now: SimTime, out: CloudOut, queue: &mut EventQueue<ShardEvent>) {
        let mut stack = std::mem::take(&mut self.route_buf);
        stack.push(out);
        self.route_stack(now, &mut stack, queue);
        self.route_buf = stack;
    }

    /// Routes the plane emissions accumulated in the scratch buffer,
    /// leaving the (emptied) buffer in place for the next event.
    fn route_scratch(&mut self, now: SimTime, queue: &mut EventQueue<ShardEvent>) {
        let mut emits = std::mem::take(&mut self.scratch);
        let mut stack = std::mem::take(&mut self.route_buf);
        for e in emits.drain(..) {
            if let Some(child) = self.consume_emit(now, e, queue) {
                stack.push(child);
            }
        }
        self.scratch = emits;
        self.route_stack(now, &mut stack, queue);
        self.route_buf = stack;
    }

    fn sync_gate(&mut self, now: SimTime, queue: &mut EventQueue<ShardEvent>) {
        debug_assert!(self.scratch.is_empty());
        let mut emits = std::mem::take(&mut self.scratch);
        self.plane.sync_placement_gate(now, &mut emits);
        self.scratch = emits;
        self.route_scratch(now, queue);
    }

    fn submit_cloud(
        &mut self,
        now: SimTime,
        req: CloudRequest,
        queue: &mut EventQueue<ShardEvent>,
    ) {
        let (_, out) = self.director.submit(now, req, &mut self.plane);
        self.route(now, out, queue);
    }

    fn submit_op(&mut self, now: SimTime, op: Operation, queue: &mut EventQueue<ShardEvent>) {
        debug_assert!(self.scratch.is_empty());
        let mut emits = std::mem::take(&mut self.scratch);
        self.plane.submit(now, op, &mut emits);
        self.scratch = emits;
        self.route_scratch(now, queue);
    }
}

impl Model for ShardCore {
    type Event = ShardEvent;

    fn handle(&mut self, now: SimTime, event: ShardEvent, queue: &mut EventQueue<ShardEvent>) {
        match event {
            ShardEvent::Mgmt(ev) => {
                debug_assert!(self.scratch.is_empty());
                let mut emits = std::mem::take(&mut self.scratch);
                self.plane.handle(now, ev, &mut emits);
                self.scratch = emits;
                self.route_scratch(now, queue);
            }
            ShardEvent::Lease(vapp) => {
                let out = self.director.on_lease_expiry(now, vapp, &mut self.plane);
                self.route(now, out, queue);
            }
            ShardEvent::Request(req) => self.submit_cloud(now, req, queue),
            ShardEvent::Op(op) => self.submit_op(now, Operation::new(op), queue),
            ShardEvent::StoreSync => {
                self.sync_gate(now, queue);
                queue.schedule(now + self.staleness, ShardEvent::StoreSync);
            }
            ShardEvent::MigrateEvacuate { id, vm } => {
                let op = Operation::tagged(OpKind::DestroyVm { vm }, MIG_TAG_BASE + id);
                self.submit_op(now, op, queue);
            }
            ShardEvent::MigrateAdmit(id) => {
                // The destination refreshes its shared-pool view first
                // (it is about to place into it), then admits the VM as
                // a linked clone of its local template.
                self.sync_gate(now, queue);
                let source = self.templates[0];
                let op = Operation::tagged(
                    OpKind::CloneVm {
                        source,
                        mode: CloneMode::Linked,
                    },
                    MIG_TAG_BASE + id,
                );
                self.submit_op(now, op, queue);
            }
        }
    }
}

/// One in-flight cross-shard migration.
#[derive(Clone, Copy, Debug)]
struct Migration {
    src: usize,
    dst: usize,
    vm: VmId,
    started: SimTime,
}

/// The outcome of one cross-shard migration.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrationReport {
    /// Migration id as returned by `schedule_migration`.
    pub id: u64,
    /// Source shard.
    pub src: usize,
    /// Destination shard.
    pub dst: usize,
    /// The VM that was evacuated from the source shard.
    pub vm: VmId,
    /// When the evacuation started.
    pub started: SimTime,
    /// When the destination admit (or the failure) completed.
    pub completed: SimTime,
    /// Whether the VM was successfully re-admitted on the destination.
    pub success: bool,
}

/// The migration coordinator: a pseudo-shard (index = shard count) with
/// its own event queue, ordered after every real shard at equal time.
struct Coordinator {
    queue: EventQueue<CoordEvent>,
    handoff_delay: SimDuration,
    /// In-flight migrations by id. Accessed by key only (get / insert /
    /// remove / len); completion order is recorded in `reports`.
    // cpsim-lint: allow(no-unordered-iteration): keyed access only; never iterated
    migrations: FastMap<u64, Migration>,
    next_migration_id: u64,
    reports: Vec<MigrationReport>,
    /// Coordinator events processed (its queue has no kernel counting
    /// them).
    events: u64,
}

/// A runnable federated simulation.
///
/// Construct via [`FedScenario`](crate::FedScenario); drive with
/// [`run_until`](FedSim::run_until); inspect per shard through the
/// accessors. [`set_intra_jobs`](FedSim::set_intra_jobs) selects how many
/// worker threads simulate the shards concurrently — the results are
/// byte-identical at every setting.
pub struct FedSim {
    shard_sims: Vec<Simulation<ShardCore>>,
    coord: Coordinator,
    cell: Arc<StoreCell>,
    now: SimTime,
    intra_jobs: usize,
    /// Set once a migration is scheduled; forces the sequential runner
    /// for the rest of the run (migration events hop between shards).
    migrations_used: bool,
}

impl FedSim {
    /// Internal constructor used by [`FedScenario`](crate::FedScenario).
    pub(crate) fn assemble(
        setups: Vec<ShardSetup>,
        cell: Arc<StoreCell>,
        staleness: SimDuration,
        handoff_delay: SimDuration,
    ) -> Self {
        let shard_count = setups.len();
        let mut shard_sims = Vec::with_capacity(shard_count);
        for (s, setup) in setups.into_iter().enumerate() {
            let init = setup.plane.init_events();
            let core = ShardCore {
                shard: s,
                plane: setup.plane,
                director: setup.director,
                org: setup.org,
                hosts: setup.hosts,
                datastores: setup.datastores,
                templates: setup.templates,
                initial_vms: setup.initial_vms,
                trace: TraceLog::new(),
                task_reports_kept: Vec::new(),
                keep_task_reports: false,
                cloud_reports: Vec::new(),
                scratch: Vec::new(),
                route_buf: Vec::new(),
                cell: Arc::clone(&cell),
                staleness,
                shared_hosts: setup.shared_hosts,
                shared_ds: setup.shared_ds,
                reservations: FastMap::default(),
                mig_outbox: Vec::new(),
            };
            let mut sim = Simulation::new(core);
            for e in init {
                if let Emit::At(t, ev) = e {
                    sim.schedule(t, ShardEvent::Mgmt(ev));
                }
            }
            if shard_count > 1 {
                // Stagger the first sync of each shard across one window
                // so refreshes don't stampede the same instant.
                let frac = (s + 1) as f64 / shard_count as f64;
                let at = SimTime::ZERO + SimDuration::from_secs_f64(staleness.as_secs_f64() * frac);
                sim.schedule(at, ShardEvent::StoreSync);
            }
            shard_sims.push(sim);
        }
        FedSim {
            shard_sims,
            coord: Coordinator {
                queue: EventQueue::new(),
                handoff_delay,
                migrations: FastMap::default(),
                next_migration_id: 0,
                reports: Vec::new(),
                events: 0,
            },
            cell,
            now: SimTime::ZERO,
            intra_jobs: 1,
            migrations_used: false,
        }
    }

    /// Sets the number of worker threads used to simulate shards
    /// concurrently *within* this run: `1` (the default) selects the
    /// sequential oracle loop, `0` means one per available core. Any
    /// setting produces byte-identical results; runs with cross-shard
    /// migrations always execute sequentially.
    pub fn set_intra_jobs(&mut self, n: usize) {
        self.intra_jobs = n;
    }

    fn effective_intra_jobs(&self) -> usize {
        let n = if self.intra_jobs == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        } else {
            self.intra_jobs
        };
        n.min(self.shard_sims.len())
    }

    /// Runs until `horizon` inclusive (events strictly after it remain
    /// queued). Horizons compose like the kernel's:
    /// `run_until(a); run_until(b)` with `a <= b` ≡ `run_until(b)`.
    pub fn run_until(&mut self, horizon: SimTime) {
        let jobs = self.effective_intra_jobs();
        if jobs > 1 && !self.migrations_used {
            debug_assert!(self.coord.queue.is_empty());
            runner::run_threaded(&mut self.shard_sims, &self.cell, horizon, jobs);
        } else {
            self.run_sequential(horizon);
        }
        if horizon > self.now {
            self.now = horizon;
        }
    }

    /// The sequential oracle: one event at a time, globally ordered by
    /// `(time, shard index)` with the coordinator pseudo-shard last.
    fn run_sequential(&mut self, horizon: SimTime) {
        let coord_idx = self.shard_sims.len();
        loop {
            let mut best = runner::next_shard(&self.shard_sims, horizon);
            if let Some(t) = self.coord.queue.next_time() {
                if t <= horizon && best.is_none_or(|(bt, bs)| (t, coord_idx) < (bt, bs)) {
                    best = Some((t, coord_idx));
                }
            }
            let Some((t, s)) = best else { break };
            if s == coord_idx {
                self.step_coordinator(t, horizon);
            } else {
                self.shard_sims[s].step();
                self.drain_outbox(s);
            }
        }
        for sim in &mut self.shard_sims {
            // Advance the clock to the horizon and flush the per-shard
            // contribution to the process-wide event counter.
            sim.run_until(horizon);
        }
    }

    /// Processes the coordinator event at time `t`.
    fn step_coordinator(&mut self, t: SimTime, horizon: SimTime) {
        let Some((_, ev)) = self.coord.queue.pop_if_before(horizon) else {
            return;
        };
        self.coord.events += 1;
        match ev {
            CoordEvent::MigrateStart(id) => {
                let Some(m) = self.coord.migrations.get_mut(&id) else {
                    return;
                };
                m.started = t;
                let (src, vm) = (m.src, m.vm);
                self.shard_sims[src].schedule(t, ShardEvent::MigrateEvacuate { id, vm });
            }
            CoordEvent::MigrateHandoff(id) => {
                let Some(m) = self.coord.migrations.get(&id).copied() else {
                    return;
                };
                self.cell.locked(|st| st.on_handoff());
                self.shard_sims[m.dst].schedule(t, ShardEvent::MigrateAdmit(id));
            }
        }
    }

    /// Drains shard `s`'s migration-tagged task reports into the
    /// coordinator's state machine.
    fn drain_outbox(&mut self, s: usize) {
        if self.shard_sims[s].model().mig_outbox.is_empty() {
            return;
        }
        let now = self.shard_sims[s].now();
        let reports = std::mem::take(&mut self.shard_sims[s].model_mut().mig_outbox);
        for r in reports {
            self.on_migration_report(now, s, &r);
        }
    }

    /// Advances the migration state machine on a tagged report.
    fn on_migration_report(&mut self, now: SimTime, s: usize, r: &TaskReport) {
        let id = r.tag - MIG_TAG_BASE;
        let Some(m) = self.coord.migrations.get(&id).copied() else {
            return;
        };
        let succeeded = r.error.is_none() && !r.aborted;
        if s == m.src && r.kind == "destroy-vm" {
            if succeeded {
                self.coord.queue.schedule(
                    now + self.coord.handoff_delay,
                    CoordEvent::MigrateHandoff(id),
                );
            } else {
                self.coord.migrations.remove(&id);
                self.coord.reports.push(MigrationReport {
                    id,
                    src: m.src,
                    dst: m.dst,
                    vm: m.vm,
                    started: m.started,
                    completed: now,
                    success: false,
                });
            }
        } else if s == m.dst {
            self.coord.migrations.remove(&id);
            self.coord.reports.push(MigrationReport {
                id,
                src: m.src,
                dst: m.dst,
                vm: m.vm,
                started: m.started,
                completed: now,
                success: succeeded,
            });
        }
    }

    /// Runs for `span` past the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let horizon = self.now() + span;
        self.run_until(horizon);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far, across every shard and the coordinator.
    pub fn events_processed(&self) -> u64 {
        let shard_events: u64 = self
            .shard_sims
            .iter()
            .map(Simulation::events_processed)
            .sum();
        shard_events + self.coord.events
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_sims.len()
    }

    /// Keep full task reports in memory on every shard (off by default).
    pub fn keep_task_reports(&mut self, on: bool) {
        for sim in &mut self.shard_sims {
            sim.model_mut().keep_task_reports = on;
        }
    }

    /// Shard `s`'s control plane.
    pub fn plane(&self, s: usize) -> &ControlPlane {
        &self.shard_sims[s].model().plane
    }

    /// Shard `s`'s cloud director.
    pub fn director(&self, s: usize) -> &CloudDirector {
        &self.shard_sims[s].model().director
    }

    /// Shard `s`'s default org.
    pub fn org(&self, s: usize) -> OrgId {
        self.shard_sims[s].model().org
    }

    /// Shard `s`'s hosts, in creation order (home first, then shared).
    pub fn hosts(&self, s: usize) -> &[HostId] {
        &self.shard_sims[s].model().hosts
    }

    /// Shard `s`'s datastores, in creation order (home first, then shared).
    pub fn datastores(&self, s: usize) -> &[DatastoreId] {
        &self.shard_sims[s].model().datastores
    }

    /// Shard `s`'s catalog templates.
    pub fn templates(&self, s: usize) -> &[VmId] {
        &self.shard_sims[s].model().templates
    }

    /// Shard `s`'s pre-installed VMs, in creation order.
    pub fn initial_vms(&self, s: usize) -> &[VmId] {
        &self.shard_sims[s].model().initial_vms
    }

    /// Shard `s`'s operation trace.
    pub fn trace(&self, s: usize) -> &TraceLog {
        &self.shard_sims[s].model().trace
    }

    /// Shard `s`'s completed cloud requests.
    pub fn cloud_reports(&self, s: usize) -> &[CloudReport] {
        &self.shard_sims[s].model().cloud_reports
    }

    /// Shard `s`'s full task reports (only if `keep_task_reports` is on).
    pub fn task_reports(&self, s: usize) -> &[TaskReport] {
        &self.shard_sims[s].model().task_reports_kept
    }

    /// A load observation for routing: tasks in flight plus pending
    /// admissions on shard `s`.
    pub fn shard_load(&self, s: usize) -> usize {
        let plane = &self.shard_sims[s].model().plane;
        plane.tasks_in_flight() + plane.admission().pending_len()
    }

    /// Load observations for every shard, in shard order.
    pub fn shard_loads(&self) -> Vec<usize> {
        (0..self.shard_count())
            .map(|s| self.shard_load(s))
            .collect()
    }

    /// Aggregated placement-store statistics.
    pub fn store_stats(&self) -> StoreStats {
        self.cell.locked(|st| st.stats())
    }

    /// Checks the shared ledger's conservation invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_store_invariants(&self) -> Result<(), String> {
        self.cell.locked(|st| st.check_invariants())
    }

    /// Completed cross-shard migrations, in completion order.
    pub fn migration_reports(&self) -> &[MigrationReport] {
        &self.coord.reports
    }

    /// Cross-shard migrations still in flight.
    pub fn migrations_in_flight(&self) -> usize {
        self.coord.migrations.len()
    }

    /// Schedules a cloud request on shard `s` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `s` is out of range.
    pub fn schedule_request(&mut self, at: SimTime, s: usize, req: CloudRequest) {
        assert!(s < self.shard_count(), "shard {s} out of range");
        self.shard_sims[s].schedule(at, ShardEvent::Request(req));
    }

    /// Schedules a raw management operation on shard `s` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `s` is out of range.
    pub fn schedule_op(&mut self, at: SimTime, s: usize, op: OpKind) {
        assert!(s < self.shard_count(), "shard {s} out of range");
        self.shard_sims[s].schedule(at, ShardEvent::Op(op));
    }

    /// Schedules a cross-shard migration of `vm` from shard `src` to
    /// shard `dst` at `at`, returning its migration id.
    ///
    /// The protocol is evacuate (destroy on `src`) → placement-store
    /// handoff (after the configured delay) → admit (linked clone of
    /// `dst`'s first template). The outcome lands in
    /// [`migration_reports`](FedSim::migration_reports). Scheduling a
    /// migration pins the rest of the run to the sequential executor.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or a shard index is out of range.
    pub fn schedule_migration(&mut self, at: SimTime, src: usize, dst: usize, vm: VmId) -> u64 {
        let n = self.shard_count();
        assert!(src < n && dst < n, "shard out of range");
        assert!(at >= self.now, "migration scheduled in the past");
        self.migrations_used = true;
        let id = self.coord.next_migration_id;
        self.coord.next_migration_id += 1;
        self.coord.migrations.insert(
            id,
            Migration {
                src,
                dst,
                vm,
                started: at,
            },
        );
        self.coord.queue.schedule(at, CoordEvent::MigrateStart(id));
        id
    }
}

impl std::fmt::Debug for FedSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FedSim")
            .field("now", &self.now())
            .field("shards", &self.shard_count())
            .field("events", &self.events_processed())
            .field("store", &self.store_stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FedScenario, FedTopology};

    /// A small contended federation: home datastores are tight (44 GiB
    /// free after the template base) while the shared pool is roomy, so
    /// the most-free-first placer steers clones onto shared capacity.
    fn contended(shards: usize) -> FedTopology {
        FedTopology {
            shards,
            home_hosts_per_shard: 2,
            home_ds_per_shard: 1,
            home_ds_capacity_gb: 64.0,
            shared_hosts: 2,
            shared_ds: 1,
            shared_ds_capacity_gb: 500.0,
            host_cpu_mhz: 48_000,
            host_mem_mb: 524_288,
            ds_bandwidth_mbps: 200.0,
            templates: vec![("fed-template".into(), 2, 2_048, 20.0)],
            initial_vms_per_shard: Vec::new(),
            initial_vm_disk_gb: 4.0,
        }
    }

    fn burst(sim: &mut FedSim, s: usize, n: u64) {
        let org = sim.org(s);
        let template = sim.templates(s)[0];
        for i in 0..n {
            sim.schedule_request(
                SimTime::from_micros(1 + i),
                s,
                CloudRequest::InstantiateVapp {
                    org,
                    template,
                    count: 1,
                    mode: None,
                    lease: None,
                },
            );
        }
    }

    #[test]
    fn two_shards_share_the_pool_without_double_booking() {
        let mut sim = FedScenario::new(contended(2)).seed(42).build();
        burst(&mut sim, 0, 8);
        burst(&mut sim, 1, 8);
        sim.run_until(SimTime::from_hours(2));
        let stats = sim.store_stats();
        assert!(stats.commits > 0, "no gated placements: {stats:?}");
        assert!(stats.syncs > 0, "sync ticks never fired: {stats:?}");
        sim.check_store_invariants().unwrap();
        for s in 0..2 {
            assert!(sim.director(s).stats().vms_provisioned() > 0, "shard {s}");
            assert_eq!(sim.plane(s).tasks_in_flight(), 0, "shard {s} drained");
        }
    }

    #[test]
    fn federation_is_deterministic() {
        let run = |seed: u64| {
            let mut sim = FedScenario::new(contended(2)).seed(seed).build();
            burst(&mut sim, 0, 6);
            burst(&mut sim, 1, 6);
            sim.run_until(SimTime::from_hours(1));
            (
                sim.events_processed(),
                sim.trace(0).len(),
                sim.trace(1).len(),
                sim.store_stats(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// The parallel runner is an implementation detail: any intra-jobs
    /// setting replays the sequential oracle op-for-op.
    #[test]
    fn intra_jobs_do_not_change_results() {
        let run = |intra_jobs: usize| {
            let mut sim = FedScenario::new(contended(3)).seed(11).build();
            sim.set_intra_jobs(intra_jobs);
            sim.keep_task_reports(true);
            for s in 0..3 {
                burst(&mut sim, s, 8);
            }
            // Multiple slices: the turnstile is re-armed per run_until.
            for h in 1..=4 {
                sim.run_until(SimTime::from_secs(1_800 * h));
            }
            sim.check_store_invariants().unwrap();
            let per_shard: Vec<_> = (0..3)
                .map(|s| {
                    let st = sim.plane(s).stats();
                    (
                        sim.trace(s).records().to_vec(),
                        sim.task_reports(s).to_vec(),
                        sim.cloud_reports(s).to_vec(),
                        (st.submitted(), st.completed(), st.placement_conflicts()),
                    )
                })
                .collect();
            (per_shard, sim.store_stats(), sim.events_processed())
        };
        let oracle = run(1);
        assert_eq!(oracle, run(2));
        assert_eq!(oracle, run(3));
        assert_eq!(oracle, run(0));
    }

    #[test]
    fn conflicts_resolve_to_one_winner_and_retries_complete() {
        // Nearly-full shared pool: 2 shards racing for the last slots.
        let mut topo = contended(2);
        // 500 cap, 2×20 template bases leave 460 free; shrink so only a
        // handful of 20 GiB (create) / delta-sized clones fit and the
        // placer still prefers shared over the 44-free home datastore.
        topo.shared_ds_capacity_gb = 100.0;
        let mut sim = FedScenario::new(topo)
            .seed(13)
            .staleness(SimDuration::from_secs(30))
            .build();
        burst(&mut sim, 0, 12);
        burst(&mut sim, 1, 12);
        sim.run_until(SimTime::from_hours(3));
        sim.check_store_invariants().unwrap();
        let stats = sim.store_stats();
        let conflicts: u64 = (0..2)
            .map(|s| sim.plane(s).stats().placement_conflicts())
            .sum();
        assert_eq!(stats.conflicts, conflicts);
        // Both shards drain fully even when they lose races.
        for s in 0..2 {
            assert_eq!(sim.plane(s).tasks_in_flight(), 0, "shard {s} drained");
        }
    }

    #[test]
    fn cross_shard_migration_completes_end_to_end() {
        let mut topo = contended(2);
        topo.initial_vms_per_shard = vec![3, 0];
        let mut sim = FedScenario::new(topo).seed(5).build();
        let vm = sim.initial_vms(0)[0];
        let id = sim.schedule_migration(SimTime::from_secs(1), 0, 1, vm);
        sim.run_until(SimTime::from_hours(1));
        assert_eq!(sim.migrations_in_flight(), 0);
        let reports = sim.migration_reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!((r.id, r.src, r.dst, r.vm), (id, 0, 1, vm));
        assert!(r.success, "{r:?}");
        assert!(r.completed > r.started);
        // The evacuated VM is gone from the source inventory.
        assert!(sim.plane(0).inventory().vm(vm).is_none());
        sim.check_store_invariants().unwrap();
    }

    /// Scheduling a migration pins the run to the sequential executor
    /// even when intra-jobs asks for threads, and still completes.
    #[test]
    fn migrations_force_the_sequential_path() {
        let mut topo = contended(2);
        topo.initial_vms_per_shard = vec![2, 0];
        let mut sim = FedScenario::new(topo).seed(5).build();
        sim.set_intra_jobs(2);
        let vm = sim.initial_vms(0)[0];
        sim.schedule_migration(SimTime::from_secs(1), 0, 1, vm);
        sim.run_until(SimTime::from_hours(1));
        assert_eq!(sim.migrations_in_flight(), 0);
        assert_eq!(sim.migration_reports().len(), 1);
        assert!(sim.migration_reports()[0].success);
    }

    #[test]
    fn single_shard_federation_needs_no_coordination() {
        let mut sim = FedScenario::new(contended(1)).seed(3).build();
        burst(&mut sim, 0, 6);
        sim.run_until(SimTime::from_hours(1));
        let stats = sim.store_stats();
        assert_eq!(stats.commits, 0);
        assert_eq!(stats.syncs, 0);
        assert_eq!(stats.conflicts, 0);
        assert!(sim.director(0).stats().vms_provisioned() > 0);
    }
}
