//! The shared [`PlacementStore`]: an authoritative commitment ledger for
//! the federation's spillover pool.
//!
//! Every shard owns its home hosts and datastores outright — no ledger,
//! no races. The shared pool is different: each shard registers the same
//! physical spillover entities in its own inventory, and the ledger is
//! the single source of truth for how much of each one is committed
//! across the whole federation.
//!
//! Bookkeeping model, per shared datastore:
//!
//! - `committed_gb` — authoritative total commitment, updated
//!   synchronously at every [`try_commit`](PlacementStore::try_commit) /
//!   [`release`](PlacementStore::release);
//! - `contributed_gb[s]` — how much of that total shard `s` committed.
//!   A shard's own contributions are materialized in its own inventory
//!   by the storage layer, so only the *foreign* share
//!   (`committed - contributed[s]`) must be mirrored in;
//! - `mirrored_gb[s]` — how much foreign usage shard `s` has folded into
//!   its inventory so far. The mirror is refreshed on the staleness
//!   window (and eagerly for a datastore that just conflicted), so
//!   between refreshes a shard's local view under- or over-counts the
//!   others by whatever they committed or released in the window.
//!
//! The conservation invariant `committed == Σ contributed` plus the
//! capacity bound `0 ≤ committed ≤ cap` are what
//! [`check_invariants`](PlacementStore::check_invariants) enforces: a
//! double-booked commit or a leaked release shows up as a violation.

use std::collections::{BTreeMap, VecDeque};

use cpsim_inventory::{DatastoreId, HostId};

/// One accepted reservation on the shared pool, as recorded at commit
/// time. The federation driver pops these when the owning task finishes
/// and either binds them to the produced VM (success) or releases them
/// (failure/rollback).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpenCommit {
    /// Shared-host index the memory was committed on, if the placement's
    /// host is in the shared pool.
    pub host: Option<usize>,
    /// Shared-datastore index the disk was committed on, if the
    /// placement's datastore is in the shared pool.
    pub ds: Option<usize>,
    /// Committed memory, MB.
    pub mem_mb: u64,
    /// Committed disk, GiB.
    pub disk_gb: f64,
}

/// Ledger counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Accepted shared-pool commits.
    pub commits: u64,
    /// Rejected commits (stale-view conflicts).
    pub conflicts: u64,
    /// Mirror refreshes (staleness-window ticks plus eager
    /// post-conflict refreshes).
    pub syncs: u64,
    /// Released reservations.
    pub releases: u64,
    /// Cross-shard migration handoffs.
    pub handoffs: u64,
}

struct SharedDs {
    cap_gb: f64,
    committed_gb: f64,
    contributed_gb: Vec<f64>,
    mirrored_gb: Vec<f64>,
}

struct SharedHost {
    cap_mem_mb: u64,
    committed_mem_mb: u64,
    contributed_mem_mb: Vec<u64>,
}

/// The authoritative shared-pool commitment ledger.
pub struct PlacementStore {
    shards: usize,
    ds: Vec<SharedDs>,
    hosts: Vec<SharedHost>,
    /// Accepted-but-unsettled reservations, keyed by the committing
    /// shard and the *local* entity ids its task report will carry.
    /// A FIFO per key: concurrent same-placement commits settle in
    /// commit order, which conserves totals exactly.
    open: BTreeMap<(usize, HostId, DatastoreId), VecDeque<OpenCommit>>,
    stats: StoreStats,
}

impl PlacementStore {
    /// Creates an empty ledger for `shards` control planes.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a federation needs at least one shard");
        PlacementStore {
            shards,
            ds: Vec::new(),
            hosts: Vec::new(),
            open: BTreeMap::new(),
            stats: StoreStats::default(),
        }
    }

    /// Number of shards this ledger serves.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Registers a shared datastore of `cap_gb`; returns its index.
    pub fn add_shared_ds(&mut self, cap_gb: f64) -> usize {
        self.ds.push(SharedDs {
            cap_gb,
            committed_gb: 0.0,
            contributed_gb: vec![0.0; self.shards],
            mirrored_gb: vec![0.0; self.shards],
        });
        self.ds.len() - 1
    }

    /// Registers a shared host with `cap_mem_mb` of memory; returns its
    /// index.
    pub fn add_shared_host(&mut self, cap_mem_mb: u64) -> usize {
        self.hosts.push(SharedHost {
            cap_mem_mb,
            committed_mem_mb: 0,
            contributed_mem_mb: vec![0; self.shards],
        });
        self.hosts.len() - 1
    }

    /// Number of shared datastores.
    pub fn shared_ds_len(&self) -> usize {
        self.ds.len()
    }

    /// Seeds setup-time usage (template base disks a shard installed on
    /// the shared datastore) into the ledger as that shard's
    /// contribution.
    ///
    /// # Panics
    ///
    /// Panics if the seeded usage exceeds the declared capacity.
    pub fn seed_ds(&mut self, idx: usize, shard: usize, gb: f64) {
        let d = &mut self.ds[idx];
        d.committed_gb += gb;
        d.contributed_gb[shard] += gb;
        assert!(
            d.committed_gb <= d.cap_gb + 1e-9,
            "shared datastore {idx} over-seeded: {} > {}",
            d.committed_gb,
            d.cap_gb
        );
    }

    /// Authoritative committed space on shared datastore `idx`, GiB.
    pub fn committed_gb(&self, idx: usize) -> f64 {
        self.ds[idx].committed_gb
    }

    /// Authoritative free space on shared datastore `idx`, GiB.
    pub fn free_gb(&self, idx: usize) -> f64 {
        self.ds[idx].cap_gb - self.ds[idx].committed_gb
    }

    /// Attempts to commit a reservation against the authoritative view:
    /// `disk_gb` on shared datastore `ds` (if any) and `mem_mb` on
    /// shared host `host` (if any). Both succeed or neither does.
    ///
    /// # Errors
    ///
    /// Returns the conflict reason when the authoritative free capacity
    /// no longer covers the reservation the shard's stale view promised.
    pub fn try_commit(
        &mut self,
        shard: usize,
        host: Option<usize>,
        ds: Option<usize>,
        mem_mb: u64,
        disk_gb: f64,
    ) -> Result<(), String> {
        if let Some(di) = ds {
            let d = &self.ds[di];
            if d.committed_gb + disk_gb > d.cap_gb + 1e-9 {
                self.stats.conflicts += 1;
                return Err(format!(
                    "placement conflict: shared datastore {di} has {:.1} GiB free, need {disk_gb:.1}",
                    d.cap_gb - d.committed_gb
                ));
            }
        }
        if let Some(hi) = host {
            let h = &self.hosts[hi];
            if h.committed_mem_mb + mem_mb > h.cap_mem_mb {
                self.stats.conflicts += 1;
                return Err(format!(
                    "placement conflict: shared host {hi} has {} MB free, need {mem_mb}",
                    h.cap_mem_mb - h.committed_mem_mb
                ));
            }
        }
        if let Some(di) = ds {
            let d = &mut self.ds[di];
            d.committed_gb += disk_gb;
            d.contributed_gb[shard] += disk_gb;
        }
        if let Some(hi) = host {
            let h = &mut self.hosts[hi];
            h.committed_mem_mb += mem_mb;
            h.contributed_mem_mb[shard] += mem_mb;
        }
        self.stats.commits += 1;
        Ok(())
    }

    /// Records an accepted reservation under the local ids the owning
    /// shard's task report will carry.
    pub fn record_open(
        &mut self,
        shard: usize,
        host_id: HostId,
        ds_id: DatastoreId,
        commit: OpenCommit,
    ) {
        self.open
            .entry((shard, host_id, ds_id))
            .or_default()
            .push_back(commit);
    }

    /// Pops the oldest unsettled reservation for `(shard, host, ds)`,
    /// if the placement touched the shared pool.
    pub fn take_open(
        &mut self,
        shard: usize,
        host_id: HostId,
        ds_id: DatastoreId,
    ) -> Option<OpenCommit> {
        let key = (shard, host_id, ds_id);
        let q = self.open.get_mut(&key)?;
        let oc = q.pop_front();
        if q.is_empty() {
            self.open.remove(&key);
        }
        oc
    }

    /// Releases a reservation (VM destroyed, or its provisioning task
    /// failed and rolled back).
    pub fn release(&mut self, shard: usize, commit: &OpenCommit) {
        if let Some(di) = commit.ds {
            let d = &mut self.ds[di];
            d.committed_gb = (d.committed_gb - commit.disk_gb).max(0.0);
            d.contributed_gb[shard] = (d.contributed_gb[shard] - commit.disk_gb).max(0.0);
        }
        if let Some(hi) = commit.host {
            let h = &mut self.hosts[hi];
            h.committed_mem_mb = h.committed_mem_mb.saturating_sub(commit.mem_mb);
            h.contributed_mem_mb[shard] = h.contributed_mem_mb[shard].saturating_sub(commit.mem_mb);
        }
        self.stats.releases += 1;
    }

    /// Foreign commitment on shared datastore `idx` from shard `shard`'s
    /// point of view: what everyone else committed.
    pub fn foreign_gb(&self, shard: usize, idx: usize) -> f64 {
        let d = &self.ds[idx];
        d.committed_gb - d.contributed_gb[shard]
    }

    /// Advances shard `shard`'s mirror of shared datastore `idx` to the
    /// current foreign commitment and returns the delta the caller must
    /// fold into the shard's inventory (may be negative after releases).
    pub fn mirror_delta(&mut self, shard: usize, idx: usize) -> f64 {
        let foreign = self.foreign_gb(shard, idx);
        let d = &mut self.ds[idx];
        let delta = foreign - d.mirrored_gb[shard];
        d.mirrored_gb[shard] = foreign;
        delta
    }

    /// Notes one staleness-window mirror refresh.
    pub fn on_sync(&mut self) {
        self.stats.syncs += 1;
    }

    /// Notes one cross-shard migration handoff.
    pub fn on_handoff(&mut self) {
        self.stats.handoffs += 1;
    }

    /// Ledger counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Unsettled reservations currently recorded.
    pub fn open_len(&self) -> usize {
        self.open.values().map(VecDeque::len).sum()
    }

    /// Verifies ledger conservation: every committed unit is attributed
    /// to exactly one shard, commitments never exceed capacity or go
    /// negative, and mirrors never exceed what was ever committed.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, d) in self.ds.iter().enumerate() {
            let sum: f64 = d.contributed_gb.iter().sum();
            if (sum - d.committed_gb).abs() > 1e-6 {
                return Err(format!(
                    "shared ds {i}: committed {:.6} != sum of contributions {:.6}",
                    d.committed_gb, sum
                ));
            }
            if d.committed_gb < -1e-9 || d.committed_gb > d.cap_gb + 1e-6 {
                return Err(format!(
                    "shared ds {i}: committed {:.6} outside [0, {:.1}]",
                    d.committed_gb, d.cap_gb
                ));
            }
            if d.contributed_gb.iter().any(|&c| c < -1e-9) {
                return Err(format!("shared ds {i}: negative contribution"));
            }
            if d.mirrored_gb
                .iter()
                .any(|&m| m < -1e-9 || m > d.cap_gb + 1e-6)
            {
                return Err(format!("shared ds {i}: mirror outside [0, cap]"));
            }
        }
        for (i, h) in self.hosts.iter().enumerate() {
            let sum: u64 = h.contributed_mem_mb.iter().sum();
            if sum != h.committed_mem_mb {
                return Err(format!(
                    "shared host {i}: committed {} != sum of contributions {sum}",
                    h.committed_mem_mb
                ));
            }
            if h.committed_mem_mb > h.cap_mem_mb {
                return Err(format!("shared host {i}: memory over-committed"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsim_inventory::EntityId;

    fn ids() -> (HostId, DatastoreId) {
        (HostId::from_parts(0, 1), DatastoreId::from_parts(0, 1))
    }

    #[test]
    fn two_shards_race_one_winner() {
        let mut st = PlacementStore::new(2);
        let di = st.add_shared_ds(100.0);
        st.seed_ds(di, 0, 49.0);
        st.seed_ds(di, 1, 49.0);
        // 2 GiB free; both shards' stale views still show room for 2.
        assert!(st.try_commit(0, None, Some(di), 2_048, 2.0).is_ok());
        let err = st.try_commit(1, None, Some(di), 2_048, 2.0).unwrap_err();
        assert!(err.contains("conflict"), "{err}");
        assert_eq!(st.stats().commits, 1);
        assert_eq!(st.stats().conflicts, 1);
        // No double booking: committed stays within capacity.
        assert!(st.committed_gb(di) <= 100.0);
        st.check_invariants().unwrap();
        // The loser's refreshed mirror now sees the winner's commit.
        assert!((st.foreign_gb(1, di) - 51.0).abs() < 1e-9);
    }

    #[test]
    fn release_restores_capacity_without_leaks() {
        let mut st = PlacementStore::new(2);
        let di = st.add_shared_ds(10.0);
        let hi = st.add_shared_host(4_096);
        st.try_commit(0, Some(hi), Some(di), 1_024, 10.0).unwrap();
        assert!(st.try_commit(1, None, Some(di), 0, 1.0).is_err());
        let oc = OpenCommit {
            host: Some(hi),
            ds: Some(di),
            mem_mb: 1_024,
            disk_gb: 10.0,
        };
        st.release(0, &oc);
        st.check_invariants().unwrap();
        assert!((st.free_gb(di) - 10.0).abs() < 1e-9);
        assert!(st.try_commit(1, None, Some(di), 0, 1.0).is_ok());
        st.check_invariants().unwrap();
    }

    #[test]
    fn mirror_delta_tracks_foreign_commits_only() {
        let mut st = PlacementStore::new(2);
        let di = st.add_shared_ds(100.0);
        st.try_commit(0, None, Some(di), 0, 5.0).unwrap();
        st.try_commit(1, None, Some(di), 0, 3.0).unwrap();
        // Shard 0 mirrors only shard 1's 3 GiB.
        assert!((st.mirror_delta(0, di) - 3.0).abs() < 1e-9);
        // Nothing new since: delta is zero.
        assert_eq!(st.mirror_delta(0, di), 0.0);
        // After shard 1 releases, the delta goes negative.
        let oc = OpenCommit {
            host: None,
            ds: Some(di),
            mem_mb: 0,
            disk_gb: 3.0,
        };
        st.release(1, &oc);
        assert!((st.mirror_delta(0, di) + 3.0).abs() < 1e-9);
        st.check_invariants().unwrap();
    }

    #[test]
    fn open_commit_fifo_settles_in_order() {
        let mut st = PlacementStore::new(1);
        let di = st.add_shared_ds(100.0);
        let (h, d) = ids();
        st.try_commit(0, None, Some(di), 0, 1.0).unwrap();
        st.record_open(
            0,
            h,
            d,
            OpenCommit {
                host: None,
                ds: Some(di),
                mem_mb: 0,
                disk_gb: 1.0,
            },
        );
        st.try_commit(0, None, Some(di), 0, 2.0).unwrap();
        st.record_open(
            0,
            h,
            d,
            OpenCommit {
                host: None,
                ds: Some(di),
                mem_mb: 0,
                disk_gb: 2.0,
            },
        );
        assert_eq!(st.open_len(), 2);
        assert_eq!(st.take_open(0, h, d).unwrap().disk_gb, 1.0);
        assert_eq!(st.take_open(0, h, d).unwrap().disk_gb, 2.0);
        assert!(st.take_open(0, h, d).is_none());
        assert_eq!(st.open_len(), 0);
    }
}
