//! # cpsim-federation
//!
//! Federated management for cpsim: N independent control-plane shards,
//! each owning a partition of the inventory, coordinating through a
//! deterministic shared **placement store** — the authoritative ledger of
//! commitments against the spillover pool of hosts and datastores that
//! every shard can place onto.
//!
//! The design models the scale-out story of the paper's management-plane
//! study: one control plane saturates on CPU/DB contention long before
//! the managed capacity runs out, so real deployments shard the
//! inventory across planes. Sharding is easy until two planes want the
//! same spare capacity; then the coordination mechanism — how fresh each
//! plane's view is, and what a plane does when it loses a race — sets
//! the achievable goodput.
//!
//! ## Architecture
//!
//! - [`PlacementStore`]: the shared ledger. Shards commit capacity
//!   claims synchronously (commit-time conflict detection) but *read*
//!   the ledger through a mirror refreshed only every staleness window,
//!   so placement decisions run against a stale view and can collide.
//! - [`StoreGate`]: the per-shard adapter installed into the control
//!   plane's placement path. Home placements bypass it; shared-pool
//!   placements go to the ledger and either commit or come back as a
//!   retryable conflict, handled by the plane's existing fault-recovery
//!   machinery (bounded backoff, then abort + rollback).
//! - [`FedScenario`] / [`FedSim`]: builder and driver. One event kernel
//!   per shard, periodic [`StoreSync`](ShardEvent::StoreSync) ticks that
//!   charge CPU/DB time for each refresh, and a two-phase cross-shard
//!   migration protocol (evacuate → handoff → admit) run by a
//!   coordinator pseudo-shard.
//! - [`StoreCell`] and the conservative parallel runner: the shards of
//!   one run can be simulated concurrently (`FedSim::set_intra_jobs`)
//!   with byte-identical results — shared-store accesses are serialized
//!   in virtual-time order through a blocking turnstile, exploiting the
//!   staleness window as conservative lookahead.
//! - [`Router`]: deterministic front-door policies (hash, least-loaded,
//!   locality) for spreading requests over shards.
//!
//! A federation with a single shard installs no gate, no sync ticks and
//! no fault machinery: it is op-for-op identical to the single-plane
//! model, which the integration tests assert trace-for-trace.

pub mod driver;
pub mod gate;
pub mod router;
mod runner;
pub mod scenario;
pub mod store;
pub mod turnstile;

pub use driver::{FedSim, MigrationReport, ShardEvent, MIG_TAG_BASE};
pub use gate::StoreGate;
pub use router::{Router, RouterPolicy};
pub use scenario::{FedScenario, FedTopology};
pub use store::{OpenCommit, PlacementStore, StoreStats};
pub use turnstile::StoreCell;
