//! The conservative parallel runner: simulates federation shards
//! concurrently *within* one run, preserving the sequential oracle's
//! event order exactly.
//!
//! ## Why this is safe
//!
//! A shard's event loop is entirely private except for accesses to the
//! shared [`PlacementStore`](crate::store::PlacementStore): home
//! placements never touch it, mirror refreshes read it only at
//! staleness-windowed sync ticks, and shared-pool commits/settlements
//! write it. In threaded mode there are no cross-shard event sends
//! (migrations pin the run to the sequential loop), so a shard's next
//! queued event time is a *monotone lower bound* on the virtual time of
//! its next possible store access — the classic conservative-lookahead
//! argument, with the federation's staleness window playing the role of
//! lookahead.
//!
//! Each worker owns a contiguous chunk of shards and always steps its
//! owned shard with the lexicographically smallest `(next event time,
//! shard index)`. Store accesses block on the
//! [`StoreCell`](crate::turnstile::StoreCell) turnstile until every
//! other shard's published bound passes the access point, which
//! reproduces the sequential `(time, shard)` access order byte for byte.
//! Progress is guaranteed: the globally smallest `(time, shard)` always
//! passes the turnstile, and it is necessarily the shard its own worker
//! is currently stepping (a worker steps its owned minimum, so its other
//! shards can never be what the stepped shard waits on).

use cpsim_des::{SimTime, Simulation};

use crate::driver::ShardCore;
use crate::turnstile::{StoreCell, LB_DONE};

/// The `(next event time, shard index)` minimum over `sims`, considering
/// only events at or before `horizon` (matching the kernel's inclusive
/// [`run_until`](Simulation::run_until) semantics). Shared by the
/// sequential oracle loop and each worker's owned-shard scan.
pub(crate) fn next_shard(
    sims: &[Simulation<ShardCore>],
    horizon: SimTime,
) -> Option<(SimTime, usize)> {
    let mut best: Option<(SimTime, usize)> = None;
    for (s, sim) in sims.iter().enumerate() {
        if let Some(t) = sim.next_event_time() {
            if t <= horizon && best.is_none_or(|b| (t, s) < b) {
                best = Some((t, s));
            }
        }
    }
    best
}

/// Publishes shard `s`'s turnstile lower bound: its next event time, or
/// [`LB_DONE`] once nothing at or before `horizon` remains (a shard with
/// no runnable events cannot touch the store again this slice).
fn publish_lb(cell: &StoreCell, s: usize, sim: &Simulation<ShardCore>, horizon: SimTime) {
    match sim.next_event_time() {
        Some(t) if t <= horizon => cell.publish(s, t.as_micros()),
        _ => cell.publish(s, LB_DONE),
    }
}

/// Runs every shard up to `horizon` on `jobs` worker threads, producing
/// exactly the sequential oracle's results.
pub(crate) fn run_threaded(
    sims: &mut [Simulation<ShardCore>],
    cell: &StoreCell,
    horizon: SimTime,
    jobs: usize,
) {
    // Seed every shard's bound before any worker can block on it: a
    // stale bound from a previous slice could claim a shard is further
    // along than it is, which would break the conservative ordering.
    for (s, sim) in sims.iter().enumerate() {
        publish_lb(cell, s, sim, horizon);
    }
    cell.set_active(true);
    let chunk = sims.len().div_ceil(jobs);
    std::thread::scope(|scope| {
        for (w, slice) in sims.chunks_mut(chunk).enumerate() {
            let base = w * chunk;
            scope.spawn(move || {
                while let Some((t, i)) = next_shard(slice, horizon) {
                    // The shard's bound already equals this event's time
                    // (published after its previous step), so other
                    // shards order themselves against it while we run.
                    #[cfg(feature = "sanitize")]
                    cell.sanitize_assert_bound_covers(base + i, t.as_micros());
                    #[cfg(not(feature = "sanitize"))]
                    let _ = t;
                    slice[i].step();
                    publish_lb(cell, base + i, &slice[i], horizon);
                }
                for (i, sim) in slice.iter_mut().enumerate() {
                    // Advance the clock to the horizon and flush the
                    // per-shard contribution to the process-wide event
                    // counter; no events remain at or before it.
                    sim.run_until(horizon);
                    cell.publish(base + i, LB_DONE);
                }
            });
        }
    });
    cell.set_active(false);
    debug_assert!(
        sims.iter().all(|s| s.model().mig_outbox.is_empty()),
        "migration reports in a threaded slice"
    );
}
