//! Request routing across federation shards.
//!
//! The router decides which shard receives each incoming cloud request.
//! It is deterministic: the same policy over the same request sequence and
//! load observations always produces the same shard sequence.

/// How the federation front door spreads requests over shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Deterministic hash of the request sequence number: uniform spread,
    /// oblivious to load.
    Hash,
    /// Send to the shard with the fewest tasks in flight plus pending
    /// admissions; ties break toward the lowest shard index.
    LeastLoaded,
    /// Pin each tenant to a shard (`org_key mod shards`): perfect
    /// affinity, worst skew tolerance.
    Locality,
}

/// A deterministic shard picker.
#[derive(Clone, Debug)]
pub struct Router {
    policy: RouterPolicy,
    seq: u64,
}

/// SplitMix64 finalizer: a cheap, well-mixed hash for sequence numbers.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Router {
    /// Creates a router with the given policy.
    pub fn new(policy: RouterPolicy) -> Self {
        Router { policy, seq: 0 }
    }

    /// The active policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// How many requests this router has placed.
    pub fn routed(&self) -> u64 {
        self.seq
    }

    /// Picks a shard for the next request.
    ///
    /// `loads` is one load observation per shard (e.g. tasks in flight +
    /// pending admissions); `org_key` is a stable tenant key used by the
    /// locality policy.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty.
    pub fn pick(&mut self, loads: &[usize], org_key: u64) -> usize {
        assert!(!loads.is_empty(), "router needs at least one shard");
        let n = loads.len();
        let shard = match self.policy {
            RouterPolicy::Hash => (mix(self.seq) % n as u64) as usize,
            RouterPolicy::LeastLoaded => {
                let mut best = 0;
                for (i, &load) in loads.iter().enumerate() {
                    if load < loads[best] {
                        best = i;
                    }
                }
                best
            }
            RouterPolicy::Locality => (org_key % n as u64) as usize,
        };
        self.seq += 1;
        shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_spreads_and_is_deterministic() {
        let loads = [0usize; 4];
        let mut a = Router::new(RouterPolicy::Hash);
        let mut b = Router::new(RouterPolicy::Hash);
        let picks_a: Vec<usize> = (0..64).map(|_| a.pick(&loads, 0)).collect();
        let picks_b: Vec<usize> = (0..64).map(|_| b.pick(&loads, 0)).collect();
        assert_eq!(picks_a, picks_b);
        for s in 0..4 {
            assert!(
                picks_a.iter().filter(|&&p| p == s).count() >= 8,
                "shard {s} starved: {picks_a:?}"
            );
        }
    }

    #[test]
    fn least_loaded_prefers_the_idle_shard_and_breaks_ties_low() {
        let mut r = Router::new(RouterPolicy::LeastLoaded);
        assert_eq!(r.pick(&[5, 2, 9], 0), 1);
        assert_eq!(r.pick(&[3, 3, 3], 0), 0);
        assert_eq!(r.pick(&[4, 1, 1], 0), 1);
        assert_eq!(r.routed(), 3);
    }

    #[test]
    fn locality_pins_by_tenant_key() {
        let loads = [0usize; 3];
        let mut r = Router::new(RouterPolicy::Locality);
        assert_eq!(r.pick(&loads, 7), 1);
        assert_eq!(r.pick(&loads, 7), 1);
        assert_eq!(r.pick(&loads, 9), 0);
    }
}
