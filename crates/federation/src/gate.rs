//! [`StoreGate`]: the per-shard [`PlacementGate`] implementation that
//! binds a [`ControlPlane`](cpsim_mgmt::ControlPlane) to the federation's
//! shared [`PlacementStore`](crate::store::PlacementStore).
//!
//! Home placements (neither the host nor the datastore is in the shared
//! pool) commit trivially — the shard owns them outright and never touch
//! the shared store at all, which is what gives the parallel runner its
//! lookahead. Shared-pool placements go through the ledger behind the
//! [`StoreCell`] turnstile: an accepted commit is recorded as an
//! [`OpenCommit`] for the shard to settle when the task finishes; a
//! rejected one leaves the shard's mirror untouched — only the periodic
//! staleness-windowed sync refreshes it, so a loser keeps conflicting
//! until a sync lands and the retried scan steers elsewhere.

use std::collections::BTreeMap;
use std::sync::Arc;

use cpsim_des::SimTime;
use cpsim_inventory::{DatastoreId, HostId, Inventory};
use cpsim_mgmt::{GateDecision, PlacementGate};

use crate::store::OpenCommit;
use crate::turnstile::StoreCell;

/// One shard's view onto the shared placement store.
pub struct StoreGate {
    shard: usize,
    cell: Arc<StoreCell>,
    /// Local datastore id → shared-store index, for the spillover pool.
    shared_ds: BTreeMap<DatastoreId, usize>,
    /// Local host id → shared-store index.
    shared_hosts: BTreeMap<HostId, usize>,
}

impl StoreGate {
    /// Creates the gate for `shard` with its local-id → store-index maps.
    pub fn new(
        shard: usize,
        cell: Arc<StoreCell>,
        shared_ds: BTreeMap<DatastoreId, usize>,
        shared_hosts: BTreeMap<HostId, usize>,
    ) -> Self {
        StoreGate {
            shard,
            cell,
            shared_ds,
            shared_hosts,
        }
    }
}

impl PlacementGate for StoreGate {
    fn commit(
        &mut self,
        now: SimTime,
        inv: &mut Inventory,
        host: HostId,
        ds: DatastoreId,
        mem_mb: u64,
        disk_gb: f64,
    ) -> GateDecision {
        let hi = self.shared_hosts.get(&host).copied();
        let di = self.shared_ds.get(&ds).copied();
        if hi.is_none() && di.is_none() {
            // Exclusively-owned home capacity: no coordination needed,
            // and — crucially for the parallel runner — no store touch.
            return GateDecision::Commit;
        }
        let shard = self.shard;
        self.cell.with(shard, now.as_micros(), |st| {
            match st.try_commit(shard, hi, di, mem_mb, disk_gb) {
                Ok(()) => {
                    st.record_open(
                        shard,
                        host,
                        ds,
                        OpenCommit {
                            host: hi,
                            ds: di,
                            mem_mb,
                            disk_gb,
                        },
                    );
                    GateDecision::Commit
                }
                Err(reason) => {
                    // Deliberately no mirror refresh here: the shard keeps
                    // its stale view until the next periodic sync, so the
                    // loser's backed-off retry only succeeds if a refresh
                    // lands inside the backoff window. Staleness is the one
                    // coordination knob, and F13 measures exactly its cost.
                    let _ = inv;
                    GateDecision::Conflict(reason)
                }
            }
        })
    }

    fn sync(&mut self, now: SimTime, inv: &mut Inventory) {
        let shard = self.shard;
        let shared_ds = &self.shared_ds;
        self.cell.with(shard, now.as_micros(), |st| {
            for (&ds, &di) in shared_ds {
                let delta = st.mirror_delta(shard, di);
                if delta != 0.0 {
                    let _ = inv.adjust_datastore_usage(ds, delta);
                }
            }
            st.on_sync();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PlacementStore;
    use cpsim_inventory::DatastoreSpec;

    /// Two shards, one stale view of a nearly-full shared datastore:
    /// exactly one commit wins, the loser's mirror is refreshed in the
    /// same call, and no capacity is double-booked.
    #[test]
    fn stale_views_race_to_one_winner() {
        let cell = Arc::new(StoreCell::new(PlacementStore::new(2), 2));
        let di = cell.locked(|st| st.add_shared_ds(100.0));

        let build = |shard: usize| {
            let mut inv = Inventory::new();
            let ds = inv.add_datastore(DatastoreSpec::new("shared-ds-00", 100.0, 200.0));
            // This shard's own setup-time usage: 48 GiB of seeded bases.
            inv.adjust_datastore_usage(ds, 48.0).unwrap();
            cell.locked(|st| st.seed_ds(di, shard, 48.0));
            let gate = StoreGate::new(
                shard,
                Arc::clone(&cell),
                BTreeMap::from([(ds, di)]),
                BTreeMap::new(),
            );
            (inv, ds, gate)
        };
        let (mut inv_a, ds_a, mut gate_a) = build(0);
        let (mut inv_b, ds_b, mut gate_b) = build(1);
        // Initial sync: each shard mirrors the other's 48 GiB of seeds,
        // so both local views agree with the truth (96 used, 4 free).
        gate_a.sync(SimTime::ZERO, &mut inv_a);
        gate_b.sync(SimTime::ZERO, &mut inv_b);
        let host = cpsim_inventory::EntityId::from_parts(0, 0);

        // Authoritative free: 100 - 96 = 4. Both shards want 3 GiB.
        let t = SimTime::from_secs(1);
        let a = gate_a.commit(t, &mut inv_a, host, ds_a, 1_024, 3.0);
        let b = gate_b.commit(t, &mut inv_b, host, ds_b, 1_024, 3.0);
        assert_eq!(a, GateDecision::Commit);
        let GateDecision::Conflict(reason) = b else {
            panic!("second commit must lose the race");
        };
        assert!(reason.contains("conflict"), "{reason}");

        // One winner, one open reservation, nothing double-booked.
        cell.locked(|st| {
            assert_eq!(st.stats().commits, 1);
            assert_eq!(st.stats().conflicts, 1);
            assert_eq!(st.open_len(), 1);
            assert!(st.committed_gb(di) <= 100.0);
            st.check_invariants().unwrap();
        });

        // The loser keeps its stale view until its next periodic sync —
        // staleness is the coordination knob, so a conflict alone must
        // not refresh the mirror.
        let used = inv_b.datastore(ds_b).unwrap().used_gb;
        assert!((used - 96.0).abs() < 1e-9, "loser view used={used}");
        // After the sync the loser sees the winner's 3 GiB too.
        gate_b.sync(SimTime::from_secs(2), &mut inv_b);
        let used = inv_b.datastore(ds_b).unwrap().used_gb;
        assert!((used - 99.0).abs() < 1e-9, "synced loser view used={used}");
        // The winner's own view is untouched (its commit is its own
        // contribution, materialized later by the storage layer).
        assert!((inv_a.datastore(ds_a).unwrap().used_gb - 96.0).abs() < 1e-9);
    }

    #[test]
    fn home_placements_bypass_the_ledger() {
        let cell = Arc::new(StoreCell::new(PlacementStore::new(2), 2));
        let mut inv = Inventory::new();
        let home = inv.add_datastore(DatastoreSpec::new("s0-ds-00", 50.0, 200.0));
        let host = cpsim_inventory::EntityId::from_parts(0, 0);
        let mut gate = StoreGate::new(0, Arc::clone(&cell), BTreeMap::new(), BTreeMap::new());
        assert_eq!(
            gate.commit(SimTime::ZERO, &mut inv, host, home, 512, 5.0),
            GateDecision::Commit
        );
        cell.locked(|st| {
            assert_eq!(st.stats().commits, 0);
            assert_eq!(st.open_len(), 0);
        });
    }
}
