//! Blocking time-ordered turnstile around the shared [`PlacementStore`].
//!
//! The conservative parallel runner (the private `runner` module) lets every shard
//! advance its private event loop freely because *home* placements never
//! touch the shared ledger and mirror refreshes only read it at
//! staleness-windowed sync ticks. The one thing that must be serialized
//! across shards is the set of shared-store accesses, and it must be
//! serialized in the exact order the sequential oracle would perform
//! them: ascending `(virtual time, shard index)`.
//!
//! [`StoreCell`] enforces that order with a *turnstile*: each worker
//! publishes a monotone lower bound on the virtual time of its shards'
//! next possible store access, and a shard wanting to touch the store at
//! `(t, s)` blocks on a condvar until every other shard's bound has
//! passed `(t, s)` lexicographically. Lower bounds are monotone because
//! the threaded runner never performs cross-shard event sends (runs with
//! migrations fall back to the sequential scan loop), so the
//! lexicographic minimum can always proceed and the protocol is
//! deadlock-free.
//!
//! When the turnstile is inactive (`set_active(false)`, the default) the
//! cell degrades to a plain mutex with zero waiting, which is what the
//! sequential scan loop and all setup/statistics paths use.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::store::PlacementStore;

/// Lower-bound value meaning "this shard is past the horizon / drained
/// and will not touch the store again this slice".
pub const LB_DONE: u64 = u64::MAX;

/// State for the optional `sanitize` feature: a shadow of the published
/// bounds plus the last committed access, used to re-verify the
/// turnstile's happens-before contract at the moment each access runs
/// (rather than at the moment the waiter decided it could run).
#[cfg(feature = "sanitize")]
#[derive(Debug, Default)]
struct SanitizeState {
    /// Last store access committed under an active turnstile, as
    /// `(virtual µs, shard)`. Accesses must be totally ordered
    /// ascending — the exact order the sequential oracle produces.
    last_access: Option<(u64, usize)>,
    /// Shadow of each shard's published bound; publishes must be
    /// monotone non-decreasing while the turnstile is active.
    shadow_lbs: Vec<u64>,
}

/// Shared placement store plus the turnstile state that orders
/// cross-shard accesses to it under the parallel runner.
pub struct StoreCell {
    store: Mutex<PlacementStore>,
    cv: Condvar,
    /// Per-shard lower bound (µs of virtual time) on the next possible
    /// shared-store access by that shard. `LB_DONE` once the shard is
    /// past the current horizon.
    lbs: Vec<AtomicU64>,
    /// Number of threads currently blocked in [`StoreCell::with`];
    /// publishers skip the notify syscall when zero.
    waiters: AtomicUsize,
    /// Whether the turnstile ordering is enforced. Off outside threaded
    /// slices so sequential paths pay only an uncontended mutex.
    active: AtomicBool,
    /// Happens-before checker state, compiled in under the `sanitize`
    /// feature and consulted only while the turnstile is active.
    #[cfg(feature = "sanitize")]
    sanitize: Mutex<SanitizeState>,
}

impl StoreCell {
    /// Wraps `store` for `shards` federation shards, turnstile inactive.
    pub fn new(store: PlacementStore, shards: usize) -> Self {
        StoreCell {
            store: Mutex::new(store),
            cv: Condvar::new(),
            lbs: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            waiters: AtomicUsize::new(0),
            active: AtomicBool::new(false),
            #[cfg(feature = "sanitize")]
            sanitize: Mutex::new(SanitizeState {
                last_access: None,
                shadow_lbs: vec![0; shards],
            }),
        }
    }

    /// Number of shards this cell was built for.
    pub fn shards(&self) -> usize {
        self.lbs.len()
    }

    /// Turns turnstile ordering on (threaded slice) or off (sequential).
    pub fn set_active(&self, on: bool) {
        #[cfg(feature = "sanitize")]
        if on {
            // Re-arm the checker from the bounds seeded for this slice.
            let mut st = self.sanitize.lock().expect("sanitize mutex poisoned");
            st.last_access = None;
            for (r, lb) in st.shadow_lbs.iter_mut().enumerate() {
                *lb = self.lbs[r].load(Ordering::SeqCst);
            }
        }
        self.active.store(on, Ordering::SeqCst);
    }

    /// Publishes shard `shard`'s new lower bound and wakes any waiters
    /// whose turn may have arrived. Bounds must be published
    /// monotonically non-decreasing within a slice.
    pub fn publish(&self, shard: usize, lb_us: u64) {
        #[cfg(feature = "sanitize")]
        if self.active.load(Ordering::SeqCst) {
            let mut st = self.sanitize.lock().expect("sanitize mutex poisoned");
            let prev = st.shadow_lbs[shard];
            assert!(
                lb_us >= prev,
                "sanitize: shard {shard} published bound {lb_us}µs after {prev}µs; \
                 bounds must be monotone non-decreasing within an active slice"
            );
            st.shadow_lbs[shard] = lb_us;
        }
        self.lbs[shard].store(lb_us, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking and dropping the store mutex before notifying closes
            // the race where a waiter has re-checked the (stale) bounds
            // but not yet parked: the waiter holds the mutex across its
            // check-and-wait, so by the time we acquire it the waiter is
            // either parked (and gets the notify) or already re-running.
            drop(
                self.store
                    .lock()
                    .expect("store mutex poisoned: a shard worker panicked"),
            );
            self.cv.notify_all();
        }
    }

    /// Runs `f` on the store for an access by `shard` at virtual time
    /// `now_us`, blocking until every other shard's published bound has
    /// passed `(now_us, shard)` lexicographically. With the turnstile
    /// inactive this is a plain lock.
    pub fn with<R>(
        &self,
        shard: usize,
        now_us: u64,
        f: impl FnOnce(&mut PlacementStore) -> R,
    ) -> R {
        let mut guard = self
            .store
            .lock()
            .expect("store mutex poisoned: a shard worker panicked");
        if self.active.load(Ordering::SeqCst) {
            while !self.my_turn(shard, now_us) {
                self.waiters.fetch_add(1, Ordering::SeqCst);
                // Re-check under the waiter count so a publish that
                // lands between the first check and the increment is
                // not lost: the publisher sees waiters > 0 and notifies
                // through the mutex we hold.
                if self.my_turn(shard, now_us) {
                    self.waiters.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
                guard = self
                    .cv
                    .wait(guard)
                    .expect("store mutex poisoned: a shard worker panicked");
                self.waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
        #[cfg(feature = "sanitize")]
        if self.active.load(Ordering::SeqCst) {
            self.sanitize_check_access(shard, now_us);
        }
        f(&mut guard)
    }

    /// Sanitizer: verifies, at the moment an access actually runs, that
    /// it extends the global ascending `(time, shard)` access order and
    /// is ordered after every other shard's published bound — the
    /// happens-before edges the turnstile claims to have established.
    /// Called with the store mutex held, so the recorded order is the
    /// real execution order.
    #[cfg(feature = "sanitize")]
    fn sanitize_check_access(&self, shard: usize, now_us: u64) {
        let mut st = self.sanitize.lock().expect("sanitize mutex poisoned");
        if let Some((t, s)) = st.last_access {
            assert!(
                (now_us, shard) >= (t, s),
                "sanitize: store access by shard {shard} at t={now_us}µs ran after \
                 shard {s}'s access at t={t}µs; parallel access order diverged from \
                 the sequential oracle (a shard violated its published bound)"
            );
        }
        st.last_access = Some((now_us, shard));
        for (r, lb) in st.shadow_lbs.iter().enumerate() {
            if r == shard {
                continue;
            }
            assert!(
                *lb > now_us || (*lb == now_us && r > shard),
                "sanitize: shard {shard} ran a store access at t={now_us}µs that is \
                 not ordered after shard {r}'s published bound of {lb}µs"
            );
        }
    }

    /// Sanitizer: asserts shard `shard`'s published bound does not
    /// overstate `t_us`, the virtual time of the event it is about to
    /// execute. A bound above the shard's own next event would let
    /// other shards overtake store accesses that event may still make.
    #[cfg(feature = "sanitize")]
    pub fn sanitize_assert_bound_covers(&self, shard: usize, t_us: u64) {
        let lb = self.lbs[shard].load(Ordering::SeqCst);
        assert!(
            lb <= t_us,
            "sanitize: shard {shard} is stepping an event at t={t_us}µs but its \
             published bound is {lb}µs, overstating its lookahead"
        );
    }

    /// Test-only mutation hook for the sanitizer suite: overwrites shard
    /// `shard`'s published bound (and its sanitizer shadow) without any
    /// checks, simulating a worker that lies about its lookahead. The
    /// seeded violation must then be caught by
    /// [`sanitize_check_access`](Self::sanitize_check_access).
    #[cfg(feature = "sanitize")]
    #[doc(hidden)]
    pub fn sanitize_force_bound(&self, shard: usize, lb_us: u64) {
        {
            let mut st = self.sanitize.lock().expect("sanitize mutex poisoned");
            st.shadow_lbs[shard] = lb_us;
        }
        self.lbs[shard].store(lb_us, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Runs `f` under the plain store lock with no ordering — for
    /// assembly, statistics, and coordinator paths that execute while no
    /// threaded slice is active.
    pub fn locked<R>(&self, f: impl FnOnce(&mut PlacementStore) -> R) -> R {
        let mut guard = self
            .store
            .lock()
            .expect("store mutex poisoned: a shard worker panicked");
        f(&mut guard)
    }

    /// True when every other shard's bound is lexicographically past
    /// `(now_us, shard)`: strictly later in time, or tied in time with a
    /// higher shard index (ties resolve in ascending shard order, same
    /// as the sequential scan loop).
    fn my_turn(&self, shard: usize, now_us: u64) -> bool {
        self.lbs.iter().enumerate().all(|(r, lb)| {
            if r == shard {
                return true;
            }
            let v = lb.load(Ordering::SeqCst);
            v > now_us || (v == now_us && r > shard)
        })
    }
}

impl std::fmt::Debug for StoreCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreCell")
            .field("shards", &self.lbs.len())
            .field("active", &self.active.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn inactive_cell_is_a_plain_lock() {
        let cell = StoreCell::new(PlacementStore::new(2), 2);
        // Other shard's bound is behind us; would block if active.
        cell.publish(1, 0);
        let got = cell.with(0, 100, |_s| 42);
        assert_eq!(got, 42);
    }

    #[test]
    fn my_turn_resolves_ties_by_shard_index() {
        let cell = StoreCell::new(PlacementStore::new(2), 2);
        cell.publish(0, 50);
        cell.publish(1, 50);
        // Shard 0 at t=50 may go (shard 1's bound ties at a higher
        // index); shard 1 at t=50 must wait for shard 0 to pass 50.
        assert!(cell.my_turn(0, 50));
        assert!(!cell.my_turn(1, 50));
        cell.publish(0, 51);
        assert!(cell.my_turn(1, 50));
    }

    #[test]
    fn turnstile_orders_two_threads_by_time() {
        let cell = Arc::new(StoreCell::new(PlacementStore::new(2), 2));
        cell.set_active(true);
        cell.publish(0, 0);
        cell.publish(1, 0);
        let order = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            // Shard 1 wants the store at t=10 but shard 0's bound is
            // still 0, so it must wait until shard 0 publishes past 10.
            // Like the runner, it publishes its own bound before any
            // blocking access — a waiter with an understated bound
            // would stall everyone else.
            let c = Arc::clone(&cell);
            let ord = Arc::clone(&order);
            scope.spawn(move || {
                c.publish(1, 10);
                c.with(1, 10, |_s| ord.lock().unwrap().push("shard1@10"));
                c.publish(1, LB_DONE);
            });
            let c = Arc::clone(&cell);
            let ord = Arc::clone(&order);
            scope.spawn(move || {
                // Give the other thread a chance to park first so the
                // wakeup path is exercised (test is correct either way).
                std::thread::sleep(std::time::Duration::from_millis(20));
                c.publish(0, 5);
                c.with(0, 5, |_s| ord.lock().unwrap().push("shard0@5"));
                c.publish(0, LB_DONE);
            });
        });

        assert_eq!(*order.lock().unwrap(), vec!["shard0@5", "shard1@10"]);
    }
}
