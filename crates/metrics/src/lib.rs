//! Measurement and reporting utilities for cpsim experiments.
//!
//! - [`Histogram`]: log-bucketed latency/size histogram with ~2 % relative
//!   quantile error, mergeable across runs;
//! - [`Summary`]: exact order statistics over a retained sample;
//! - [`TimeSeries`]: fixed-width binning of events over simulated time
//!   (arrival-rate plots);
//! - [`Table`]: the output format of every reproduced table/figure —
//!   renders as aligned markdown and as CSV.

pub mod histogram;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use histogram::Histogram;
pub use summary::Summary;
pub use table::Table;
pub use timeseries::TimeSeries;
