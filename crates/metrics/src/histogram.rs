//! A log-bucketed histogram for non-negative measurements.
//!
//! Bucket boundaries grow geometrically (4 % per bucket by default), giving
//! bounded relative error on quantiles with a few hundred buckets across
//! twelve decades — plenty for latencies from microseconds to days.

use serde::{Deserialize, Serialize};

/// Smallest value tracked distinctly; everything in `[0, TRACK_FLOOR)` goes
/// into the underflow bucket and reads back as zero.
const TRACK_FLOOR: f64 = 1e-9;

/// Geometric growth factor of bucket boundaries.
const GROWTH: f64 = 1.04;

/// A mergeable log-bucketed histogram.
///
/// ```
/// use cpsim_metrics::Histogram;
/// let mut h = Histogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((p50 - 500.0).abs() / 500.0 < 0.05); // ~4 % bucket error
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets[i]` counts values in `[floor * G^i, floor * G^(i+1))`.
    buckets: Vec<u64>,
    underflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            underflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one measurement.
    ///
    /// Negative or non-finite values are a caller bug; they are clamped to
    /// zero in release builds and panic in debug builds.
    pub fn record(&mut self, value: f64) {
        debug_assert!(
            value.is_finite() && value >= 0.0,
            "histogram values must be finite and >= 0, got {value}"
        );
        let value = if value.is_finite() && value >= 0.0 {
            value
        } else {
            0.0
        };
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        if value < TRACK_FLOOR {
            self.underflow += 1;
            return;
        }
        let idx = ((value / TRACK_FLOOR).ln() / GROWTH.ln()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Records `n` identical measurements.
    pub fn record_n(&mut self, value: f64, n: u64) {
        for _ in 0..n {
            self.record(value);
        }
    }

    /// Number of recorded measurements.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded values (exact), or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of recorded values (exact).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value (exact), or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact), or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with ~4 % relative error, or 0 if
    /// empty. Reported values are clamped into `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return 0.0;
        }
        // Rank of the target observation (1-based, nearest-rank method).
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            return self.max;
        }
        let mut seen = self.underflow;
        if seen >= target {
            return self.min.max(0.0).min(self.max);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Geometric midpoint of the bucket, clamped to observed range.
                let lo = TRACK_FLOOR * GROWTH.powi(i as i32);
                let mid = lo * GROWTH.sqrt();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn exact_moments() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.record(i as f64 / 10.0); // 0.1 .. 1000.0
        }
        for &(q, expect) in &[(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            assert!(
                (got - expect).abs() / expect < 0.05,
                "q={q}: got {got}, expected ~{expect}"
            );
        }
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.quantile(0.0), h.min());
    }

    #[test]
    fn zeros_go_to_underflow() {
        let mut h = Histogram::new();
        h.record_n(0.0, 10);
        h.record(5.0);
        assert_eq!(h.count(), 11);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 5.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for i in 0..100 {
            let v = (i * 37 % 91) as f64 + 0.5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(3.0);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_out_of_range_panics() {
        Histogram::new().quantile(1.5);
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Histogram::new();
        h.record(2.5);
        h.record(7.0);
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    proptest! {
        #[test]
        fn quantile_always_within_min_max(values in proptest::collection::vec(0.0f64..1e9, 1..200), q in 0.0f64..=1.0) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let got = h.quantile(q);
            prop_assert!(got >= h.min() - 1e-12);
            prop_assert!(got <= h.max() + 1e-12);
        }

        #[test]
        fn quantile_is_monotone(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let got: Vec<f64> = qs.iter().map(|&q| h.quantile(q)).collect();
            for w in got.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12);
            }
        }

        #[test]
        fn count_and_sum_exact(values in proptest::collection::vec(0.0f64..1e6, 0..100)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            let total: f64 = values.iter().sum();
            prop_assert!((h.sum() - total).abs() < 1e-6 * (1.0 + total.abs()));
        }
    }
}
