//! The output format of every reproduced table and figure: a titled grid of
//! cells that renders as aligned markdown (for the terminal) and CSV (for
//! plotting).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A titled result table.
///
/// ```
/// use cpsim_metrics::Table;
/// let mut t = Table::new("Figure 1", &["workload", "ops/day"]);
/// t.row(["cloud-a", "1500"]);
/// t.row(["cloud-b", "900"]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("| cloud-a"));
/// assert!(t.to_csv().starts_with("workload,ops/day\n"));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows appended so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (header row first). Cells containing commas, quotes
    /// or newlines are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if c.contains([',', '"', '\n']) {
                    out.push('"');
                    out.push_str(&c.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(c);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.columns);
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "### {}", self.title)?;
        writeln!(f)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.columns)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<1$}|", "", w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimal places, trimming to a compact form.
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout_is_aligned() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(["long-name", "1"]).row(["x", "22"]);
        let s = t.to_string();
        assert!(s.contains("| name      | v  |"));
        assert!(s.contains("| long-name | 1  |"));
        assert!(s.contains("| x         | 22 |"));
        assert!(s.starts_with("### T"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn accessors() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.title(), "T");
        assert_eq!(t.columns(), ["a".to_string()]);
        assert_eq!(t.rows()[0], vec!["1".to_string()]);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new("T", &["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(10.0, 0), "10");
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Table::new("T", &["a"]);
        t.row(["1"]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
