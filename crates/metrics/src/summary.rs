//! Exact order statistics over a retained sample.
//!
//! Experiments that collect up to a few hundred thousand observations keep
//! them and report exact percentiles; unbounded streams should use
//! [`Histogram`](crate::Histogram) instead.

use serde::{Deserialize, Serialize};

/// A collected sample with exact summary statistics.
///
/// ```
/// use cpsim_metrics::Summary;
/// let mut s: Summary = [4.0, 1.0, 3.0, 2.0].into_iter().collect();
/// assert_eq!(s.percentile(50.0), 2.0);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "summary values must be finite");
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Population standard deviation, or 0 if fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64;
        var.sqrt()
    }

    /// Coefficient of variation (std dev / mean), or 0 if the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Exact percentile by the nearest-rank method (`p` in 0..=100), or 0 if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        self.values[rank - 1]
    }

    /// The empirical CDF evaluated at each of `points`: fraction of
    /// observations ≤ the point.
    pub fn cdf_at(&mut self, points: &[f64]) -> Vec<f64> {
        self.ensure_sorted();
        let n = self.values.len();
        points
            .iter()
            .map(|&p| {
                if n == 0 {
                    0.0
                } else {
                    let le = self.values.partition_point(|&v| v <= p);
                    le as f64 / n as f64
                }
            })
            .collect()
    }

    /// Read-only access to the raw observations (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_reads_zero() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: Summary = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(90.0), 90.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0); // classic example
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_points() {
        let mut s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        let cdf = s.cdf_at(&[0.5, 2.0, 10.0]);
        assert_eq!(cdf, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn record_after_percentile_stays_correct() {
        let mut s = Summary::new();
        s.record(5.0);
        assert_eq!(s.percentile(50.0), 5.0);
        s.record(1.0);
        assert_eq!(s.percentile(50.0), 1.0);
        assert_eq!(s.percentile(100.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::new().record(f64::NAN);
    }

    #[test]
    fn extend_and_collect_agree() {
        let mut a = Summary::new();
        a.extend([1.0, 2.0, 3.0]);
        let b: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(a.values(), b.values());
    }
}
