//! Fixed-width time binning of events and values over simulated time.
//!
//! Used for arrival-rate and utilization-over-time figures: each event (or
//! valued observation) lands in the bin containing its timestamp.

use cpsim_des::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A series of equal-width bins starting at time zero.
///
/// ```
/// use cpsim_des::{SimDuration, SimTime};
/// use cpsim_metrics::TimeSeries;
///
/// let mut ts = TimeSeries::new(SimDuration::from_secs(60));
/// ts.record(SimTime::from_secs(30), 1.0);
/// ts.record(SimTime::from_secs(45), 1.0);
/// ts.record(SimTime::from_secs(90), 1.0);
/// assert_eq!(ts.counts(), &[2, 1]);
/// assert_eq!(ts.sums(), &[2.0, 1.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    bin_width: SimDuration,
    counts: Vec<u64>,
    sums: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        TimeSeries {
            bin_width,
            counts: Vec::new(),
            sums: Vec::new(),
        }
    }

    /// Records an observation of `value` at `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_micros() / self.bin_width.as_micros()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
            self.sums.resize(idx + 1, 0.0);
        }
        self.counts[idx] += 1;
        self.sums[idx] += value;
    }

    /// Records a unit event at `t` (counting only).
    pub fn mark(&mut self, t: SimTime) {
        self.record(t, 1.0);
    }

    /// The bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin_width
    }

    /// Event counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Value sums per bin.
    pub fn sums(&self) -> &[f64] {
        &self.sums
    }

    /// Number of bins touched so far.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Event rate per second in each bin.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let w = self.bin_width.as_secs_f64();
        self.counts.iter().map(|&c| c as f64 / w).collect()
    }

    /// Mean recorded value in each bin (0 for empty bins).
    pub fn means(&self) -> Vec<f64> {
        self.counts
            .iter()
            .zip(&self.sums)
            .map(|(&c, &s)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Peak-to-mean ratio of the per-bin event counts over the first
    /// `n_bins` bins (burstiness indicator); 0 if no events.
    pub fn peak_to_mean(&self, n_bins: usize) -> f64 {
        let n = n_bins.min(self.counts.len()).max(1);
        let slice = &self.counts[..n.min(self.counts.len())];
        if slice.is_empty() {
            return 0.0;
        }
        let total: u64 = slice.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / n as f64;
        let peak = *slice.iter().max().expect("non-empty") as f64;
        peak / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_are_half_open() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(10));
        ts.mark(SimTime::ZERO);
        ts.mark(SimTime::from_micros(9_999_999));
        ts.mark(SimTime::from_secs(10)); // first instant of bin 1
        assert_eq!(ts.counts(), &[2, 1]);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn rates_scale_by_bin_width() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(2));
        ts.mark(SimTime::ZERO);
        ts.mark(SimTime::from_secs(1));
        assert_eq!(ts.rates_per_sec(), vec![1.0]);
    }

    #[test]
    fn means_ignore_empty_bins() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimTime::ZERO, 10.0);
        ts.record(SimTime::ZERO, 20.0);
        ts.record(SimTime::from_secs(2), 5.0);
        assert_eq!(ts.means(), vec![15.0, 0.0, 5.0]);
    }

    #[test]
    fn peak_to_mean_measures_burstiness() {
        let mut smooth = TimeSeries::new(SimDuration::from_secs(1));
        let mut bursty = TimeSeries::new(SimDuration::from_secs(1));
        for i in 0..10 {
            smooth.mark(SimTime::from_secs(i));
        }
        for _ in 0..10 {
            bursty.mark(SimTime::from_secs(3));
        }
        // make both series 10 bins long for a fair comparison
        bursty.record(SimTime::from_secs(9), 0.0);
        assert!((smooth.peak_to_mean(10) - 1.0).abs() < 1e-12);
        assert!(bursty.peak_to_mean(10) > 5.0);
    }

    #[test]
    fn empty_series_behaves() {
        let ts = TimeSeries::new(SimDuration::from_secs(1));
        assert!(ts.is_empty());
        assert_eq!(ts.peak_to_mean(10), 0.0);
        assert!(ts.rates_per_sec().is_empty());
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_rejected() {
        TimeSeries::new(SimDuration::ZERO);
    }
}
