//! Property-based tests of the simulation kernel.

use cpsim_des::{EventQueue, FifoQueue, SharedBandwidth, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in nondecreasing time order, with insertion
    /// order breaking ties.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(i > li, "tie not broken by insertion order");
                }
            }
            last = Some((t, i));
        }
    }

    /// The shared-bandwidth engine conserves work: total bytes moved
    /// equals total bytes offered, and all flows complete.
    #[test]
    fn shared_bandwidth_conserves_work(
        sizes in proptest::collection::vec(1.0f64..1e7, 1..40),
        starts in proptest::collection::vec(0u64..10_000_000, 1..40),
        rate in 1e3f64..1e9,
    ) {
        let n = sizes.len().min(starts.len());
        let mut offers: Vec<(u64, f64)> = starts[..n]
            .iter()
            .copied()
            .zip(sizes[..n].iter().copied())
            .collect();
        offers.sort_by_key(|(t, _)| *t);

        let mut bw: SharedBandwidth<usize> = SharedBandwidth::new(rate);
        let mut plan = None;
        let mut finished = 0usize;
        let mut pending: Vec<(u64, f64)> = offers.clone();
        pending.reverse();

        // Interleave starts and ticks in time order.
        loop {
            let next_start = pending.last().map(|(t, _)| SimTime::from_micros(*t));
            let next_tick = plan.map(|p: cpsim_des::TransferPlan| p.next_completion);
            match (next_start, next_tick) {
                (None, None) => break,
                (Some(ts), tick) if tick.is_none() || ts <= tick.unwrap() => {
                    let (t, bytes) = pending.pop().unwrap();
                    let key = offers.len() - pending.len() - 1;
                    plan = bw.start(SimTime::from_micros(t), key, bytes);
                }
                (_, Some(tt)) => {
                    let p = plan.take().unwrap();
                    if let Some(done) = bw.on_tick(tt, p.epoch) {
                        finished += done.finished.len();
                        plan = done.plan;
                    }
                }
                (Some(_), None) => unreachable!("guarded arm above covers this"),
            }
        }
        prop_assert_eq!(finished, offers.len());
        prop_assert_eq!(bw.active(), 0);
        let total: f64 = offers.iter().map(|(_, b)| b).sum();
        let moved = bw.bytes_moved(SimTime::MAX);
        prop_assert!((moved - total).abs() < 1.0 + total * 1e-9,
            "moved {moved} vs offered {total}");
    }

    /// The event queue agrees with a stable-sorted reference model under
    /// arbitrary interleavings of schedules, keyed schedules, horizon
    /// pops, and cancellations (including cancellations that force
    /// tombstone compaction).
    #[test]
    fn event_queue_matches_reference_under_cancellation(
        ops in proptest::collection::vec((0u64..2_000, any::<bool>(), 0u8..4), 1..400),
    ) {
        let mut q = EventQueue::new();
        // Reference: (time, insertion index) pairs still pending.
        let mut reference: Vec<(u64, usize)> = Vec::new();
        let mut keys = Vec::new();
        for (i, &(t, keyed, action)) in ops.iter().enumerate() {
            if keyed {
                keys.push((q.schedule_keyed(SimTime::from_micros(t), i), t, i));
            } else {
                q.schedule(SimTime::from_micros(t), i);
            }
            reference.push((t, i));
            match action {
                // Cancel the oldest outstanding keyed event.
                0 if !keys.is_empty() => {
                    let (k, kt, ki) = keys.remove(0);
                    if q.cancel(k) {
                        reference.retain(|&(rt, ri)| (rt, ri) != (kt, ki));
                    }
                }
                // Drain a horizon prefix.
                1 => {
                    let horizon = t / 2;
                    reference.sort(); // stable order == (time, seq) order
                    while let Some((pt, pi)) = q.pop_if_before(SimTime::from_micros(horizon)) {
                        prop_assert!(pt.as_micros() <= horizon, "popped event past horizon");
                        prop_assert!(!reference.is_empty());
                        let (rt, ri) = reference.remove(0);
                        prop_assert_eq!((rt, ri), (pt.as_micros(), pi));
                        keys.retain(|&(_, _, ki)| ki != ri);
                    }
                    if let Some(&(rt, _)) = reference.first() {
                        prop_assert!(rt > horizon, "left an in-horizon event unpopped");
                    }
                }
                _ => {}
            }
            prop_assert_eq!(q.live_len(), reference.len());
            prop_assert_eq!(q.len() - q.tombstoned_len(), q.live_len());
        }
        reference.sort();
        while let Some((pt, pi)) = q.pop() {
            let (rt, ri) = reference.remove(0);
            prop_assert_eq!((rt, ri), (pt.as_micros(), pi));
        }
        prop_assert!(reference.is_empty());
        prop_assert_eq!(q.tombstoned_len(), 0);
    }

    /// FIFO queues conserve jobs and never exceed their server count.
    #[test]
    fn fifo_conserves_jobs(ops in proptest::collection::vec(any::<bool>(), 1..200), servers in 1u32..5) {
        let mut q: FifoQueue<u32> = FifoQueue::new(servers);
        let mut t = 0u64;
        let mut submitted = 0u64;
        let mut completed = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_micros(t);
            if op {
                q.arrive(now, submitted as u32);
                submitted += 1;
            } else if q.in_service() > 0 {
                q.complete(now);
                completed += 1;
            }
            prop_assert!(q.in_service() <= servers);
            // Conservation: submitted = completed + in_service + waiting.
            prop_assert_eq!(
                submitted,
                completed + u64::from(q.in_service()) + q.queue_len() as u64
            );
        }
    }
}
