//! The pending-event set: a hybrid **hierarchical timer wheel** ordered by
//! `(time, sequence)`.
//!
//! The sequence number breaks ties between events scheduled for the same
//! instant in insertion order, which makes runs fully deterministic.
//!
//! # Structure
//!
//! Scheduling in this workspace is dominated by near-horizon periodic
//! traffic (heartbeats, service completions, transfer ticks, sync timers)
//! plus a long tail of pre-scheduled arrivals. A comparison heap pays
//! O(log n) cache-missing levels per operation for that mix; a timer wheel
//! pays O(1) amortized. The queue therefore routes every entry to one of
//! three structures, by its time `t` relative to a monotone `cursor` (the
//! time the queue has popped up to):
//!
//! - **wheel** (`t >= cursor`, within `WHEEL_BITS` bits of it): a
//!   hierarchical timer wheel of `LEVELS` levels x `SLOTS` slots with a
//!   1 µs tick. Level `L` buckets are `64^L` µs wide; an entry lives at the
//!   *highest* level where its time digit differs from the cursor's
//!   (base-64 digits of the µs timestamp), so each entry cascades at most
//!   `LEVELS - 1` times before it is popped from a level-0 bucket.
//!   Per-level occupancy bitmaps make find-min a handful of word scans.
//! - **early heap** (`t < cursor`): a small four-ary min-heap. The cursor
//!   may run ahead of the last popped event (it advances to bucket
//!   *bases* while cascading), so an entry scheduled between the last pop
//!   and the next pending event lands here, pops first, and keeps the
//!   wheel's alignment invariants intact. It holds at most the handful of
//!   imminent events a handler emits between two pops.
//! - **overflow heap** (`t` beyond the wheel span): a four-ary min-heap
//!   for the far future (> ~51 simulated days ahead). Drained a
//!   top-level block at a time when the wheel runs dry.
//!
//! # Determinism
//!
//! The pop order is exactly ascending `(time, seq)`, matching the
//! reference heap ([`crate::reference::ReferenceQueue`], the previous
//! implementation, kept as a property-test oracle):
//!
//! - early-heap entries are strictly earlier than the cursor and wheel
//!   entries never earlier, so the three sources never tie across
//!   structures; within a heap the comparison key is `(time, seq)`.
//! - a level-0 bucket spans a single microsecond **of a single top-level
//!   block**, so all its entries share one timestamp; FIFO order within
//!   the bucket *is* seq order, because appends happen either at schedule
//!   time (the new entry carries the globally largest seq) or during a
//!   cascade/overflow drain, which moves entries in `(time, seq)` order
//!   and only into buckets at lower levels (same-time entries share every
//!   digit, hence travel together and stay ordered).
//!
//! # Payload pooling
//!
//! Payloads live in a slab (`Vec<Option<E>>` plus a free list); the wheel,
//! heaps, and cascades move only 24-byte `(time, seq, slot)` entries. A
//! steady-state simulation reuses slab slots and bucket capacity, so
//! scheduling performs no per-event allocation and large payload types are
//! written once and read once.
//!
//! # Cancellation
//!
//! Two mechanisms coexist, unchanged from the heap kernel:
//!
//! - the legacy *tombstone pattern*: components that need to reschedule a
//!   completion carry a [`TimerToken`](crate::TimerToken) in the event
//!   payload and ignore events whose token is stale on delivery (see
//!   [`TokenGen`](crate::TokenGen));
//! - queue-level cancellation: [`EventQueue::schedule_keyed`] returns an
//!   [`EventKey`] that [`EventQueue::cancel`] can later mark dead. Dead
//!   events are skipped as they surface (the queue *front* is never a
//!   tombstone), counted (see [`EventQueue::live_len`] /
//!   [`EventQueue::tombstoned_len`]), and **compacted away** automatically
//!   once they dominate, so a workload that cancels heavily cannot bloat
//!   the pending set.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Membership-only set of sequence numbers (cancellation bookkeeping).
///
/// Hash ordering cannot leak into event order: `cancelled` and `keyed` are
/// only probed (`contains`/`remove`/`insert`) and bulk-dropped
/// (`retain`/`clear`); nothing ever iterates them into an emit path, and the
/// O(1) probe sits on the pop hot path where a `BTreeSet` would pay an
/// extra O(log n) per event (and SipHash a measurable per-probe cost, hence
/// [`FastSet`](crate::hash::FastSet)).
// cpsim-lint: allow(no-unordered-iteration): membership-only probes on the pop hot path; iteration order is never observed
type SeqSet = crate::hash::FastSet<u64>;

/// Bits per wheel level: 64 slots each.
const SLOT_BITS: usize = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Slot-index mask within a level.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Wheel levels. Seven levels of 64 slots cover `2^42` µs (~51 simulated
/// days) from the cursor; anything further sits in the overflow heap.
const LEVELS: usize = 7;
/// Total bits of timestamp the wheel resolves.
const WHEEL_BITS: usize = SLOT_BITS * LEVELS;

/// Arity of the early/overflow heaps (see [`crate::reference`] for why
/// four-ary beats binary here).
const ARITY: usize = 4;

/// Compact when tombstones outnumber live events and there are at least
/// this many of them (small queues are not worth the rebuild).
const COMPACT_MIN_TOMBSTONES: usize = 64;

/// One pending occurrence: when, in what order, and where its payload is.
///
/// `Copy` and 24 bytes, so heap sifts and wheel cascades never touch the
/// payload slab.
#[derive(Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Identifies one scheduled event for cancellation (see
/// [`EventQueue::schedule_keyed`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(pub(crate) u64);

/// Where the cached front entry physically lives, so `take_front` can
/// remove it without re-running [`EventQueue::position`].
///
/// Only meaningful while `front` is `Some`; a stale value is never read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FrontLoc {
    /// Root of the early heap.
    Early,
    /// Front of level-0 bucket `slot`. Valid because the front is the
    /// global minimum: every other physical entry (tombstones included)
    /// has a larger `(time, seq)` key, and same-bucket entries share one
    /// timestamp, so nothing can sit ahead of it in the deque.
    Bucket(u32),
    /// Overflow heap or a level > 0 bucket: `take_front` positions first.
    Deep,
}

/// A future-event set holding events of type `E`.
///
/// ```
/// use cpsim_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Wheel buckets, `buckets[level * SLOTS + slot]`. A bucket holds its
    /// entries in seq order (see the module docs for why appends preserve
    /// this).
    buckets: Vec<VecDeque<Entry>>,
    /// Per-level occupancy bitmaps: bit `s` set iff `buckets[l*SLOTS+s]`
    /// is non-empty.
    occ: [u64; LEVELS],
    /// Entries earlier than the cursor (four-ary min-heap by `(time, seq)`).
    early: Vec<Entry>,
    /// Entries beyond the wheel span (four-ary min-heap by `(time, seq)`).
    overflow: Vec<Entry>,
    /// The µs timestamp the queue has resolved up to. Invariants: every
    /// wheel/overflow entry has `time >= cursor`; every early entry has
    /// `time < cursor`; the cursor never decreases.
    cursor: u64,
    /// The exact `(time, seq)` of the earliest pending entry, `None` iff
    /// the queue holds no entries at all. Invariant: the front is never a
    /// tombstone (cancelled entries are discarded as they surface), so
    /// peeks need no mutation and `is_empty` is `front.is_none()`.
    front: Option<(SimTime, u64)>,
    /// Physical location of the front entry (see [`FrontLoc`]).
    front_loc: FrontLoc,
    /// Total pending entries, **including** tombstones.
    count: usize,
    next_seq: u64,
    /// Payload slab: `entries` point into it by index; `free` recycles
    /// vacated slots so steady-state scheduling allocates nothing.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    /// Sequence numbers cancelled while still pending (never the front).
    cancelled: SeqSet,
    /// Sequence numbers scheduled via [`schedule_keyed`](Self::schedule_keyed)
    /// and still pending: lets `cancel` decide pendingness exactly in O(1).
    /// Plain [`schedule`](Self::schedule) never touches it, so the common
    /// (uncancellable) path pays only an is-empty branch per pop.
    keyed: SeqSet,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occ: [0; LEVELS],
            early: Vec::new(),
            overflow: Vec::new(),
            cursor: 0,
            front: None,
            front_loc: FrontLoc::Deep,
            count: 0,
            next_seq: 0,
            slab: Vec::new(),
            free: Vec::new(),
            cancelled: SeqSet::default(),
            keyed: SeqSet::default(),
        }
    }

    // ---- slab ------------------------------------------------------------

    #[inline]
    fn alloc_slot(&mut self, event: E) -> u32 {
        if let Some(s) = self.free.pop() {
            self.slab[s as usize] = Some(event);
            s
        } else {
            let s = self.slab.len() as u32;
            self.slab.push(Some(event));
            s
        }
    }

    /// Vacates `slot` and returns its payload.
    #[inline]
    fn take_slot(&mut self, slot: u32) -> Option<E> {
        let e = self.slab[slot as usize].take();
        self.free.push(slot);
        e
    }

    /// Vacates `slot`, dropping its payload (tombstone discard).
    #[inline]
    fn drop_slot(&mut self, slot: u32) {
        self.slab[slot as usize] = None;
        self.free.push(slot);
    }

    // ---- scheduling ------------------------------------------------------

    /// Files `e` into the structure its time calls for and reports where
    /// it landed. Preserves every placement invariant; does not touch
    /// `count` or `front`.
    #[inline]
    fn insert(&mut self, e: Entry) -> FrontLoc {
        let t = e.time.as_micros();
        if t < self.cursor {
            heap_push(&mut self.early, e);
            return FrontLoc::Early;
        }
        let x = t ^ self.cursor;
        if x >> WHEEL_BITS != 0 {
            heap_push(&mut self.overflow, e);
            return FrontLoc::Deep;
        }
        // Highest base-64 digit where `t` differs from the cursor; equal
        // times live in the cursor's own level-0 slot.
        let level = if x == 0 {
            0
        } else {
            (63 - x.leading_zeros() as usize) / SLOT_BITS
        };
        let slot = ((t >> (SLOT_BITS * level)) & SLOT_MASK) as usize;
        self.buckets[level * SLOTS + slot].push_back(e);
        self.occ[level] |= 1u64 << slot;
        if level == 0 {
            FrontLoc::Bucket(slot as u32)
        } else {
            FrontLoc::Deep
        }
    }

    #[inline]
    fn push_entry(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(event);
        let loc = self.insert(Entry { time, seq, slot });
        self.count += 1;
        // A new entry carries the largest seq ever issued, so it improves
        // the front only on strictly earlier time.
        match self.front {
            Some((ft, _)) if ft <= time => {}
            _ => {
                self.front = Some((time, seq));
                self.front_loc = loc;
            }
        }
        seq
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events at the same instant fire in the order they were scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.push_entry(time, event);
    }

    /// Schedules `event` at `time` and returns a key that can later
    /// [`cancel`](Self::cancel) it.
    pub fn schedule_keyed(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.push_entry(time, event);
        self.keyed.insert(seq);
        EventKey(seq)
    }

    // ---- wheel positioning -----------------------------------------------

    /// Drains one top-level block of the overflow heap into the wheel.
    /// Caller guarantees the wheel is empty and the overflow is not; both
    /// together make the cursor jump (to the block base) safe.
    fn migrate_overflow(&mut self) {
        let Some(root) = self.overflow.first() else {
            return;
        };
        let block = root.time.as_micros() >> WHEEL_BITS;
        self.cursor = block << WHEEL_BITS;
        while let Some(e) = heap_pop_if(&mut self.overflow, |r| {
            r.time.as_micros() >> WHEEL_BITS == block
        }) {
            self.insert(e);
        }
    }

    /// Cascades until the wheel minimum (if any) sits in a level-0
    /// bucket; returns that slot index. Advances the cursor to bucket
    /// bases as it narrows, which is what keeps cascade work amortized
    /// O(1): each entry re-files at a strictly lower level every time.
    fn position(&mut self) -> Option<usize> {
        loop {
            let mut level = LEVELS;
            for (l, &occ) in self.occ.iter().enumerate() {
                if occ != 0 {
                    level = l;
                    break;
                }
            }
            if level == LEVELS {
                if self.overflow.is_empty() {
                    return None;
                }
                self.migrate_overflow();
                continue;
            }
            let slot = self.occ[level].trailing_zeros() as usize;
            if level == 0 {
                return Some(slot);
            }
            // Step the cursor into this bucket's sub-span: digits above
            // `level` are already shared, digit `level` becomes `slot`,
            // lower digits reset to zero. All remaining wheel entries are
            // in this bucket or later ones, so the cursor still trails
            // every pending wheel entry.
            let width = SLOT_BITS * level;
            self.cursor =
                (self.cursor & !((1u64 << (width + SLOT_BITS)) - 1)) | ((slot as u64) << width);
            self.occ[level] &= !(1u64 << slot);
            let idx = level * SLOTS + slot;
            let mut bucket = std::mem::take(&mut self.buckets[idx]);
            for e in bucket.drain(..) {
                self.insert(e);
            }
            // Hand the allocation back so steady-state cascades reuse it.
            self.buckets[idx] = bucket;
        }
    }

    /// Pops the earliest wheel entry (positioning first). Caller
    /// guarantees the early heap is empty, so this entry is the front.
    #[inline]
    fn pop_wheel(&mut self) -> Option<Entry> {
        let slot = self.position()?;
        let bucket = &mut self.buckets[slot];
        let e = bucket.pop_front()?;
        self.cursor = e.time.as_micros();
        if bucket.is_empty() {
            self.occ[0] &= !(1u64 << slot);
        }
        Some(e)
    }

    /// Removes and returns the front entry (live by invariant), without
    /// touching the slab or recomputing the front. Uses the cached
    /// [`FrontLoc`] to skip re-positioning in the common cases.
    #[inline]
    fn take_front(&mut self) -> Option<Entry> {
        self.front?;
        let e = match self.front_loc {
            FrontLoc::Early => heap_pop(&mut self.early),
            FrontLoc::Bucket(slot) => {
                let s = slot as usize;
                let e = self.buckets[s].pop_front();
                if let Some(en) = e {
                    // Same jump `pop_wheel` would make: the front is the
                    // global minimum, so no pending entry precedes it.
                    self.cursor = en.time.as_micros();
                    if self.buckets[s].is_empty() {
                        self.occ[0] &= !(1u64 << s);
                    }
                }
                e
            }
            FrontLoc::Deep => {
                if self.early.is_empty() {
                    self.pop_wheel()
                } else {
                    heap_pop(&mut self.early)
                }
            }
        }?;
        self.count -= 1;
        Some(e)
    }

    /// Recomputes `front` from the structures. Early entries are strictly
    /// earlier than anything in the wheel, so the early root wins outright
    /// when present.
    #[inline]
    fn recompute_front(&mut self) {
        if let Some(r) = self.early.first() {
            self.front = Some((r.time, r.seq));
            self.front_loc = FrontLoc::Early;
            return;
        }
        self.front = match self.position() {
            Some(slot) => {
                self.front_loc = FrontLoc::Bucket(slot as u32);
                self.buckets[slot].front().map(|e| (e.time, e.seq))
            }
            None => None,
        };
    }

    /// Restores the front-is-live invariant: recomputes the front and
    /// physically discards any tombstones that surface there.
    fn settle_front(&mut self) {
        loop {
            self.recompute_front();
            let Some((_, seq)) = self.front else { return };
            if self.cancelled.is_empty() || !self.cancelled.remove(&seq) {
                return;
            }
            let Some(e) = self.take_front() else { return };
            self.drop_slot(e.slot);
        }
    }

    // ---- public queue operations ----------------------------------------

    /// Cancels a pending event by key; returns whether the key was live.
    ///
    /// Cancellation is O(1): the entry is tombstoned in place and skipped
    /// when it surfaces at the queue front. Tombstones are compacted away
    /// in bulk (O(n)) once they outnumber live events, so heavy
    /// cancellation cannot bloat the pending set. Cancelling an
    /// already-fired or already-cancelled key returns `false` and does
    /// nothing.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.keyed.remove(&key.0) {
            return false;
        }
        // Fast path: cancelling the front removes it immediately, keeping
        // the "front is live" invariant without a set lookup on every peek.
        if let Some((_, seq)) = self.front {
            if seq == key.0 {
                if let Some(e) = self.take_front() {
                    self.drop_slot(e.slot);
                }
                self.settle_front();
                return true;
            }
        }
        self.cancelled.insert(key.0);
        if self.cancelled.len() >= COMPACT_MIN_TOMBSTONES && self.cancelled.len() * 2 > self.count {
            self.compact();
        }
        true
    }

    /// Physically removes every tombstoned entry from all three
    /// structures and frees their slab slots.
    ///
    /// Pop order is unaffected: surviving entries keep their `(time, seq)`
    /// keys, bucket retention preserves in-bucket order, and the heaps are
    /// re-heapified under the same comparison. The front is live by
    /// invariant, so it always survives.
    fn compact(&mut self) {
        let cancelled = &mut self.cancelled;
        let slab = &mut self.slab;
        let free = &mut self.free;
        let mut removed = 0usize;
        let mut keep = |e: &Entry| {
            if cancelled.remove(&e.seq) {
                slab[e.slot as usize] = None;
                free.push(e.slot);
                removed += 1;
                false
            } else {
                true
            }
        };
        self.early.retain(|e| keep(e));
        self.overflow.retain(|e| keep(e));
        for level in 0..LEVELS {
            let mut occ = self.occ[level];
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let idx = level * SLOTS + slot;
                self.buckets[idx].retain(|e| keep(e));
                if self.buckets[idx].is_empty() {
                    self.occ[level] &= !(1u64 << slot);
                }
            }
        }
        heapify(&mut self.early);
        heapify(&mut self.overflow);
        self.count -= removed;
        // Anything left in the set referred to entries no longer pending;
        // drop it so misuse cannot leak.
        cancelled.clear();
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.take_front()?;
        if !self.keyed.is_empty() {
            self.keyed.remove(&e.seq);
        }
        let event = self
            .take_slot(e.slot)
            .expect("slab slot stays filled while its entry is pending");
        self.settle_front();
        Some((e.time, event))
    }

    /// Removes and returns the earliest live event **if it fires at or
    /// before `horizon`**; otherwise leaves the queue untouched.
    ///
    /// This fuses the peek-compare-pop sequence of an event loop bounded
    /// by a time horizon into one cached-front comparison.
    #[inline]
    pub fn pop_if_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        // The front is never tombstoned, so its time is authoritative.
        let (t, _) = self.front?;
        if t > horizon {
            return None;
        }
        self.pop()
    }

    /// The timestamp of the earliest pending live event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.front.map(|(t, _)| t)
    }

    /// Number of pending entries, **including** tombstoned ones.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Number of pending events that will actually fire (excludes
    /// tombstoned entries awaiting compaction).
    pub fn live_len(&self) -> usize {
        self.count - self.cancelled.len()
    }

    /// Number of cancelled entries still occupying queue slots.
    pub fn tombstoned_len(&self) -> usize {
        self.cancelled.len()
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        // Tombstones are discarded as they surface at the front and
        // compaction keeps them a minority, so the queue cannot consist
        // solely of tombstones: no front means no entries at all.
        self.front.is_none()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live_len())
            .field("tombstoned", &self.tombstoned_len())
            .field("next_time", &self.next_time())
            .finish()
    }
}

// ---- four-ary heap helpers (early/overflow) ------------------------------

#[inline]
fn heap_push(h: &mut Vec<Entry>, e: Entry) {
    h.push(e);
    let mut i = h.len() - 1;
    while i > 0 {
        let parent = (i - 1) / ARITY;
        if h[i].key() < h[parent].key() {
            h.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

#[inline]
fn heap_pop(h: &mut Vec<Entry>) -> Option<Entry> {
    let len = h.len();
    if len == 0 {
        return None;
    }
    h.swap(0, len - 1);
    let e = h.pop();
    if !h.is_empty() {
        sift_down(h, 0);
    }
    e
}

/// Pops the root only when `pred` accepts it (overflow block drains).
#[inline]
fn heap_pop_if(h: &mut Vec<Entry>, pred: impl Fn(&Entry) -> bool) -> Option<Entry> {
    if pred(h.first()?) {
        heap_pop(h)
    } else {
        None
    }
}

#[inline]
fn sift_down(h: &mut [Entry], mut i: usize) {
    let len = h.len();
    loop {
        let first = ARITY * i + 1;
        if first >= len {
            break;
        }
        let mut min = first;
        let end = (first + ARITY).min(len);
        for c in first + 1..end {
            if h[c].key() < h[min].key() {
                min = c;
            }
        }
        if h[min].key() < h[i].key() {
            h.swap(min, i);
            i = min;
        } else {
            break;
        }
    }
}

/// Floyd heapify: sift down from the last parent to the root.
fn heapify(h: &mut [Entry]) {
    if h.len() > 1 {
        let last_parent = (h.len() - 2) / ARITY;
        for i in (0..=last_parent).rev() {
            sift_down(h, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_fifo_survives_interleaved_pops_and_heavy_mixing() {
        // FIFO-at-same-instant must hold even when the same-instant batch
        // is interleaved with earlier/later events and partial pops —
        // the case a queue restructure could silently break.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(10);
        for i in 0..10 {
            q.schedule(t, ("tied", i));
            q.schedule(SimTime::from_secs(20 + i as u64), ("late", i));
        }
        q.schedule(SimTime::from_secs(1), ("early", 0));
        assert_eq!(q.pop().unwrap().1, ("early", 0));
        for i in 10..50 {
            q.schedule(t, ("tied", i));
        }
        let mut tied = Vec::new();
        while let Some((time, e)) = q.pop() {
            if time == t {
                tied.push(e.1);
            }
        }
        assert_eq!(tied, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks_without_removal() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_if_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "a");
        q.schedule(SimTime::from_secs(9), "b");
        assert_eq!(q.pop_if_before(SimTime::from_secs(4)), None);
        assert_eq!(q.len(), 2, "a miss must not disturb the queue");
        assert_eq!(
            q.pop_if_before(SimTime::from_secs(5)),
            Some((SimTime::from_secs(5), "a"))
        );
        assert_eq!(q.pop_if_before(SimTime::from_secs(5)), None);
        assert_eq!(
            q.pop_if_before(SimTime::MAX),
            Some((SimTime::from_secs(9), "b"))
        );
        assert_eq!(q.pop_if_before(SimTime::MAX), None);
    }

    #[test]
    fn cancel_skips_event_and_tracks_counts() {
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        let _c = q.schedule_keyed(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 3);
        assert_eq!(q.live_len(), 2);
        assert_eq!(q.tombstoned_len(), 1);
        assert!(!q.cancel(b), "double-cancel is a no-op");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert_eq!(q.tombstoned_len(), 0);
    }

    #[test]
    fn cancel_front_keeps_next_time_accurate() {
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let _b = q.schedule_keyed(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        // The cancelled front must not leak into peeks.
        assert_eq!(q.next_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop_if_before(SimTime::from_secs(1)), None);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn popping_never_leaves_a_tombstone_at_the_front() {
        // Regression: cancel a non-front entry, then pop the front. The
        // tombstone surfaces, and every peek-based API must behave as if
        // it were gone.
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        let _c = q.schedule_keyed(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.next_time(), Some(SimTime::from_secs(3)));
        assert_eq!(
            q.pop_if_before(SimTime::from_secs(2)),
            None,
            "cancelled front must not admit a past-horizon event"
        );
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.tombstoned_len(), 0, "tombstone discarded on surfacing");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_fast_path_skips_surfacing_tombstones() {
        // Regression: cancelling the front removes it; the entry that
        // surfaces in its place may itself be tombstoned and must be
        // discarded too.
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        let _c = q.schedule_keyed(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert!(q.cancel(a));
        assert_eq!(q.next_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.tombstoned_len(), 0);
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn is_empty_true_when_all_remaining_entries_are_cancelled() {
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        assert!(q.cancel(b));
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(q.is_empty(), "only a tombstone remained");
        assert_eq!(q.live_len(), 0);
        assert_eq!(q.next_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a));
        assert_eq!(q.tombstoned_len(), 0, "no phantom tombstone");
    }

    #[test]
    fn tombstones_are_compacted_when_they_dominate() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..1000)
            .map(|i| q.schedule_keyed(SimTime::from_secs(1 + i), i))
            .collect();
        // Cancel all but every 10th event; compaction must kick in well
        // before the end and keep the queue from filling with tombstones.
        for (i, k) in keys.iter().enumerate() {
            if i % 10 != 0 {
                q.cancel(*k);
            }
        }
        assert_eq!(q.live_len(), 100);
        assert!(
            q.len() < 300,
            "tombstones should have been compacted: len={}",
            q.len()
        );
        // Survivors still pop in order.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..1000).step_by(10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(1), "c"); // earlier than "b", fine to add
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn debug_shows_live_and_tombstoned() {
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), 1);
        let b = q.schedule_keyed(SimTime::from_secs(2), 2);
        q.cancel(b);
        let dbg = format!("{q:?}");
        assert!(dbg.contains("live: 1"), "{dbg}");
        assert!(dbg.contains("tombstoned: 1"), "{dbg}");
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        // Events beyond the wheel span (2^42 µs ≈ 51 days) sit in the
        // overflow heap and drain back through the wheel in order.
        let mut q = EventQueue::new();
        let span = 1u64 << 42;
        q.schedule(SimTime::from_micros(3 * span + 17), "far-c");
        q.schedule(SimTime::from_micros(span + 5), "far-a");
        q.schedule(SimTime::from_micros(42), "near");
        q.schedule(SimTime::from_micros(span + 5), "far-b"); // same-time tie across blocks
        assert_eq!(q.next_time(), Some(SimTime::from_micros(42)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far-a");
        assert_eq!(q.pop().unwrap().1, "far-b");
        assert_eq!(q.pop().unwrap().1, "far-c");
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_before_cursor_lands_in_early_heap_and_pops_first() {
        // Popping advances the cursor to bucket bases ahead of the popped
        // time; a subsequent schedule in that gap must still pop before
        // everything later.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), "a");
        q.schedule(SimTime::from_micros(1_000_000), "z");
        assert_eq!(q.pop().unwrap().1, "a");
        // Cursor has advanced toward "z"; 200 µs is now behind it.
        q.schedule(SimTime::from_micros(200), "b");
        q.schedule(SimTime::from_micros(150), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "z");
        assert!(q.is_empty());
    }

    #[test]
    fn random_workout_matches_sorted_reference() {
        // Deterministic pseudo-random schedule/pop storm against a sorted
        // reference: the queue must agree with a stable sort by (time, seq).
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u64)> = Vec::new(); // (time_us, payload)
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for round in 0..50u64 {
            for _ in 0..40 {
                let t = next(10_000);
                let payload = next(u64::MAX);
                q.schedule(SimTime::from_micros(t), payload);
                expected.push((t, payload));
            }
            // Pop a prefix bounded by a horizon.
            let horizon = round * 200;
            expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order per t
            while let Some((t, got)) = q.pop_if_before(SimTime::from_micros(horizon)) {
                let (et, ep) = expected.remove(0);
                assert_eq!((et, ep), (t.as_micros(), got));
            }
            if let Some(&(et, _)) = expected.first() {
                assert!(et > horizon);
            }
        }
        expected.sort_by_key(|&(t, _)| t);
        while let Some((t, got)) = q.pop() {
            let (et, ep) = expected.remove(0);
            assert_eq!((et, ep), (t.as_micros(), got));
        }
        assert!(expected.is_empty());
    }

    #[test]
    fn steady_state_timer_churn_reuses_slab_capacity() {
        // A heartbeat-like workload (schedule on pop) must not grow the
        // payload slab beyond its steady-state live count.
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.schedule(SimTime::from_micros(i * 13), i);
        }
        for _ in 0..10_000 {
            let (t, i) = q.pop().expect("queue is kept at 64 live entries");
            q.schedule(t + crate::SimDuration::from_micros(997), i);
        }
        assert_eq!(q.live_len(), 64);
        assert!(
            q.slab.len() <= 65,
            "slab should stay at steady-state size, got {}",
            q.slab.len()
        );
    }
}
