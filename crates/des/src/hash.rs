//! A fast, deterministic hasher for the simulator's keyed-only maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3, which buys
//! hash-flooding resistance the simulator does not need: its maps are
//! keyed by dense internal ids (sequence numbers, arena handles, tags),
//! none of which are attacker-controlled, and several sit on the
//! per-event hot path where SipHash's per-key cost is measurable.
//!
//! [`FxHasher`] is the multiply-xor hash used by the Rust compiler's
//! internals: one rotate, one xor, and one multiply per word of input.
//! It is fully deterministic across runs, platforms, and process
//! restarts (no random seed), so swapping it in cannot perturb
//! simulation traces — with the standing caveat (enforced by
//! `cpsim-lint`) that hash-map *iteration order* must never reach an
//! emit path, since it shifts whenever the hasher, capacity, or
//! insertion history does.
//!
//! Use the [`FastMap`]/[`FastSet`] aliases for hot keyed-only maps; keep
//! `BTreeMap` wherever iteration order is observable by design.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`]: for keyed-only access patterns on
/// hot paths. Iteration order must never be observed.
// cpsim-lint: allow(no-unordered-iteration): alias definition; every use site carries its own keyed-only justification
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` backed by [`FxHasher`]: membership probes only.
// cpsim-lint: allow(no-unordered-iteration): alias definition; every use site carries its own keyed-only justification
pub type FastSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Multiplier from the FxHash scheme: a weak-avalanche odd constant
/// (derived from the golden ratio) that spreads low-entropy integer keys
/// well enough for hashbrown's 7-bit control-byte probing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-xor hasher. Deterministic: zero state, no
/// per-process seed.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail word so "ab" != "ab\0".
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000 {
            m.insert(i * 7919, i as u32);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as u32)));
        }
        let mut s: FastSet<(u32, u32)> = FastSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }

    #[test]
    fn distinct_strings_hash_distinctly() {
        use std::hash::BuildHasher;
        let b = BuildHasherDefault::<FxHasher>::default();
        // Not a collision-resistance claim — just a smoke test that the
        // tail length-tag separates prefix-equal keys.
        assert_ne!(b.hash_one("create-vm"), b.hash_one("create-v"));
        assert_ne!(b.hash_one(""), b.hash_one("\0"));
    }
}
