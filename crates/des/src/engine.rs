//! The simulation driver: pops events in `(time, seq)` order and hands them
//! to a [`Model`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::time::SimTime;
use crate::wheel::EventQueue;

/// Process-wide tally of events handled by every [`Simulation`], flushed at
/// the end of each `run_*` call (so the per-event hot path never touches
/// shared state). The `cpsim-bench` harness snapshots it around an
/// experiment to report events/sec; with parallel sweeps the workers have
/// all joined by then, so the delta is exact.
static GLOBAL_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Total events processed by all simulations in this process so far.
///
/// Monotonic; take a snapshot before and after a region to attribute a
/// delta to it. Only updated when a `run_*` call returns (single
/// [`Simulation::step`] calls are flushed on the next `run_*`).
pub fn global_events_processed() -> u64 {
    GLOBAL_EVENTS.load(Ordering::Relaxed)
}

/// A simulated system: owns the state and reacts to events.
///
/// Handlers receive the event queue so they can schedule follow-up events;
/// they must never schedule into the past (enforced by [`Simulation`]).
pub trait Model {
    /// The event vocabulary of this model.
    type Event;

    /// Reacts to `event` occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (see [`Simulation::set_event_limit`]).
    EventLimit,
}

/// Ceiling on `size_of::<M::Event>()`, enforced at compile time by
/// [`Simulation::new`].
///
/// Every schedule and pop copies the payload through the timer wheel's
/// slab, so event size is pure memcpy weight on the kernel hot path. The
/// profile showed outsized enum variants (a 64-byte `OpKind::AddHost`
/// dragging whole event unions along) dominating that cost; boxing the
/// rare fat variants keeps the common events under this cap. If a new
/// variant trips the assert, box its payload rather than raising the cap.
pub const MAX_EVENT_BYTES: usize = 64;

/// A running simulation: a [`Model`] plus its event queue and clock.
pub struct Simulation<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
    /// Portion of `processed` already flushed to [`GLOBAL_EVENTS`].
    flushed: u64,
    event_limit: u64,
}

impl<M: Model> Simulation<M> {
    /// Creates a simulation at time zero with an empty event queue.
    pub fn new(model: M) -> Self {
        const {
            assert!(
                std::mem::size_of::<M::Event>() <= MAX_EVENT_BYTES,
                "event payload exceeds MAX_EVENT_BYTES: box the outsized variant"
            );
        }
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            flushed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Schedules an initial event. Usable before and between runs.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current simulation time.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.schedule(time, event);
    }

    /// Caps the total number of events processed over the simulation's
    /// lifetime; `run_*` returns [`RunOutcome::EventLimit`] when exceeded.
    ///
    /// This is a safety net against accidental event storms in tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Current simulation time (the timestamp of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// The model state.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model state (for injecting external changes
    /// between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the simulation and returns the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// The timestamp of the next pending event, if any.
    ///
    /// This is the shard-lookahead primitive for conservative parallel
    /// execution: a partitioned runner publishes it as the shard's lower
    /// bound on future shared-state interaction before dispatching each
    /// event (see `cpsim-federation`).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Processes a single event, returning `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                self.processed += 1;
                self.model.handle(time, event, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains, the event budget is exhausted, or the
    /// next event would fire strictly after `horizon`.
    ///
    /// On return the clock is `max(now, horizon)` unless the event budget
    /// stopped the run, so consecutive horizons compose:
    /// `run_until(a); run_until(b)` with `a <= b` is equivalent to
    /// `run_until(b)`.
    ///
    /// The hot path is a single fused
    /// [`pop_if_before`](EventQueue::pop_if_before) per event instead of
    /// the peek-compare-pop sequence a naive loop would issue.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let outcome = loop {
            if self.processed >= self.event_limit {
                match self.queue.next_time() {
                    Some(t) if t <= horizon => break RunOutcome::EventLimit,
                    Some(_) => {
                        self.now = horizon;
                        break RunOutcome::HorizonReached;
                    }
                    None => {
                        if self.now < horizon {
                            self.now = horizon;
                        }
                        break RunOutcome::Drained;
                    }
                }
            }
            match self.queue.pop_if_before(horizon) {
                Some((time, event)) => {
                    debug_assert!(time >= self.now, "event queue went backwards");
                    self.now = time;
                    self.processed += 1;
                    self.model.handle(time, event, &mut self.queue);
                }
                None if self.queue.is_empty() => {
                    if self.now < horizon {
                        self.now = horizon;
                    }
                    break RunOutcome::Drained;
                }
                None => {
                    self.now = horizon;
                    break RunOutcome::HorizonReached;
                }
            }
        };
        self.flush_events();
        outcome
    }

    /// Runs until the event queue is empty (or the event budget is hit).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        let outcome = loop {
            if self.queue.is_empty() {
                break RunOutcome::Drained;
            }
            if self.processed >= self.event_limit {
                break RunOutcome::EventLimit;
            }
            self.step();
        };
        self.flush_events();
        outcome
    }

    /// Adds events processed since the last flush to the process-wide
    /// counter (see [`global_events_processed`]).
    fn flush_events(&mut self) {
        let delta = self.processed - self.flushed;
        if delta > 0 {
            GLOBAL_EVENTS.fetch_add(delta, Ordering::Relaxed);
            self.flushed = self.processed;
        }
    }
}

impl<M: Model + std::fmt::Debug> std::fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .field("pending", &self.queue.len())
            .field("model", &self.model)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Debug, Default)]
    struct Counter {
        seen: Vec<(SimTime, u32)>,
        respawn: bool,
    }

    enum Ev {
        N(u32),
    }

    impl Model for Counter {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, Ev::N(n): Ev, queue: &mut EventQueue<Ev>) {
            self.seen.push((now, n));
            if self.respawn && n < 10 {
                queue.schedule(now + SimDuration::from_secs(1), Ev::N(n + 1));
            }
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut sim = Simulation::new(Counter {
            respawn: true,
            ..Default::default()
        });
        sim.schedule(SimTime::ZERO, Ev::N(0));
        let outcome = sim.run_until(SimTime::from_secs(4));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(sim.model().seen.len(), 5); // events at t = 0..=4
        assert_eq!(sim.now(), SimTime::from_secs(4));

        // Continuing to a later horizon picks up where we left off.
        let outcome = sim.run_until(SimTime::from_secs(100));
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(sim.model().seen.len(), 11);
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn drained_advances_clock_to_horizon() {
        let mut sim = Simulation::new(Counter::default());
        assert_eq!(sim.run_until(SimTime::from_secs(9)), RunOutcome::Drained);
        assert_eq!(sim.now(), SimTime::from_secs(9));
    }

    #[test]
    fn event_limit_stops_runaway() {
        let mut sim = Simulation::new(Counter {
            respawn: true,
            ..Default::default()
        });
        sim.set_event_limit(3);
        sim.schedule(SimTime::ZERO, Ev::N(0));
        assert_eq!(sim.run_to_completion(), RunOutcome::EventLimit);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn event_limit_stops_run_until_and_resumes() {
        let mut sim = Simulation::new(Counter {
            respawn: true,
            ..Default::default()
        });
        sim.set_event_limit(2);
        sim.schedule(SimTime::ZERO, Ev::N(0));
        assert_eq!(
            sim.run_until(SimTime::from_secs(100)),
            RunOutcome::EventLimit
        );
        assert_eq!(sim.events_processed(), 2);
        // The clock stays at the last processed event, not the horizon.
        assert_eq!(sim.now(), SimTime::from_secs(1));
        // Raising the budget resumes cleanly.
        sim.set_event_limit(u64::MAX);
        assert_eq!(sim.run_until(SimTime::from_secs(100)), RunOutcome::Drained);
        assert_eq!(sim.model().seen.len(), 11);
    }

    #[test]
    fn global_counter_accumulates_processed_events() {
        let before = global_events_processed();
        let mut sim = Simulation::new(Counter {
            respawn: true,
            ..Default::default()
        });
        sim.schedule(SimTime::ZERO, Ev::N(0));
        sim.run_to_completion();
        // Other tests on sibling threads may also bump the counter, so
        // only a lower bound is assertable.
        assert!(global_events_processed() - before >= 11);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(Counter::default());
        sim.schedule(SimTime::from_secs(1), Ev::N(1));
        sim.run_to_completion();
        sim.schedule(SimTime::ZERO, Ev::N(0));
    }

    #[test]
    fn next_event_time_tracks_the_queue_head() {
        let mut sim = Simulation::new(Counter::default());
        assert_eq!(sim.next_event_time(), None);
        sim.schedule(SimTime::from_secs(5), Ev::N(1));
        sim.schedule(SimTime::from_secs(2), Ev::N(0));
        assert_eq!(sim.next_event_time(), Some(SimTime::from_secs(2)));
        sim.step();
        assert_eq!(sim.next_event_time(), Some(SimTime::from_secs(5)));
        sim.step();
        assert_eq!(sim.next_event_time(), None);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut sim = Simulation::new(Counter::default());
        assert!(!sim.step());
        sim.schedule(SimTime::ZERO, Ev::N(7));
        assert!(sim.step());
        assert_eq!(sim.into_model().seen, vec![(SimTime::ZERO, 7)]);
    }
}
