//! Reproducible randomness: independently-seeded streams derived from one
//! master seed.
//!
//! Every stochastic component in the simulator draws from its own stream so
//! that adding a component (or reordering draws inside one) does not perturb
//! the others. Streams are derived with a SplitMix64 finalizer, which is the
//! standard recommendation for seeding from correlated inputs.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG type used throughout the workspace.
///
/// `SmallRng` is deterministic for a given seed on a given rand version,
/// which is all the simulator requires (no cryptographic needs).
pub type SimRng = SmallRng;

/// SplitMix64 finalizer: decorrelates nearby `(master, stream)` pairs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a well-mixed 64-bit seed for `stream` under `master`.
///
/// ```
/// use cpsim_des::derive_seed;
/// assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
/// assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
/// assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(splitmix64(master) ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// A factory of named random streams under a single master seed.
///
/// ```
/// use cpsim_des::Streams;
/// use rand::Rng;
///
/// let streams = Streams::new(42);
/// let mut a = streams.rng(Streams::ARRIVALS);
/// let mut b = streams.rng(Streams::SERVICE);
/// let (x, y): (f64, f64) = (a.gen(), b.gen());
/// assert_ne!(x, y);
///
/// // Re-deriving the same stream reproduces it exactly.
/// let mut a2 = streams.rng(Streams::ARRIVALS);
/// assert_eq!(a.gen::<u64>(), { let _ : f64 = a2.gen(); a2.gen::<u64>() });
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Streams {
    master: u64,
}

impl Streams {
    /// Stream id for workload arrival processes.
    pub const ARRIVALS: u64 = 1;
    /// Stream id for service-time / cost-model draws.
    pub const SERVICE: u64 = 2;
    /// Stream id for placement decisions.
    pub const PLACEMENT: u64 = 3;
    /// Stream id for workload shape choices (op mix, sizes, lifetimes).
    pub const WORKLOAD: u64 = 4;
    /// Stream id for fault/failure injection.
    pub const FAULTS: u64 = 5;
    /// First id guaranteed never to be used by the workspace itself;
    /// applications may use `USER_BASE + k`.
    pub const USER_BASE: u64 = 1_000;

    /// Creates a stream factory for `master`.
    pub fn new(master: u64) -> Self {
        Streams { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Instantiates the RNG for `stream`.
    pub fn rng(&self, stream: u64) -> SimRng {
        SimRng::seed_from_u64(derive_seed(self.master, stream))
    }

    /// Derives a sub-factory, e.g. one per simulated host, so each entity
    /// gets decorrelated streams.
    pub fn substreams(&self, stream: u64) -> Streams {
        Streams {
            master: derive_seed(self.master, stream),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let s = Streams::new(123);
        let mut a = s.rng(Streams::ARRIVALS);
        let mut b = s.rng(Streams::ARRIVALS);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let s = Streams::new(123);
        let mut a = s.rng(Streams::ARRIVALS);
        let mut b = s.rng(Streams::SERVICE);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_masters_diverge() {
        let mut a = Streams::new(1).rng(Streams::ARRIVALS);
        let mut b = Streams::new(2).rng(Streams::ARRIVALS);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn substreams_are_decorrelated_from_parent() {
        let s = Streams::new(99);
        let sub = s.substreams(7);
        assert_ne!(s.master(), sub.master());
        let mut a = s.rng(1);
        let mut b = sub.rng(1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derive_seed_avalanches_low_bits() {
        // Consecutive stream ids should produce wildly different seeds.
        let s0 = derive_seed(0, 0);
        let s1 = derive_seed(0, 1);
        assert!((s0 ^ s1).count_ones() > 10);
    }
}
