//! Deterministic discrete-event simulation kernel.
//!
//! `cpsim-des` provides the small set of primitives the rest of the
//! workspace builds on:
//!
//! - [`SimTime`] / [`SimDuration`]: microsecond-resolution virtual time;
//! - [`EventQueue`] and [`Simulation`]: a totally-ordered event loop with a
//!   deterministic tie-break, so a fixed seed always yields the same run;
//! - [`rng`]: reproducible, independently-seeded random streams derived from
//!   one master seed;
//! - [`Dist`]: a serializable distribution vocabulary used by workload and
//!   cost models;
//! - [`resource`]: queueing building blocks — a multi-server FIFO queue, a
//!   counting slot pool for admission limits, and a processor-sharing
//!   shared-bandwidth engine for bulk data transfers.
//!
//! # Example
//!
//! ```
//! use cpsim_des::{EventQueue, Model, SimDuration, SimTime, Simulation};
//!
//! struct Ping {
//!     remaining: u32,
//!     fired_at: Vec<SimTime>,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl Model for Ping {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, queue: &mut EventQueue<Ev>) {
//!         self.fired_at.push(now);
//!         if self.remaining > 0 {
//!             self.remaining -= 1;
//!             queue.schedule(now + SimDuration::from_secs(1), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Ping { remaining: 2, fired_at: Vec::new() });
//! sim.schedule(SimTime::ZERO, Ev::Tick);
//! sim.run_to_completion();
//! assert_eq!(sim.model().fired_at.len(), 3);
//! assert_eq!(sim.now(), SimTime::from_secs(2));
//! ```

pub mod dist;
pub mod engine;
pub mod hash;
pub mod queue;
pub mod reference;
pub mod resource;
pub mod rng;
pub mod time;
pub mod wheel;

pub use dist::{Dist, DistError};
pub use engine::{global_events_processed, Model, RunOutcome, Simulation, MAX_EVENT_BYTES};
pub use hash::{FastMap, FastSet, FxHasher};
pub use queue::{TimerToken, TokenGen};
pub use reference::ReferenceQueue;
pub use resource::bandwidth::{SharedBandwidth, TransferDone, TransferPlan};
pub use resource::fifo::FifoQueue;
pub use resource::slots::SlotPool;
pub use resource::timeweighted::TimeWeighted;
pub use rng::{derive_seed, SimRng, Streams};
pub use time::{SimDuration, SimTime};
pub use wheel::{EventKey, EventQueue};
