//! A small, serializable distribution vocabulary.
//!
//! Workload profiles and cost models are *data* in this workspace (they are
//! written to and read from JSON), so distributions are represented as a
//! closed enum rather than trait objects. All samples are non-negative:
//! these distributions model durations, sizes, and counts.

use std::fmt;
use std::sync::OnceLock;

use rand::{Rng, RngCore};
use rand_distr::{Distribution, LogNormal, Pareto, Weibull};
use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Error constructing a [`Dist`] with invalid parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct DistError {
    what: String,
}

impl DistError {
    fn new(what: impl Into<String>) -> Self {
        DistError { what: what.into() }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.what)
    }
}

impl std::error::Error for DistError {}

/// A non-negative scalar distribution.
///
/// ```
/// use cpsim_des::{Dist, Streams};
/// let d = Dist::exponential(2.0)?;
/// let mut rng = Streams::new(7).rng(0);
/// let mean: f64 = (0..10_000).map(|_| d.sample(&mut rng)).sum::<f64>() / 10_000.0;
/// assert!((mean - 2.0).abs() < 0.1);
/// # Ok::<(), cpsim_des::DistError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always `value`.
    Constant { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean (not rate).
    Exponential { mean: f64 },
    /// Log-normal parametrized by its median (`exp(mu)`) and `sigma`.
    LogNormal { median: f64, sigma: f64 },
    /// Pareto with minimum `scale` and tail index `shape`.
    Pareto { scale: f64, shape: f64 },
    /// Weibull with the given `scale` and `shape`.
    Weibull { scale: f64, shape: f64 },
    /// Inverse-CDF sampling with linear interpolation over sorted `points`.
    Empirical { points: Vec<f64> },
}

impl Dist {
    /// A point mass at `value`.
    ///
    /// # Errors
    ///
    /// Returns an error if `value` is negative or non-finite.
    pub fn constant(value: f64) -> Result<Self, DistError> {
        ensure_nonneg("constant value", value)?;
        Ok(Dist::Constant { value })
    }

    /// Uniform on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= lo <= hi` and both are finite.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, DistError> {
        ensure_nonneg("uniform lo", lo)?;
        ensure_nonneg("uniform hi", hi)?;
        if lo > hi {
            return Err(DistError::new(format!("uniform lo {lo} > hi {hi}")));
        }
        Ok(Dist::Uniform { lo, hi })
    }

    /// Exponential with mean `mean`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `mean > 0` and finite.
    pub fn exponential(mean: f64) -> Result<Self, DistError> {
        ensure_pos("exponential mean", mean)?;
        Ok(Dist::Exponential { mean })
    }

    /// Log-normal with median `median` and log-space deviation `sigma`.
    ///
    /// The mean is `median * exp(sigma^2 / 2)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `median > 0` and `sigma >= 0`, both finite.
    pub fn log_normal(median: f64, sigma: f64) -> Result<Self, DistError> {
        ensure_pos("log-normal median", median)?;
        ensure_nonneg("log-normal sigma", sigma)?;
        Ok(Dist::LogNormal { median, sigma })
    }

    /// Pareto with minimum value `scale` and tail index `shape`.
    ///
    /// # Errors
    ///
    /// Returns an error unless both are positive and finite.
    pub fn pareto(scale: f64, shape: f64) -> Result<Self, DistError> {
        ensure_pos("pareto scale", scale)?;
        ensure_pos("pareto shape", shape)?;
        Ok(Dist::Pareto { scale, shape })
    }

    /// Weibull with the given `scale` and `shape`.
    ///
    /// # Errors
    ///
    /// Returns an error unless both are positive and finite.
    pub fn weibull(scale: f64, shape: f64) -> Result<Self, DistError> {
        ensure_pos("weibull scale", scale)?;
        ensure_pos("weibull shape", shape)?;
        Ok(Dist::Weibull { scale, shape })
    }

    /// Empirical distribution over observed `points` (need not be sorted).
    ///
    /// Sampling draws `u ~ U[0,1)` and linearly interpolates the sorted
    /// points at rank `u * (n-1)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `points` is empty or contains negative or
    /// non-finite values.
    pub fn empirical(mut points: Vec<f64>) -> Result<Self, DistError> {
        if points.is_empty() {
            return Err(DistError::new("empirical points must be non-empty"));
        }
        for &p in &points {
            ensure_nonneg("empirical point", p)?;
        }
        points.sort_by(|a, b| a.total_cmp(b));
        Ok(Dist::Empirical { points })
    }

    /// Draws one sample. Always finite and non-negative.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let x = match self {
            Dist::Constant { value } => *value,
            Dist::Uniform { lo, hi } => {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            }
            Dist::Exponential { mean } => mean * sample_exp1(rng),
            Dist::LogNormal { median, sigma } => LogNormal::new(median.ln(), *sigma)
                .expect("validated")
                .sample(rng),
            Dist::Pareto { scale, shape } => {
                Pareto::new(*scale, *shape).expect("validated").sample(rng)
            }
            Dist::Weibull { scale, shape } => {
                Weibull::new(*scale, *shape).expect("validated").sample(rng)
            }
            Dist::Empirical { points } => {
                let n = points.len();
                if n == 1 {
                    points[0]
                } else {
                    let u: f64 = rng.gen::<f64>() * (n - 1) as f64;
                    let i = u.floor() as usize;
                    let frac = u - i as f64;
                    let j = (i + 1).min(n - 1);
                    points[i] + (points[j] - points[i]) * frac
                }
            }
        };
        if x.is_finite() && x >= 0.0 {
            x
        } else {
            0.0
        }
    }

    /// The analytic mean, where one exists.
    ///
    /// Pareto with `shape <= 1` has no finite mean and returns `None`.
    pub fn mean(&self) -> Option<f64> {
        match self {
            Dist::Constant { value } => Some(*value),
            Dist::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Dist::Exponential { mean } => Some(*mean),
            Dist::LogNormal { median, sigma } => Some(median * (sigma * sigma / 2.0).exp()),
            Dist::Pareto { scale, shape } => {
                if *shape > 1.0 {
                    Some(shape * scale / (shape - 1.0))
                } else {
                    None
                }
            }
            Dist::Weibull { scale, shape } => Some(scale * gamma(1.0 + 1.0 / shape)),
            Dist::Empirical { points } => Some(points.iter().sum::<f64>() / points.len() as f64),
        }
    }
}

// ---- Exp(1) ziggurat -------------------------------------------------------
//
// Exponential service/arrival times are by far the hottest samples in the
// workspace (every CPU slice, DB statement, and arrival gap draws one), and
// the inverse-CDF `-ln(u)/λ` pays a full `ln` per draw — the dominant libm
// weight in the suite profile. The 256-layer ziggurat (Marsaglia & Tsang,
// constants per Doornik) replaces ~98.9 % of draws with one u64, one
// multiply and one table compare; `ln`/`exp` only run on the rare wedge and
// tail rejections.
//
// Note: this changes the exponential sample stream (same distribution,
// different draws), so all experiment outputs and bench baselines were
// regenerated once when it landed.

/// Number of ziggurat layers (index byte comes straight off the u64 draw).
const ZIG_LAYERS: usize = 256;
/// Right edge `r` of the base layer for the 256-layer Exp(1) ziggurat.
const ZIG_R: f64 = 7.697_117_470_131_05;
/// Common layer area `v`.
const ZIG_V: f64 = 3.949_659_822_581_557e-3;
/// 2^-53: maps the top 53 bits of a u64 draw onto `[0, 1)`.
const ZIG_U: f64 = 1.0 / (1u64 << 53) as f64;

/// Layer edges `x[i]` (decreasing, `x[256] = 0`) and the density there
/// `f[i] = exp(-x[i])` (increasing, `f[256] = 1`). `x[0]` is the stretched
/// pseudo-base `v / f(r)` so the base draw lands in the tail with exactly
/// the tail's probability mass.
struct ExpZig {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
}

fn exp_zig() -> &'static ExpZig {
    static TABLES: OnceLock<ExpZig> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0; ZIG_LAYERS + 1];
        let mut f = [0.0; ZIG_LAYERS + 1];
        f[0] = 1.0; // unused (base layer never takes the wedge path)
        x[1] = ZIG_R;
        f[1] = (-ZIG_R).exp();
        x[0] = ZIG_V / f[1];
        for i in 1..ZIG_LAYERS {
            // Each layer has area v: x[i] * (f[i+1] - f[i]) = v.
            f[i + 1] = ZIG_V / x[i] + f[i];
            x[i + 1] = -(f[i + 1].ln());
        }
        // The recurrence must close on the mode, (x, f) = (0, 1), up to
        // accumulated rounding; pin it exactly.
        debug_assert!(
            x[ZIG_LAYERS].abs() < 1e-7,
            "ziggurat drift {}",
            x[ZIG_LAYERS]
        );
        x[ZIG_LAYERS] = 0.0;
        f[ZIG_LAYERS] = 1.0;
        ExpZig { x, f }
    })
}

/// One Exp(1) draw via the ziggurat.
fn sample_exp1(rng: &mut SimRng) -> f64 {
    let z = exp_zig();
    loop {
        let bits = rng.next_u64();
        let j = (bits & (ZIG_LAYERS as u64 - 1)) as usize;
        let u = (bits >> 11) as f64 * ZIG_U;
        let x = u * z.x[j];
        if x < z.x[j + 1] {
            // Strictly inside the next-narrower layer: under the curve.
            return x;
        }
        if j == 0 {
            // Base overflow is the tail; memorylessness gives r + Exp(1).
            let u2 = (rng.next_u64() >> 11) as f64 * ZIG_U;
            return ZIG_R - (1.0 - u2).ln();
        }
        // Wedge: uniform height within the layer strip vs the density.
        let u2 = (rng.next_u64() >> 11) as f64 * ZIG_U;
        if z.f[j] + u2 * (z.f[j + 1] - z.f[j]) < (-x).exp() {
            return x;
        }
    }
}

fn ensure_nonneg(what: &str, v: f64) -> Result<(), DistError> {
    if v.is_finite() && v >= 0.0 {
        Ok(())
    } else {
        Err(DistError::new(format!(
            "{what} must be finite and >= 0, got {v}"
        )))
    }
}

fn ensure_pos(what: &str, v: f64) -> Result<(), DistError> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(DistError::new(format!(
            "{what} must be finite and > 0, got {v}"
        )))
    }
}

/// Lanczos approximation of the gamma function, used only for the Weibull
/// mean (accurate to ~1e-13 on the arguments that arise here).
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Streams;

    fn rng() -> SimRng {
        Streams::new(2024).rng(0)
    }

    fn empirical_mean(d: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_always_same() {
        let d = Dist::constant(3.5).unwrap();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 3.5);
        }
        assert_eq!(d.mean(), Some(3.5));
    }

    #[test]
    fn uniform_stays_in_range() {
        let d = Dist::uniform(1.0, 2.0).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((1.0..2.0).contains(&x));
        }
        assert!((empirical_mean(&d, 20_000) - 1.5).abs() < 0.02);
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let d = Dist::uniform(2.0, 2.0).unwrap();
        assert_eq!(d.sample(&mut rng()), 2.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::exponential(4.0).unwrap();
        assert!((empirical_mean(&d, 50_000) - 4.0).abs() < 0.15);
        assert_eq!(d.mean(), Some(4.0));
    }

    #[test]
    fn ziggurat_tables_are_consistent() {
        let z = exp_zig();
        // Edges decrease from r to 0; densities increase from f(r) to 1.
        assert_eq!(z.x[1], ZIG_R);
        assert_eq!(z.x[ZIG_LAYERS], 0.0);
        assert_eq!(z.f[ZIG_LAYERS], 1.0);
        for i in 1..ZIG_LAYERS {
            assert!(z.x[i] > z.x[i + 1], "x not decreasing at {i}");
            assert!(z.f[i] < z.f[i + 1], "f not increasing at {i}");
            assert!((z.f[i] - (-z.x[i]).exp()).abs() < 1e-12);
            // Every layer rectangle has the common area v.
            let area = z.x[i] * (z.f[i + 1] - z.f[i]);
            assert!((area - ZIG_V).abs() < 1e-9, "layer {i} area {area}");
        }
        // The pseudo-base is the stretched tail rectangle.
        assert!((z.x[0] - ZIG_V / (-ZIG_R).exp()).abs() < 1e-9);
    }

    #[test]
    fn ziggurat_matches_exponential_shape() {
        // Beyond the mean check: the variance and tail mass must match
        // Exp(λ) too, which catches layer/wedge bookkeeping mistakes the
        // mean alone would hide.
        let d = Dist::exponential(1.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let (mut sum, mut sum2, mut tail) = (0.0f64, 0.0f64, 0u32);
        for _ in 0..n {
            let x = d.sample(&mut r);
            sum += x;
            sum2 += x * x;
            if x > ZIG_R {
                tail += 1;
            }
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
        // P(X > r) = e^-r ≈ 4.54e-4: expect ~91 of 200k, well within 4σ.
        let expected = n as f64 * (-ZIG_R).exp();
        assert!(
            (f64::from(tail) - expected).abs() < 4.0 * expected.sqrt() + 1.0,
            "tail {tail} vs {expected:.1}"
        );
    }

    #[test]
    fn log_normal_median_and_mean() {
        let d = Dist::log_normal(10.0, 0.5).unwrap();
        let analytic = 10.0 * (0.125f64).exp();
        assert!((empirical_mean(&d, 100_000) - analytic).abs() / analytic < 0.05);
        assert!((d.mean().unwrap() - analytic).abs() < 1e-9);
    }

    #[test]
    fn pareto_mean() {
        let d = Dist::pareto(1.0, 3.0).unwrap();
        assert_eq!(d.mean(), Some(1.5));
        assert!((empirical_mean(&d, 200_000) - 1.5).abs() < 0.05);
        assert_eq!(Dist::pareto(1.0, 0.9).unwrap().mean(), None);
    }

    #[test]
    fn weibull_mean_uses_gamma() {
        // shape 1 reduces to exponential: mean == scale.
        let d = Dist::weibull(2.0, 1.0).unwrap();
        assert!((d.mean().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_interpolates() {
        let d = Dist::empirical(vec![3.0, 1.0, 2.0]).unwrap();
        let mut r = rng();
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((1.0..=3.0).contains(&x));
        }
        assert_eq!(d.mean(), Some(2.0));
        let single = Dist::empirical(vec![5.0]).unwrap();
        assert_eq!(single.sample(&mut r), 5.0);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(Dist::constant(-1.0).is_err());
        assert!(Dist::constant(f64::NAN).is_err());
        assert!(Dist::uniform(2.0, 1.0).is_err());
        assert!(Dist::exponential(0.0).is_err());
        assert!(Dist::log_normal(0.0, 1.0).is_err());
        assert!(Dist::pareto(1.0, 0.0).is_err());
        assert!(Dist::weibull(-1.0, 1.0).is_err());
        assert!(Dist::empirical(vec![]).is_err());
        assert!(Dist::empirical(vec![1.0, -2.0]).is_err());
        let msg = Dist::exponential(-1.0).unwrap_err().to_string();
        assert!(msg.contains("exponential mean"));
    }

    #[test]
    fn serde_round_trip() {
        let d = Dist::log_normal(8.0, 0.3).unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn samples_never_negative_or_nonfinite() {
        let dists = [
            Dist::exponential(1e-6).unwrap(),
            Dist::pareto(1e-9, 0.5).unwrap(),
            Dist::log_normal(1e300, 10.0).unwrap(),
        ];
        let mut r = rng();
        for d in &dists {
            for _ in 0..1000 {
                let x = d.sample(&mut r);
                assert!(x.is_finite() && x >= 0.0, "{d:?} produced {x}");
            }
        }
    }
}
