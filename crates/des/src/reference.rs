//! The previous event-queue kernel, kept as a **reference oracle**.
//!
//! [`ReferenceQueue`] is the four-ary index-min heap that served as the
//! simulation's pending-event set before the hierarchical timer wheel
//! ([`crate::EventQueue`]) replaced it. It stays in the tree — not behind
//! `#[cfg(test)]`, because the queue microbench measures wheel-vs-heap
//! directly — with two jobs:
//!
//! - **property-test oracle**: `tests/kernel_properties.rs` drives both
//!   kernels through identical schedule/cancel/pop churn and asserts the
//!   pop streams match exactly (the same style PR 3 used for `Placer`'s
//!   reference scan);
//! - **benchmark baseline**: `cpsim-bench --bench queue` reports the
//!   wheel's win over this heap on the periodic-timer pattern, so the
//!   speedup is measured, not asserted.
//!
//! It must not be used by simulation code; the wheel is the kernel.
//!
//! # Implementation
//!
//! A four-ary implicit min-heap ordered by `(time, seq)`: event sets here
//! routinely hold 10⁴–10⁵ pending events, and a 4-ary layout halves the
//! tree depth vs. a binary heap, so `pop` does half the cache-missing
//! levels per sift-down. Cancellation tombstones entries in place, skips
//! them at the root, and compacts in bulk once they dominate; the root is
//! never left tombstoned so peeks need no mutation.

use crate::time::SimTime;
use crate::wheel::EventKey;

/// Membership-only set of sequence numbers (cancellation bookkeeping).
/// See [`crate::wheel`] for why hash ordering cannot leak into event order.
// cpsim-lint: allow(no-unordered-iteration): membership-only probes; iteration order is never observed
type SeqSet = std::collections::HashSet<u64>;

/// Heap arity. Four children per node halves tree depth vs. a binary heap.
const ARITY: usize = 4;

/// Compact when tombstones outnumber live events and there are at least
/// this many of them (small queues are not worth the rebuild).
const COMPACT_MIN_TOMBSTONES: usize = 64;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// The retired heap kernel: a four-ary index-min heap with the same
/// `(time, seq)` total order, keyed cancellation, and tombstone
/// compaction as [`crate::EventQueue`]. Oracle and benchmark baseline
/// only — see the module docs.
#[derive(Default)]
pub struct ReferenceQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers cancelled while still pending. Invariant: the heap
    /// root is never cancelled (so [`next_time`](Self::next_time) needs no
    /// mutation). Only removals can surface a tombstone at the root
    /// (pushes sift the *new* entry up), so [`pop_raw`](Self::pop_raw)
    /// restores the invariant after every removal.
    cancelled: SeqSet,
    /// Sequence numbers scheduled via [`schedule_keyed`](Self::schedule_keyed)
    /// and still pending: lets `cancel` decide pendingness exactly in O(1).
    keyed: SeqSet,
}

impl<E> ReferenceQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceQueue {
            heap: Vec::new(),
            next_seq: 0,
            cancelled: SeqSet::new(),
            keyed: SeqSet::new(),
        }
    }

    #[inline]
    fn push_entry(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.sift_up(self.heap.len() - 1);
        seq
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.push_entry(time, event);
    }

    /// Schedules `event` at `time` and returns a key that can later
    /// [`cancel`](Self::cancel) it. Keys are interchangeable with the
    /// wheel's: both assign `EventKey(seq)` with the same seq sequence.
    pub fn schedule_keyed(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.push_entry(time, event);
        self.keyed.insert(seq);
        EventKey(seq)
    }

    /// Cancels a pending event by key; returns whether the key was live.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.keyed.remove(&key.0) {
            return false;
        }
        // Fast path: cancelling the root pops it immediately, keeping the
        // "root is live" invariant without a set lookup on every peek.
        if let Some(root) = self.heap.first() {
            if root.seq == key.0 {
                self.pop_raw();
                return true;
            }
        }
        self.cancelled.insert(key.0);
        if self.cancelled.len() >= COMPACT_MIN_TOMBSTONES
            && self.cancelled.len() * 2 > self.heap.len()
        {
            self.compact();
        }
        true
    }

    /// Drops every tombstoned entry and restores the heap invariant.
    fn compact(&mut self) {
        let cancelled = &mut self.cancelled;
        self.heap.retain(|e| !cancelled.remove(&e.seq));
        cancelled.clear();
        // Floyd heapify: sift down from the last parent to the root.
        if self.heap.len() > 1 {
            let last_parent = (self.heap.len() - 2) / ARITY;
            for i in (0..=last_parent).rev() {
                self.sift_down(i);
            }
        }
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let e = self.pop_raw()?;
            if !self.keyed.is_empty() {
                self.keyed.remove(&e.seq);
            }
            if self.cancelled.is_empty() || !self.cancelled.remove(&e.seq) {
                return Some((e.time, e.event));
            }
        }
    }

    /// Removes and returns the earliest live event **if it fires at or
    /// before `horizon`**; otherwise leaves the queue untouched.
    pub fn pop_if_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        // Root is never tombstoned, so its time is authoritative.
        if self.heap.first()?.time > horizon {
            return None;
        }
        self.pop()
    }

    /// The timestamp of the earliest pending live event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Number of pending entries, **including** tombstoned ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of pending events that will actually fire.
    pub fn live_len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Number of cancelled entries still occupying heap slots.
    pub fn tombstoned_len(&self) -> usize {
        self.cancelled.len()
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn pop_raw(&mut self) -> Option<Entry<E>> {
        let entry = self.remove_root();
        // Removing the root may promote a tombstoned entry into its place;
        // discard such entries now so the root-is-live invariant holds for
        // every peek (`next_time`, `pop_if_before`, `is_empty`).
        while let Some(root) = self.heap.first() {
            if !self.cancelled.remove(&root.seq) {
                break;
            }
            self.remove_root();
        }
        entry
    }

    fn remove_root(&mut self) -> Option<Entry<E>> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        self.heap.swap(0, len - 1);
        let entry = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        entry
    }

    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        self.heap[a].key() < self.heap[b].key()
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.less(i, parent) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + ARITY).min(len);
            for c in first + 1..end {
                if self.less(c, min) {
                    min = c;
                }
            }
            if self.less(min, i) {
                self.heap.swap(min, i);
                i = min;
            } else {
                break;
            }
        }
    }
}

impl<E> std::fmt::Debug for ReferenceQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReferenceQueue")
            .field("live", &self.live_len())
            .field("tombstoned", &self.tombstoned_len())
            .field("next_time", &self.next_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_and_breaks_ties_by_insertion() {
        let mut q = ReferenceQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule(SimTime::from_secs(2), 99);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 99]);
    }

    #[test]
    fn cancel_and_compaction_semantics_match_the_wheel() {
        let mut q = ReferenceQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        assert!(q.cancel(b));
        assert!(!q.cancel(b));
        assert_eq!(q.len(), 2);
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(q.is_empty());
        assert_eq!(q.tombstoned_len(), 0);
    }
}
