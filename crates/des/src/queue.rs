//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! The sequence number breaks ties between events scheduled for the same
//! instant in insertion order, which makes runs fully deterministic.
//! Cancellation is handled by the tombstone pattern: components that need to
//! reschedule a completion carry a [`TimerToken`] in the event payload and
//! ignore events whose token is stale (see [`TokenGen`]).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event set holding events of type `E`.
///
/// ```
/// use cpsim_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events at the same instant fire in the order they were scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.next_time())
            .finish()
    }
}

/// An opaque cancellation token produced by [`TokenGen`].
///
/// A scheduled event embeds the token current at scheduling time; when the
/// owning component reschedules, it bumps its generator, and the stale event
/// is ignored on delivery.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct TimerToken(u64);

/// Generator for [`TimerToken`]s, one per logically-cancellable timer.
///
/// ```
/// use cpsim_des::TokenGen;
/// let mut gen = TokenGen::new();
/// let first = gen.bump();
/// assert!(gen.is_current(first));
/// let second = gen.bump();
/// assert!(!gen.is_current(first));
/// assert!(gen.is_current(second));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TokenGen(u64);

impl TokenGen {
    /// Creates a generator whose initial token has never been issued.
    pub fn new() -> Self {
        TokenGen(0)
    }

    /// Invalidates all previously-issued tokens and returns a fresh one.
    pub fn bump(&mut self) -> TimerToken {
        self.0 += 1;
        TimerToken(self.0)
    }

    /// The most recently issued token.
    pub fn current(&self) -> TimerToken {
        TimerToken(self.0)
    }

    /// Whether `token` is the most recently issued one.
    pub fn is_current(&self, token: TimerToken) -> bool {
        token.0 == self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks_without_removal() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn token_gen_invalidates_older_tokens() {
        let mut gen = TokenGen::new();
        let a = gen.bump();
        let b = gen.bump();
        assert_ne!(a, b);
        assert!(!gen.is_current(a));
        assert!(gen.is_current(b));
        assert_eq!(gen.current(), b);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(1), "c"); // earlier than "b", fine to add
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
