//! The pending-event set: a priority queue ordered by `(time, sequence)`.
//!
//! The sequence number breaks ties between events scheduled for the same
//! instant in insertion order, which makes runs fully deterministic.
//!
//! # Implementation
//!
//! The queue is a **four-ary implicit min-heap** rather than the standard
//! library's binary `BinaryHeap`. Event sets in this workspace routinely
//! hold 10⁴–10⁵ pending events; a 4-ary layout halves the tree depth, so
//! `pop` does half the cache-missing levels per sift-down while `schedule`
//! (the common operation: most events are pushed near the end of the
//! timeline) stays cheap. [`EventQueue::pop_if_before`] fuses the
//! peek-then-pop pair the simulation driver used to issue per event into a
//! single root access.
//!
//! # Cancellation
//!
//! Two mechanisms coexist:
//!
//! - the legacy *tombstone pattern*: components that need to reschedule a
//!   completion carry a [`TimerToken`] in the event payload and ignore
//!   events whose token is stale on delivery (see [`TokenGen`]);
//! - queue-level cancellation: [`EventQueue::schedule_keyed`] returns an
//!   [`EventKey`] that [`EventQueue::cancel`] can later mark dead. Dead
//!   events are skipped on pop, counted (see [`EventQueue::live_len`] /
//!   [`EventQueue::tombstoned_len`]), and **compacted away** automatically
//!   once they dominate the heap, so a workload that cancels heavily cannot
//!   degrade pop to O(log dead_events).

use crate::time::SimTime;

/// Membership-only set of sequence numbers (cancellation bookkeeping).
///
/// Hash ordering cannot leak into event order: `cancelled` and `keyed` are
/// only probed (`contains`/`remove`/`insert`) and bulk-dropped
/// (`retain`/`clear`); nothing ever iterates them into an emit path, and the
/// O(1) probe sits on the pop hot path where a `BTreeSet` would pay an
/// extra O(log n) per event.
// cpsim-lint: allow(no-unordered-iteration): membership-only probes on the pop hot path; iteration order is never observed
type SeqSet = std::collections::HashSet<u64>;

/// Heap arity. Four children per node halves tree depth vs. a binary heap.
const ARITY: usize = 4;

/// Compact when tombstones outnumber live events and there are at least
/// this many of them (small queues are not worth the rebuild).
const COMPACT_MIN_TOMBSTONES: usize = 64;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Identifies one scheduled event for cancellation (see
/// [`EventQueue::schedule_keyed`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

/// A future-event set holding events of type `E`.
///
/// ```
/// use cpsim_des::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: Vec<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers cancelled while still pending. Invariant: the heap
    /// root is never cancelled (so [`next_time`](Self::next_time) needs no
    /// mutation). Only removals can surface a tombstone at the root
    /// (pushes sift the *new* entry up), so [`pop_raw`](Self::pop_raw)
    /// restores the invariant after every removal.
    cancelled: SeqSet,
    /// Sequence numbers scheduled via [`schedule_keyed`](Self::schedule_keyed)
    /// and still pending: lets `cancel` decide pendingness exactly in O(1).
    /// Plain [`schedule`](Self::schedule) never touches it, so the common
    /// (uncancellable) path pays only an is-empty branch per pop.
    keyed: SeqSet,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            next_seq: 0,
            cancelled: SeqSet::new(),
            keyed: SeqSet::new(),
        }
    }

    #[inline]
    fn push_entry(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.sift_up(self.heap.len() - 1);
        seq
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Events at the same instant fire in the order they were scheduled.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.push_entry(time, event);
    }

    /// Schedules `event` at `time` and returns a key that can later
    /// [`cancel`](Self::cancel) it.
    pub fn schedule_keyed(&mut self, time: SimTime, event: E) -> EventKey {
        let seq = self.push_entry(time, event);
        self.keyed.insert(seq);
        EventKey(seq)
    }

    /// Cancels a pending event by key; returns whether the key was live.
    ///
    /// Cancellation is O(1): the entry is tombstoned in place and skipped
    /// when it reaches the heap root. Tombstones are compacted away in
    /// bulk (O(n)) once they outnumber live events, so heavy cancellation
    /// cannot bloat the heap. Cancelling an already-fired or
    /// already-cancelled key returns `false` and does nothing.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.keyed.remove(&key.0) {
            return false;
        }
        // Fast path: cancelling the root pops it immediately, keeping the
        // "root is live" invariant without a set lookup on every peek.
        if let Some(root) = self.heap.first() {
            if root.seq == key.0 {
                self.pop_raw();
                return true;
            }
        }
        self.cancelled.insert(key.0);
        if self.cancelled.len() >= COMPACT_MIN_TOMBSTONES
            && self.cancelled.len() * 2 > self.heap.len()
        {
            self.compact();
        }
        true
    }

    /// Drops every tombstoned entry and restores the heap invariant.
    ///
    /// Pop order is unaffected: the heap is rebuilt under the same total
    /// `(time, seq)` order, and sequence numbers are preserved.
    fn compact(&mut self) {
        let cancelled = &mut self.cancelled;
        self.heap.retain(|e| !cancelled.remove(&e.seq));
        // Anything left in the set referred to entries no longer in the
        // heap; drop it so misuse cannot leak.
        cancelled.clear();
        // Floyd heapify: sift down from the last parent to the root.
        if self.heap.len() > 1 {
            let last_parent = (self.heap.len() - 2) / ARITY;
            for i in (0..=last_parent).rev() {
                self.sift_down(i);
            }
        }
    }

    /// Removes and returns the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let e = self.pop_raw()?;
            if !self.keyed.is_empty() {
                self.keyed.remove(&e.seq);
            }
            if self.cancelled.is_empty() || !self.cancelled.remove(&e.seq) {
                return Some((e.time, e.event));
            }
        }
    }

    /// Removes and returns the earliest live event **if it fires at or
    /// before `horizon`**; otherwise leaves the queue untouched.
    ///
    /// This fuses the peek-compare-pop sequence of an event loop bounded
    /// by a time horizon into one root access.
    pub fn pop_if_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        // Root is never tombstoned, so its time is authoritative.
        if self.heap.first()?.time > horizon {
            return None;
        }
        self.pop()
    }

    /// The timestamp of the earliest pending live event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Number of pending entries, **including** tombstoned ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of pending events that will actually fire (excludes
    /// tombstoned entries awaiting compaction).
    pub fn live_len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Number of cancelled entries still occupying heap slots.
    pub fn tombstoned_len(&self) -> usize {
        self.cancelled.len()
    }

    /// Whether no live events are pending.
    pub fn is_empty(&self) -> bool {
        // Tombstones never outlive live entries at the root, and compaction
        // keeps them a minority, so heap-empty is the right check: the heap
        // cannot consist solely of tombstones (the root is always live).
        self.heap.is_empty()
    }

    fn pop_raw(&mut self) -> Option<Entry<E>> {
        let entry = self.remove_root();
        // Removing the root may promote a tombstoned entry into its place;
        // discard such entries now so the root-is-live invariant holds for
        // every peek (`next_time`, `pop_if_before`, `is_empty`).
        while let Some(root) = self.heap.first() {
            if !self.cancelled.remove(&root.seq) {
                break;
            }
            self.remove_root();
        }
        entry
    }

    fn remove_root(&mut self) -> Option<Entry<E>> {
        let len = self.heap.len();
        if len == 0 {
            return None;
        }
        self.heap.swap(0, len - 1);
        let entry = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        entry
    }

    #[inline]
    fn less(&self, a: usize, b: usize) -> bool {
        self.heap[a].key() < self.heap[b].key()
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.less(i, parent) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let mut min = first;
            let end = (first + ARITY).min(len);
            for c in first + 1..end {
                if self.less(c, min) {
                    min = c;
                }
            }
            if self.less(min, i) {
                self.heap.swap(min, i);
                i = min;
            } else {
                break;
            }
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("live", &self.live_len())
            .field("tombstoned", &self.tombstoned_len())
            .field("next_time", &self.next_time())
            .finish()
    }
}

/// An opaque cancellation token produced by [`TokenGen`].
///
/// A scheduled event embeds the token current at scheduling time; when the
/// owning component reschedules, it bumps its generator, and the stale event
/// is ignored on delivery.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct TimerToken(u64);

/// Generator for [`TimerToken`]s, one per logically-cancellable timer.
///
/// ```
/// use cpsim_des::TokenGen;
/// let mut gen = TokenGen::new();
/// let first = gen.bump();
/// assert!(gen.is_current(first));
/// let second = gen.bump();
/// assert!(!gen.is_current(first));
/// assert!(gen.is_current(second));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TokenGen(u64);

impl TokenGen {
    /// Creates a generator whose initial token has never been issued.
    pub fn new() -> Self {
        TokenGen(0)
    }

    /// Invalidates all previously-issued tokens and returns a fresh one.
    pub fn bump(&mut self) -> TimerToken {
        self.0 += 1;
        TimerToken(self.0)
    }

    /// The most recently issued token.
    pub fn current(&self) -> TimerToken {
        TimerToken(self.0)
    }

    /// Whether `token` is the most recently issued one.
    pub fn is_current(&self, token: TimerToken) -> bool {
        token.0 == self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_fifo_survives_interleaved_pops_and_heavy_mixing() {
        // FIFO-at-same-instant must hold even when the same-instant batch
        // is interleaved with earlier/later events and partial pops —
        // the case a heap restructure could silently break.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(10);
        for i in 0..10 {
            q.schedule(t, ("tied", i));
            q.schedule(SimTime::from_secs(20 + i as u64), ("late", i));
        }
        q.schedule(SimTime::from_secs(1), ("early", 0));
        assert_eq!(q.pop().unwrap().1, ("early", 0));
        for i in 10..50 {
            q.schedule(t, ("tied", i));
        }
        let mut tied = Vec::new();
        while let Some((time, e)) = q.pop() {
            if time == t {
                tied.push(e.1);
            }
        }
        assert_eq!(tied, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_peeks_without_removal() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_if_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "a");
        q.schedule(SimTime::from_secs(9), "b");
        assert_eq!(q.pop_if_before(SimTime::from_secs(4)), None);
        assert_eq!(q.len(), 2, "a miss must not disturb the queue");
        assert_eq!(
            q.pop_if_before(SimTime::from_secs(5)),
            Some((SimTime::from_secs(5), "a"))
        );
        assert_eq!(q.pop_if_before(SimTime::from_secs(5)), None);
        assert_eq!(
            q.pop_if_before(SimTime::MAX),
            Some((SimTime::from_secs(9), "b"))
        );
        assert_eq!(q.pop_if_before(SimTime::MAX), None);
    }

    #[test]
    fn cancel_skips_event_and_tracks_counts() {
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        let _c = q.schedule_keyed(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.len(), 3);
        assert_eq!(q.live_len(), 2);
        assert_eq!(q.tombstoned_len(), 1);
        assert!(!q.cancel(b), "double-cancel is a no-op");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert_eq!(q.tombstoned_len(), 0);
    }

    #[test]
    fn cancel_root_keeps_next_time_accurate() {
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let _b = q.schedule_keyed(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        // The cancelled root must not leak into peeks.
        assert_eq!(q.next_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop_if_before(SimTime::from_secs(1)), None);
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn popping_never_leaves_a_tombstone_at_the_root() {
        // Regression: cancel a non-root entry, then pop the root. The
        // tombstone is promoted to the root, and every peek-based API
        // must still behave as if it were gone.
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        let _c = q.schedule_keyed(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.next_time(), Some(SimTime::from_secs(3)));
        assert_eq!(
            q.pop_if_before(SimTime::from_secs(2)),
            None,
            "cancelled root must not admit a past-horizon event"
        );
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.tombstoned_len(), 0, "tombstone discarded on promotion");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_fast_path_skips_promoted_tombstones() {
        // Regression: cancelling the root pops it; the entry promoted in
        // its place may itself be tombstoned and must be discarded too.
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        let _c = q.schedule_keyed(SimTime::from_secs(3), "c");
        assert!(q.cancel(b));
        assert!(q.cancel(a));
        assert_eq!(q.next_time(), Some(SimTime::from_secs(3)));
        assert_eq!(q.live_len(), 1);
        assert_eq!(q.tombstoned_len(), 0);
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn is_empty_true_when_all_remaining_entries_are_cancelled() {
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), "a");
        let b = q.schedule_keyed(SimTime::from_secs(2), "b");
        assert!(q.cancel(b));
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(q.is_empty(), "only a tombstone remained");
        assert_eq!(q.live_len(), 0);
        assert_eq!(q.next_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_rejected() {
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        assert!(!q.cancel(a));
        assert_eq!(q.tombstoned_len(), 0, "no phantom tombstone");
    }

    #[test]
    fn tombstones_are_compacted_when_they_dominate() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..1000)
            .map(|i| q.schedule_keyed(SimTime::from_secs(1 + i), i))
            .collect();
        // Cancel all but every 10th event; compaction must kick in well
        // before the end and keep the heap from filling with tombstones.
        for (i, k) in keys.iter().enumerate() {
            if i % 10 != 0 {
                q.cancel(*k);
            }
        }
        assert_eq!(q.live_len(), 100);
        assert!(
            q.len() < 300,
            "tombstones should have been compacted: len={}",
            q.len()
        );
        // Survivors still pop in order.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..1000).step_by(10).collect::<Vec<_>>());
    }

    #[test]
    fn token_gen_invalidates_older_tokens() {
        let mut gen = TokenGen::new();
        let a = gen.bump();
        let b = gen.bump();
        assert_ne!(a, b);
        assert!(!gen.is_current(a));
        assert!(gen.is_current(b));
        assert_eq!(gen.current(), b);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_secs(1), "c"); // earlier than "b", fine to add
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn debug_shows_live_and_tombstoned() {
        let mut q = EventQueue::new();
        let _a = q.schedule_keyed(SimTime::from_secs(1), 1);
        let b = q.schedule_keyed(SimTime::from_secs(2), 2);
        q.cancel(b);
        let dbg = format!("{q:?}");
        assert!(dbg.contains("live: 1"), "{dbg}");
        assert!(dbg.contains("tombstoned: 1"), "{dbg}");
    }

    #[test]
    fn random_workout_matches_sorted_reference() {
        // Deterministic pseudo-random schedule/pop storm against a sorted
        // reference: the heap must agree with a stable sort by (time, seq).
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u64)> = Vec::new(); // (time_us, payload)
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for round in 0..50u64 {
            for _ in 0..40 {
                let t = next(10_000);
                let payload = next(u64::MAX);
                q.schedule(SimTime::from_micros(t), payload);
                expected.push((t, payload));
            }
            // Pop a prefix bounded by a horizon.
            let horizon = round * 200;
            expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order per t
            while let Some((t, got)) = q.pop_if_before(SimTime::from_micros(horizon)) {
                let (et, ep) = expected.remove(0);
                assert_eq!((et, ep), (t.as_micros(), got));
            }
            if let Some(&(et, _)) = expected.first() {
                assert!(et > horizon);
            }
        }
        expected.sort_by_key(|&(t, _)| t);
        while let Some((t, got)) = q.pop() {
            let (et, ep) = expected.remove(0);
            assert_eq!((et, ep), (t.as_micros(), got));
        }
        assert!(expected.is_empty());
    }
}
