//! Timer-token cancellation for rescheduled completions.
//!
//! The pending-event set itself lives in [`crate::wheel`] (the hierarchical
//! timer-wheel [`EventQueue`](crate::EventQueue)); the retired heap kernel
//! is preserved in [`crate::reference`] as a property-test oracle and
//! benchmark baseline. This module holds the *payload-side* cancellation
//! pattern that predates queue-level keys: a component that reschedules a
//! completion embeds the [`TimerToken`] current at scheduling time and
//! ignores events whose token is stale on delivery.

/// An opaque cancellation token produced by [`TokenGen`].
///
/// A scheduled event embeds the token current at scheduling time; when the
/// owning component reschedules, it bumps its generator, and the stale event
/// is ignored on delivery.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct TimerToken(u64);

/// Generator for [`TimerToken`]s, one per logically-cancellable timer.
///
/// ```
/// use cpsim_des::TokenGen;
/// let mut gen = TokenGen::new();
/// let first = gen.bump();
/// assert!(gen.is_current(first));
/// let second = gen.bump();
/// assert!(!gen.is_current(first));
/// assert!(gen.is_current(second));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TokenGen(u64);

impl TokenGen {
    /// Creates a generator whose initial token has never been issued.
    pub fn new() -> Self {
        TokenGen(0)
    }

    /// Invalidates all previously-issued tokens and returns a fresh one.
    pub fn bump(&mut self) -> TimerToken {
        self.0 += 1;
        TimerToken(self.0)
    }

    /// The most recently issued token.
    pub fn current(&self) -> TimerToken {
        TimerToken(self.0)
    }

    /// Whether `token` is the most recently issued one.
    pub fn is_current(&self, token: TimerToken) -> bool {
        token.0 == self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_gen_invalidates_older_tokens() {
        let mut gen = TokenGen::new();
        let a = gen.bump();
        let b = gen.bump();
        assert_ne!(a, b);
        assert!(!gen.is_current(a));
        assert!(gen.is_current(b));
        assert_eq!(gen.current(), b);
    }
}
