//! Virtual time for the simulation: instants ([`SimTime`]) and spans
//! ([`SimDuration`]) with microsecond resolution.
//!
//! Microseconds in a `u64` cover ~584 000 simulated years, far beyond any
//! scenario in this workspace, while keeping arithmetic exact (no float
//! drift in the event loop).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in virtual time, measured in microseconds from the start of
/// the simulation.
///
/// ```
/// use cpsim_des::{SimDuration, SimTime};
/// let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
/// assert_eq!(t.as_micros(), 3_250_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// ```
/// use cpsim_des::SimDuration;
/// assert_eq!(SimDuration::from_millis(1500).as_secs_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant `hours` hours after the origin.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600 * MICROS_PER_SEC)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (lossy beyond 2^53 µs).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours since the origin, as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3_600.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; elapsed time in a
    /// simulation must be non-negative, so this indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later instant"),
        )
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * MICROS_PER_SEC)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    ///
    /// Workload and cost models produce `f64` seconds; this is the single
    /// point where they are quantized onto the simulation clock.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let micros = (secs * MICROS_PER_SEC as f64).round();
        if micros >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(micros as u64)
        }
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this span, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds in this span, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Whether this span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating at the maximum.
    pub fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction went negative"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction went negative"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let micros = self.0;
        if micros == 0 {
            write!(f, "0s")
        } else if micros < 1_000 {
            write!(f, "{micros}us")
        } else if micros < MICROS_PER_SEC {
            write!(f, "{:.3}ms", micros as f64 / 1_000.0)
        } else if micros < 3_600 * MICROS_PER_SEC {
            write!(f, "{:.3}s", micros as f64 / MICROS_PER_SEC as f64)
        } else {
            write!(
                f,
                "{:.3}h",
                micros as f64 / (3_600.0 * MICROS_PER_SEC as f64)
            )
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(5), SimTime::from_micros(5_000));
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3_600));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1_500);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_is_exact() {
        let a = SimTime::from_micros(17);
        let b = SimTime::from_micros(42);
        assert_eq!(b.since(a).as_micros(), 25);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        // Sub-microsecond values round to the nearest tick.
        assert_eq!(SimDuration::from_secs_f64(0.000_000_4), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.000_000_6),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(90).to_string(), "90.000s");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.000h");
        assert_eq!(SimTime::from_secs(1).to_string(), "t+1.000s");
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimTime::from_hours(2).as_hours_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
        assert_eq!(SimDuration::from_secs(3).as_secs_f64(), 3.0);
    }
}
