//! Time-weighted accumulation of a piecewise-constant signal, used for
//! utilization and queue-length statistics.

use crate::time::SimTime;

/// Integrates a piecewise-constant value over simulated time.
///
/// ```
/// use cpsim_des::{SimTime, TimeWeighted};
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.set(SimTime::from_secs(2), 1.0);  // 0 for 2 s
/// u.set(SimTime::from_secs(6), 0.0);  // 1 for 4 s
/// assert_eq!(u.mean(SimTime::from_secs(8)), 0.5); // 4 busy / 8 total
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    value: f64,
    integral: f64,
    peak: f64,
}

impl TimeWeighted {
    /// Starts integrating from `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            value,
            integral: 0.0,
            peak: value,
        }
    }

    /// Updates the signal to `value` as of `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.integral += self.value * now.since(self.last_change).as_secs_f64();
        self.last_change = now;
        self.value = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adjusts the signal by `delta` as of `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        self.set(now, self.value + delta);
    }

    /// The current value of the signal.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// The maximum value the signal has reached.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// The integral of the signal from the start through `now`
    /// (value × seconds).
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.value * now.since(self.last_change).as_secs_f64()
    }

    /// The time-weighted mean of the signal from the start through `now`,
    /// or the current value if no time has elapsed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let span = now.since(self.start).as_secs_f64();
        if span <= 0.0 {
            self.value
        } else {
            self.integral(now) / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_means_itself() {
        let u = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(u.mean(SimTime::from_secs(10)), 3.0);
        assert_eq!(u.integral(SimTime::from_secs(10)), 30.0);
    }

    #[test]
    fn step_signal_integrates_exactly() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
        u.add(SimTime::from_secs(1), 2.0);
        u.add(SimTime::from_secs(3), -1.0);
        // 0 for 1 s, 2 for 2 s, 1 for 2 s => integral 6 over 5 s.
        assert_eq!(u.integral(SimTime::from_secs(5)), 6.0);
        assert_eq!(u.mean(SimTime::from_secs(5)), 1.2);
        assert_eq!(u.current(), 1.0);
        assert_eq!(u.peak(), 2.0);
    }

    #[test]
    fn zero_span_returns_current() {
        let u = TimeWeighted::new(SimTime::from_secs(5), 7.0);
        assert_eq!(u.mean(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    fn nonzero_start_ignores_earlier_time() {
        let mut u = TimeWeighted::new(SimTime::from_secs(10), 1.0);
        u.set(SimTime::from_secs(15), 0.0);
        assert_eq!(u.mean(SimTime::from_secs(20)), 0.5);
    }
}
