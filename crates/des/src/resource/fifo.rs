//! A multi-server FIFO queue (`c` identical servers, unbounded waiting room).
//!
//! Models shared service points such as the management server's CPU pool or
//! the inventory database's connection pool. The queue is passive: `arrive`
//! and `complete` report which job should *start service* now, and the
//! caller draws its service time and schedules the completion event.

use std::collections::VecDeque;

use crate::resource::timeweighted::TimeWeighted;
use crate::time::{SimDuration, SimTime};

/// A job admitted to a [`FifoQueue`], carrying its arrival time for
/// waiting-time accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admitted<J> {
    /// The caller's job payload.
    pub job: J,
    /// How long the job waited in queue before starting service.
    pub waited: SimDuration,
}

/// `c`-server FIFO queue with occupancy and waiting statistics.
///
/// ```
/// use cpsim_des::{FifoQueue, SimTime};
/// let mut q: FifoQueue<&str> = FifoQueue::new(1);
/// let t0 = SimTime::ZERO;
/// assert!(q.arrive(t0, "a").is_some());      // server free: starts now
/// assert!(q.arrive(t0, "b").is_none());      // queued behind "a"
/// let next = q.complete(SimTime::from_secs(3)).unwrap();
/// assert_eq!(next.job, "b");
/// assert_eq!(next.waited, SimTime::from_secs(3).since(t0));
/// ```
#[derive(Debug)]
pub struct FifoQueue<J> {
    servers: u32,
    busy: u32,
    waiting: VecDeque<(SimTime, J)>,
    occupancy: TimeWeighted,
    queue_len: TimeWeighted,
    served: u64,
    total_wait: SimDuration,
    max_wait: SimDuration,
}

impl<J> FifoQueue<J> {
    /// Creates a queue with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: u32) -> Self {
        assert!(servers > 0, "a FifoQueue needs at least one server");
        FifoQueue {
            servers,
            busy: 0,
            waiting: VecDeque::new(),
            occupancy: TimeWeighted::new(SimTime::ZERO, 0.0),
            queue_len: TimeWeighted::new(SimTime::ZERO, 0.0),
            served: 0,
            total_wait: SimDuration::ZERO,
            max_wait: SimDuration::ZERO,
        }
    }

    /// Offers `job` at `now`. Returns `Some` if a server is free and the job
    /// starts service immediately; otherwise the job waits in FIFO order.
    pub fn arrive(&mut self, now: SimTime, job: J) -> Option<Admitted<J>> {
        if self.busy < self.servers {
            self.busy += 1;
            self.occupancy.set(now, self.busy as f64);
            self.served += 1;
            Some(Admitted {
                job,
                waited: SimDuration::ZERO,
            })
        } else {
            self.waiting.push_back((now, job));
            self.queue_len.set(now, self.waiting.len() as f64);
            None
        }
    }

    /// Reports a service completion at `now`; returns the next job to start,
    /// if any is waiting.
    ///
    /// # Panics
    ///
    /// Panics if no job is in service.
    pub fn complete(&mut self, now: SimTime) -> Option<Admitted<J>> {
        assert!(self.busy > 0, "complete() with no job in service");
        match self.waiting.pop_front() {
            Some((arrived, job)) => {
                self.queue_len.set(now, self.waiting.len() as f64);
                let waited = now.since(arrived);
                self.total_wait += waited;
                if waited > self.max_wait {
                    self.max_wait = waited;
                }
                self.served += 1;
                // Occupancy unchanged: one job leaves, one enters service.
                Some(Admitted { job, waited })
            }
            None => {
                self.busy -= 1;
                self.occupancy.set(now, self.busy as f64);
                None
            }
        }
    }

    /// Fails the station at `now`: every waiting job is evicted (and
    /// returned, in FIFO order) and all servers are freed without serving
    /// their jobs. In-service payloads are not stored here — they were
    /// moved out to the caller at service start — so the caller is
    /// responsible for any in-service jobs it is still tracking.
    ///
    /// Used to model a crashed host agent: the pending primitive queue is
    /// lost wholesale.
    pub fn fail_all(&mut self, now: SimTime) -> Vec<J> {
        let dropped: Vec<J> = self.waiting.drain(..).map(|(_, job)| job).collect();
        self.queue_len.set(now, 0.0);
        self.busy = 0;
        self.occupancy.set(now, 0.0);
        dropped
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Jobs currently in service.
    pub fn in_service(&self) -> u32 {
        self.busy
    }

    /// Jobs currently waiting.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Total jobs that have entered service.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean fraction of server capacity in use through `now` (0..=1).
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.occupancy.mean(now) / self.servers as f64
    }

    /// Total busy server-seconds through `now`.
    pub fn busy_seconds(&self, now: SimTime) -> f64 {
        self.occupancy.integral(now)
    }

    /// Time-weighted mean queue length through `now`.
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        self.queue_len.mean(now)
    }

    /// Mean waiting time of jobs that have entered service.
    pub fn mean_wait(&self) -> SimDuration {
        self.total_wait
            .as_micros()
            .checked_div(self.served)
            .map_or(SimDuration::ZERO, SimDuration::from_micros)
    }

    /// Longest waiting time of any job that has entered service.
    pub fn max_wait(&self) -> SimDuration {
        self.max_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes() {
        let mut q = FifoQueue::new(1);
        assert!(q.arrive(SimTime::ZERO, 1).is_some());
        assert!(q.arrive(SimTime::ZERO, 2).is_none());
        assert!(q.arrive(SimTime::ZERO, 3).is_none());
        assert_eq!(q.queue_len(), 2);
        assert_eq!(q.complete(SimTime::from_secs(1)).unwrap().job, 2);
        assert_eq!(q.complete(SimTime::from_secs(2)).unwrap().job, 3);
        assert!(q.complete(SimTime::from_secs(3)).is_none());
        assert_eq!(q.in_service(), 0);
        assert_eq!(q.served(), 3);
    }

    #[test]
    fn multi_server_admits_up_to_capacity() {
        let mut q = FifoQueue::new(3);
        for i in 0..3 {
            assert!(q.arrive(SimTime::ZERO, i).is_some());
        }
        assert!(q.arrive(SimTime::ZERO, 99).is_none());
        assert_eq!(q.in_service(), 3);
    }

    #[test]
    fn waiting_time_is_measured() {
        let mut q = FifoQueue::new(1);
        q.arrive(SimTime::ZERO, "a");
        q.arrive(SimTime::from_secs(1), "b");
        let adm = q.complete(SimTime::from_secs(5)).unwrap();
        assert_eq!(adm.job, "b");
        assert_eq!(adm.waited, SimDuration::from_secs(4));
        assert_eq!(q.max_wait(), SimDuration::from_secs(4));
        // mean over the two served jobs: (0 + 4) / 2
        assert_eq!(q.mean_wait(), SimDuration::from_secs(2));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut q = FifoQueue::new(2);
        q.arrive(SimTime::ZERO, ());
        // one of two servers busy for 10 s => utilization 0.5
        assert!((q.utilization(SimTime::from_secs(10)) - 0.5).abs() < 1e-12);
        assert!((q.busy_seconds(SimTime::from_secs(10)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mean_queue_len_integrates() {
        let mut q = FifoQueue::new(1);
        q.arrive(SimTime::ZERO, 0);
        q.arrive(SimTime::ZERO, 1); // queue length 1 from t=0
        q.complete(SimTime::from_secs(4)); // queue empties at t=4
        assert!((q.mean_queue_len(SimTime::from_secs(8)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fail_all_evicts_waiters_and_frees_servers() {
        let mut q = FifoQueue::new(1);
        q.arrive(SimTime::ZERO, 1);
        q.arrive(SimTime::ZERO, 2);
        q.arrive(SimTime::ZERO, 3);
        let dropped = q.fail_all(SimTime::from_secs(5));
        assert_eq!(dropped, vec![2, 3]);
        assert_eq!(q.in_service(), 0);
        assert_eq!(q.queue_len(), 0);
        // The station is immediately usable again.
        assert!(q.arrive(SimTime::from_secs(6), 4).is_some());
    }

    #[test]
    #[should_panic(expected = "no job in service")]
    fn complete_on_idle_panics() {
        let mut q: FifoQueue<()> = FifoQueue::new(1);
        q.complete(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _: FifoQueue<()> = FifoQueue::new(0);
    }
}
