//! Queueing building blocks shared by all simulated resources.
//!
//! These are *passive* state machines: they track occupancy and waiting
//! work, and tell the caller what to start next; the caller owns scheduling
//! (drawing service times and posting completion events). This keeps the
//! resources independently testable and the kernel free of callbacks.

pub mod bandwidth;
pub mod fifo;
pub mod slots;
pub mod timeweighted;
