//! Processor-sharing bandwidth: `n` concurrent transfers each progress at
//! `rate / n` until one finishes, at which point the shares grow.
//!
//! This models a datastore (or network link) copying several VMDKs at once.
//! The engine is event-driven: every membership change yields a fresh
//! [`TransferPlan`] naming the next completion instant and carrying an epoch
//! number; plans from before the change are stale and their events must be
//! ignored (compare epochs).
//!
//! # Protocol
//!
//! ```
//! use cpsim_des::{SharedBandwidth, SimTime};
//!
//! let mut link = SharedBandwidth::new(100.0); // 100 bytes/sec
//! let plan = link.start(SimTime::ZERO, "a", 400.0).unwrap();
//! // Sole flow: finishes at t = 4 s.
//! assert_eq!(plan.next_completion, SimTime::from_secs(4));
//!
//! // A second flow halves the rate; the old plan is superseded.
//! let plan2 = link.start(SimTime::from_secs(2), "b", 100.0).unwrap();
//! assert!(!link.is_current(plan.epoch));
//! // At t=2: "a" has 200 left, "b" has 100; each gets 50 B/s, so "b"
//! // finishes first at t = 4 s.
//! assert_eq!(plan2.next_completion, SimTime::from_secs(4));
//!
//! let done = link.on_tick(SimTime::from_secs(4), plan2.epoch).unwrap();
//! assert_eq!(done.finished, vec!["b"]);
//! // "a" has 100 left at full rate: finishes at t = 5 s.
//! assert_eq!(done.plan.unwrap().next_completion, SimTime::from_secs(5));
//! ```

use crate::resource::timeweighted::TimeWeighted;
use crate::time::{SimDuration, SimTime};

/// Sub-byte residue below which a transfer counts as finished. This must
/// absorb floating-point error from repeated advancement: one ulp of a
/// multi-gigabyte byte count is on the order of 1e-6 bytes, so the
/// threshold sits three orders of magnitude above that (and nine below
/// any real transfer).
const EPSILON_BYTES: f64 = 1e-3;

/// A scheduling directive from the bandwidth engine: post a tick at
/// `next_completion` carrying `epoch`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferPlan {
    /// When the earliest active transfer will finish under the current
    /// membership.
    pub next_completion: SimTime,
    /// Identifies the membership era this plan belongs to.
    pub epoch: u64,
}

/// The result of an [`SharedBandwidth::on_tick`] with a current epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct TransferDone<K> {
    /// Transfers that completed at this instant (usually one, but exact
    /// ties complete together).
    pub finished: Vec<K>,
    /// The follow-up plan, or `None` if the link went idle.
    pub plan: Option<TransferPlan>,
}

#[derive(Clone, Debug)]
struct Flow<K> {
    key: K,
    remaining: f64,
}

/// A shared link/array of fixed aggregate bandwidth with egalitarian
/// processor sharing among active transfers.
#[derive(Debug)]
pub struct SharedBandwidth<K> {
    rate: f64,
    flows: Vec<Flow<K>>,
    last_advance: SimTime,
    epoch: u64,
    bytes_moved: f64,
    busy: TimeWeighted,
    concurrency: TimeWeighted,
    completed: u64,
}

impl<K: Clone + PartialEq> SharedBandwidth<K> {
    /// Creates a link with aggregate `rate` in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "bandwidth must be finite and positive, got {rate}"
        );
        SharedBandwidth {
            rate,
            flows: Vec::new(),
            last_advance: SimTime::ZERO,
            epoch: 0,
            bytes_moved: 0.0,
            busy: TimeWeighted::new(SimTime::ZERO, 0.0),
            concurrency: TimeWeighted::new(SimTime::ZERO, 0.0),
            completed: 0,
        }
    }

    /// Aggregate link rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Begins a transfer of `bytes` for `key` at `now`, superseding any
    /// previously issued plan.
    ///
    /// Zero-byte transfers are legal and complete at the very next tick.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or non-finite, or if `now` precedes a
    /// previous update.
    pub fn start(&mut self, now: SimTime, key: K, bytes: f64) -> Option<TransferPlan> {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "transfer size must be finite and >= 0, got {bytes}"
        );
        self.advance(now);
        self.flows.push(Flow {
            key,
            remaining: bytes,
        });
        self.note_membership(now);
        self.reschedule(now)
    }

    /// Handles a tick scheduled by a previous plan. Returns `None` if
    /// `epoch` is stale (the membership changed since the plan was issued);
    /// the caller simply drops the event.
    pub fn on_tick(&mut self, now: SimTime, epoch: u64) -> Option<TransferDone<K>> {
        if epoch != self.epoch {
            return None;
        }
        self.advance(now);
        let mut finished = Vec::new();
        self.flows.retain(|f| {
            if f.remaining <= EPSILON_BYTES {
                finished.push(f.key.clone());
                false
            } else {
                true
            }
        });
        // A current-epoch tick normally completes at least one flow; in
        // the pathological case where rounding left a hair of residue the
        // fresh plan below fires again a microsecond later and drains it,
        // so an empty `finished` is safe (callers handle empty lists).
        self.completed += finished.len() as u64;
        self.note_membership(now);
        let plan = self.reschedule(now);
        Some(TransferDone { finished, plan })
    }

    /// Cancels the transfer for `key`, if present; returns the bytes that
    /// had not yet been moved. Supersedes any previously issued plan.
    pub fn cancel(&mut self, now: SimTime, key: &K) -> Option<f64> {
        self.advance(now);
        let idx = self.flows.iter().position(|f| &f.key == key)?;
        let flow = self.flows.remove(idx);
        self.note_membership(now);
        self.reschedule(now);
        Some(flow.remaining)
    }

    /// Whether `epoch` belongs to the current membership era.
    pub fn is_current(&self, epoch: u64) -> bool {
        epoch == self.epoch
    }

    /// Number of active transfers.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes moved through `now` (advances internal accounting only
    /// on membership changes, so pass the current time).
    pub fn bytes_moved(&self, now: SimTime) -> f64 {
        let dt = now.saturating_since(self.last_advance).as_secs_f64();
        let draining: f64 = if self.flows.is_empty() {
            0.0
        } else {
            let share = self.rate * dt / self.flows.len() as f64;
            self.flows.iter().map(|f| f.remaining.min(share)).sum()
        };
        self.bytes_moved + draining
    }

    /// Fraction of time the link was busy through `now` (0..=1).
    pub fn busy_fraction(&self, now: SimTime) -> f64 {
        self.busy.mean(now)
    }

    /// Time-weighted mean number of concurrent transfers through `now`.
    pub fn mean_concurrency(&self, now: SimTime) -> f64 {
        self.concurrency.mean(now)
    }

    /// Peak number of concurrent transfers observed.
    pub fn peak_concurrency(&self) -> u32 {
        self.concurrency.peak() as u32
    }

    /// Total transfers completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if dt <= 0.0 || self.flows.is_empty() {
            return;
        }
        let share = self.rate * dt / self.flows.len() as f64;
        for f in &mut self.flows {
            let drained = f.remaining.min(share);
            f.remaining -= drained;
            self.bytes_moved += drained;
        }
    }

    fn note_membership(&mut self, now: SimTime) {
        self.busy
            .set(now, if self.flows.is_empty() { 0.0 } else { 1.0 });
        self.concurrency.set(now, self.flows.len() as f64);
    }

    fn reschedule(&mut self, now: SimTime) -> Option<TransferPlan> {
        self.epoch += 1;
        if self.flows.is_empty() {
            return None;
        }
        let n = self.flows.len() as f64;
        let min_remaining = self
            .flows
            .iter()
            .map(|f| f.remaining)
            .fold(f64::INFINITY, f64::min);
        let secs = (min_remaining.max(0.0)) * n / self.rate;
        // Round *up* to the next clock tick: rounding down would leave
        // residual bytes at the tick and stall progress in a zero-delay loop.
        let micros = (secs * 1e6).ceil();
        let delay = if micros >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration::from_micros(micros as u64)
        };
        Some(TransferPlan {
            next_completion: now + delay,
            epoch: self.epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_finishes_on_time() {
        let mut bw = SharedBandwidth::new(10.0);
        let plan = bw.start(SimTime::ZERO, 1u32, 50.0).unwrap();
        assert_eq!(plan.next_completion, SimTime::from_secs(5));
        let done = bw.on_tick(plan.next_completion, plan.epoch).unwrap();
        assert_eq!(done.finished, vec![1]);
        assert!(done.plan.is_none());
        assert_eq!(bw.active(), 0);
        assert_eq!(bw.completed(), 1);
        assert!((bw.bytes_moved(SimTime::from_secs(5)) - 50.0).abs() < 1e-6);
    }

    #[test]
    fn stale_epoch_is_ignored() {
        let mut bw = SharedBandwidth::new(10.0);
        let plan1 = bw.start(SimTime::ZERO, 1u32, 50.0).unwrap();
        let _plan2 = bw.start(SimTime::from_secs(1), 2u32, 5.0).unwrap();
        assert!(bw.on_tick(plan1.next_completion, plan1.epoch).is_none());
        assert!(!bw.is_current(plan1.epoch));
    }

    #[test]
    fn two_flows_share_fairly() {
        // 100 B/s; both flows 100 B, started together: each runs at 50 B/s,
        // both finish at t = 2 s.
        let mut bw = SharedBandwidth::new(100.0);
        bw.start(SimTime::ZERO, 1u32, 100.0);
        let plan = bw.start(SimTime::ZERO, 2u32, 100.0).unwrap();
        assert_eq!(plan.next_completion, SimTime::from_secs(2));
        let done = bw.on_tick(plan.next_completion, plan.epoch).unwrap();
        assert_eq!(done.finished, vec![1, 2]); // exact tie: both complete
        assert!(done.plan.is_none());
    }

    #[test]
    fn late_joiner_slows_first_flow() {
        let mut bw = SharedBandwidth::new(100.0);
        bw.start(SimTime::ZERO, 1u32, 300.0);
        // At t=1, flow 1 has 200 left. Flow 2 brings 50 bytes.
        let plan = bw.start(SimTime::from_secs(1), 2u32, 50.0).unwrap();
        // Flow 2 finishes after 50 * 2 / 100 = 1 s.
        assert_eq!(plan.next_completion, SimTime::from_secs(2));
        let done = bw.on_tick(plan.next_completion, plan.epoch).unwrap();
        assert_eq!(done.finished, vec![2]);
        // Flow 1 had 200 - 50 = 150 left; at full rate: 1.5 s more.
        let plan = done.plan.unwrap();
        assert_eq!(plan.next_completion, SimTime::from_millis(3_500));
        let done = bw.on_tick(plan.next_completion, plan.epoch).unwrap();
        assert_eq!(done.finished, vec![1]);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut bw = SharedBandwidth::new(10.0);
        let plan = bw.start(SimTime::from_secs(3), 9u32, 0.0).unwrap();
        assert_eq!(plan.next_completion, SimTime::from_secs(3));
        let done = bw.on_tick(plan.next_completion, plan.epoch).unwrap();
        assert_eq!(done.finished, vec![9]);
    }

    #[test]
    fn cancel_returns_unmoved_bytes() {
        let mut bw = SharedBandwidth::new(10.0);
        bw.start(SimTime::ZERO, 1u32, 100.0);
        let leftover = bw.cancel(SimTime::from_secs(4), &1).unwrap();
        assert!((leftover - 60.0).abs() < 1e-9);
        assert_eq!(bw.active(), 0);
        assert!(bw.cancel(SimTime::from_secs(4), &1).is_none());
    }

    #[test]
    fn busy_fraction_and_concurrency() {
        let mut bw = SharedBandwidth::new(10.0);
        let plan = bw.start(SimTime::ZERO, 1u32, 50.0).unwrap();
        bw.on_tick(plan.next_completion, plan.epoch).unwrap();
        // Busy 5 s out of 10.
        assert!((bw.busy_fraction(SimTime::from_secs(10)) - 0.5).abs() < 1e-9);
        assert_eq!(bw.peak_concurrency(), 1);
        assert!((bw.mean_concurrency(SimTime::from_secs(10)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn work_is_conserved_across_many_flows() {
        let mut bw = SharedBandwidth::new(1000.0);
        let sizes = [10.0, 250.0, 999.0, 4.5, 333.3];
        let mut plan = None;
        for (i, &s) in sizes.iter().enumerate() {
            plan = bw.start(SimTime::from_millis(i as u64 * 100), i as u32, s);
        }
        let mut finished = 0;
        while let Some(p) = plan {
            let done = bw.on_tick(p.next_completion, p.epoch).unwrap();
            finished += done.finished.len();
            plan = done.plan;
        }
        assert_eq!(finished, sizes.len());
        let total: f64 = sizes.iter().sum();
        assert!((bw.bytes_moved(bw.last_advance) - total).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_rejected() {
        let _: SharedBandwidth<u32> = SharedBandwidth::new(0.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_bytes_rejected() {
        let mut bw = SharedBandwidth::new(1.0);
        bw.start(SimTime::ZERO, 1u32, -5.0);
    }
}
